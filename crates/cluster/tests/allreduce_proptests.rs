//! Property tests for the binomial-tree allreduce and `Topology` at
//! **non-power-of-two** device counts.
//!
//! The in-crate unit tests only exercise L ∈ {1, 2, 4, 8, 16}; the
//! paper's own sweep includes 6×4 = 24 and the serving/training stack
//! is free to pick any L.  Two invariant classes:
//!
//! 1. **Bit-identity to a sequential-pairwise reference.**  The
//!    collective documents a fixed combination order (binomial tree:
//!    at stride `s`, rank `r` absorbs `r+s`), which makes the result
//!    bitwise deterministic.  We re-derive the mean with a plain,
//!    sequential re-statement of that pairwise order — naive `f64`
//!    loops, no `Vector` machinery, no cost model — and require exact
//!    `to_bits` equality for every rank count, including the odd ones
//!    where subtrees are ragged (L = 3, 5, 6, 7, 12).
//! 2. **Topology consistency off the power-of-two grid.**  Rank→node
//!    mapping, intra/inter link classification, and the monotone cost
//!    of crossing nodes must hold for every factorisation
//!    `L = nodes × devices_per_node`, not just the paper's grid.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vqmc_cluster::collective::tree_depth;
use vqmc_cluster::{allreduce_mean_tree, Topology};
use vqmc_tensor::Vector;

/// The device counts the issue calls out: 1 plus every small
/// non-power-of-two, and 12 (a 3×4 / 2×6 cluster).
const ODD_COUNTS: &[usize] = &[1, 3, 5, 6, 7, 12];

/// Sequential-pairwise reference mean: the binomial-tree combination
/// order (`buf[r] += buf[r + stride]` for doubling strides), restated
/// as plain nested loops over `Vec<f64>` so it shares no code with the
/// production collective, then a final divide by `l`.
fn reference_pairwise_mean(inputs: &[Vec<f64>]) -> Vec<f64> {
    let l = inputs.len();
    let mut bufs = inputs.to_vec();
    let mut stride = 1;
    while stride < l {
        let mut r = 0;
        while r + stride < l {
            let (head, tail) = bufs.split_at_mut(r + stride);
            for (x, y) in head[r].iter_mut().zip(tail[0].iter()) {
                *x += *y;
            }
            r += 2 * stride;
        }
        stride *= 2;
    }
    bufs[0].iter().map(|x| x / l as f64).collect()
}

/// Per-rank inputs mixing magnitudes badly enough that any deviation
/// from the documented combination order changes low-order bits:
/// exponents spread over ~60 binades plus sign flips.
fn rank_inputs(l: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..l)
        .map(|_| {
            (0..len)
                .map(|_| {
                    let mantissa = rng.gen::<f64>() * 2.0 - 1.0;
                    let exponent = (rng.gen::<f64>() * 60.0 - 30.0) as i32;
                    mantissa * (exponent as f64).exp2()
                })
                .collect()
        })
        .collect()
}

/// Every `nodes × devices_per_node` factorisation of `l`.
fn factorisations(l: usize) -> Vec<(usize, usize)> {
    (1..=l).filter(|d| l % d == 0).map(|d| (d, l / d)).collect()
}

fn as_vectors(inputs: &[Vec<f64>]) -> Vec<Vector> {
    inputs
        .iter()
        .map(|v| Vector::from_fn(v.len(), |i| v[i]))
        .collect()
}

fn assert_bits_eq(got: &Vector, want: &[f64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for i in 0..want.len() {
        assert_eq!(
            got[i].to_bits(),
            want[i].to_bits(),
            "{ctx}: element {i} ({} vs {})",
            got[i],
            want[i]
        );
    }
}

#[test]
fn odd_device_counts_match_pairwise_reference_bitwise() {
    for &l in ODD_COUNTS {
        let inputs = rank_inputs(l, 129, 0xC0FFEE ^ l as u64);
        let want = reference_pairwise_mean(&inputs);
        for (nodes, dpn) in factorisations(l) {
            let topo = Topology::new(nodes, dpn);
            let (mean, comm) = allreduce_mean_tree(as_vectors(&inputs), &topo);
            assert_bits_eq(&mean, &want, &format!("L={l} topo {nodes}x{dpn}"));
            assert!(comm.is_finite() && comm >= 0.0, "L={l}: comm = {comm}");
            if l == 1 {
                assert_eq!(comm, 0.0, "single device must be free");
            } else {
                assert!(comm > 0.0, "L={l}: multi-device allreduce is not free");
            }
        }
    }
}

#[test]
fn odd_device_counts_are_deterministic() {
    for &l in ODD_COUNTS {
        let inputs = rank_inputs(l, 65, 0xBAD5EED ^ l as u64);
        let topo = Topology::new(1, l);
        let (a, ca) = allreduce_mean_tree(as_vectors(&inputs), &topo);
        let (b, cb) = allreduce_mean_tree(as_vectors(&inputs), &topo);
        assert_bits_eq(&a, &b.as_slice(), &format!("L={l} rerun"));
        assert_eq!(ca.to_bits(), cb.to_bits(), "L={l}: comm time rerun");
    }
}

#[test]
fn odd_device_counts_mean_close_to_exact() {
    for &l in ODD_COUNTS {
        let len = 33;
        let mut rng = StdRng::seed_from_u64(l as u64);
        let inputs: Vec<Vec<f64>> = (0..l)
            .map(|_| (0..len).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect())
            .collect();
        let (mean, _) = allreduce_mean_tree(as_vectors(&inputs), &Topology::new(1, l));
        for i in 0..len {
            let exact: f64 = inputs.iter().map(|v| v[i]).sum::<f64>() / l as f64;
            assert!(
                (mean[i] - exact).abs() <= 1e-12,
                "L={l} element {i}: {} vs {exact}",
                mean[i]
            );
        }
    }
}

#[test]
fn crossing_nodes_never_cheapens_the_collective() {
    // Every step costs its slowest active link, and inter-node links
    // dominate intra-node ones, so concentrating a fixed L onto one
    // node is always at least as fast — strictly faster once any tree
    // edge crosses nodes.
    for &l in ODD_COUNTS {
        let inputs = rank_inputs(l, 257, 31 + l as u64);
        let single = allreduce_mean_tree(as_vectors(&inputs), &Topology::new(1, l)).1;
        for (nodes, dpn) in factorisations(l) {
            let comm = allreduce_mean_tree(as_vectors(&inputs), &Topology::new(nodes, dpn)).1;
            if nodes > 1 {
                assert!(
                    comm > single,
                    "L={l}: {nodes}x{dpn} comm {comm} ≤ 1x{l} comm {single}"
                );
            } else {
                assert_eq!(comm.to_bits(), single.to_bits());
            }
        }
    }
}

#[test]
fn topology_mapping_consistent_for_odd_factorisations() {
    for &l in ODD_COUNTS {
        for (nodes, dpn) in factorisations(l) {
            let t = Topology::new(nodes, dpn);
            assert_eq!(t.num_devices(), l);
            for rank in 0..l {
                let node = t.node_of(rank);
                assert!(node < nodes, "rank {rank} maps to node {node} ≥ {nodes}");
            }
            for a in 0..l {
                for b in 0..l {
                    let link = t.link(a, b);
                    let same = t.node_of(a) == t.node_of(b);
                    let expect = if same { t.intra } else { t.inter };
                    assert_eq!(link.latency.to_bits(), expect.latency.to_bits());
                    assert_eq!(link.bandwidth.to_bits(), expect.bandwidth.to_bits());
                }
            }
        }
    }
}

proptest! {
    /// Any (L, length, seed, factorisation) triple: tree mean is
    /// bit-identical to the sequential-pairwise reference and the
    /// step count respected ⌈log₂L⌉ both ways (comm of an L-device
    /// ring is at most 2·depth slowest-link transfers).
    #[test]
    fn tree_mean_matches_reference(
        l in 1usize..14,
        len in 0usize..40,
        seed in 0u64..u64::MAX,
        pick in 0usize..6,
    ) {
        let inputs = rank_inputs(l, len, seed);
        let want = reference_pairwise_mean(&inputs);
        let facs = factorisations(l);
        let (nodes, dpn) = facs[pick % facs.len()];
        let topo = Topology::new(nodes, dpn);
        let (mean, comm) = allreduce_mean_tree(as_vectors(&inputs), &topo);
        for i in 0..len {
            prop_assert_eq!(mean[i].to_bits(), want[i].to_bits());
        }
        let bytes = len * std::mem::size_of::<f64>();
        let bound = 2.0 * tree_depth(l) as f64 * topo.inter.transfer_time(bytes);
        prop_assert!(comm <= bound + 1e-18, "comm {} exceeds 2·depth·slowest = {}", comm, bound);
    }
}
