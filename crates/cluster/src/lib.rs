//! # vqmc-cluster
//!
//! A virtual multi-GPU cluster: the substrate substitution that lets
//! this workspace reproduce the paper's multi-node scaling study
//! (Figures 3–4, Tables 6–7) without NVIDIA hardware.
//!
//! ## What is real and what is modelled
//!
//! * **Real**: every device is executed by a real OS thread with its own
//!   model replica and RNG stream ([`Cluster::run_round`] uses
//!   `std::thread::scope`); the gradient allreduce really moves and
//!   combines the data through a deterministic binomial tree
//!   ([`Cluster::allreduce_mean`]), so replica consistency and
//!   reduction-order determinism are *tested properties*, not
//!   assumptions.
//! * **Modelled**: wall-clock time.  The host machine may have fewer
//!   cores than the simulated cluster has devices (this repo's CI box
//!   has one), so measured wall-clock cannot show weak scaling.  Instead
//!   a [`SimClock`] charges each device `flops / flops_per_sec` for its
//!   compute and charges the binomial-tree allreduce per hop
//!   (`latency + bytes / bandwidth`, intra- vs inter-node links priced
//!   separately).  This is exactly the quantity the paper's Eq. 15
//!   analysis predicts, and the weak-scaling experiments report it.
//!
//! ## Memory model
//!
//! [`DeviceSpec::max_minibatch`] reproduces the paper's Table 7 header
//! row — the largest per-GPU batch that saturates a 32 GB V100 for each
//! problem size (`2¹⁹` samples at `n = 20` down to `2²` at `n = 10⁴`) —
//! from a two-term footprint (neighbour-evaluation buffers `∝ n²`,
//! activations `∝ n·h`) calibrated once against that row.

#![warn(missing_docs)]

pub mod clock;
pub mod collective;
pub mod device;
pub mod topology;

pub use clock::SimClock;
pub use collective::allreduce_mean_tree;
pub use device::DeviceSpec;
pub use topology::Topology;

use vqmc_tensor::Vector;

/// A virtual cluster: a topology plus the modelled clock.
#[derive(Debug)]
pub struct Cluster {
    topology: Topology,
    spec: DeviceSpec,
    clock: SimClock,
}

impl Cluster {
    /// Builds a cluster of `nodes × devices_per_node` devices of the
    /// given spec (the paper's `L₁ × L₂` notation).
    pub fn new(topology: Topology, spec: DeviceSpec) -> Self {
        let clock = SimClock::new(topology.num_devices());
        Cluster {
            topology,
            spec,
            clock,
        }
    }

    /// Total device count `L`.
    pub fn num_devices(&self) -> usize {
        self.topology.num_devices()
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The device spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The modelled clock (read access for reporting).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Executes `f(rank)` on every device concurrently (one real thread
    /// per device) and returns the per-rank results in rank order.
    ///
    /// The closure must be `Sync` because all threads borrow it; devices
    /// communicate only through their return values (message-passing
    /// discipline — no shared mutable state, hence no locks).
    pub fn run_round<T: Send>(&self, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        let l = self.num_devices();
        if l == 1 {
            return vec![f(0)];
        }
        let mut results: Vec<Option<T>> = (0..l).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(l);
            for (rank, slot) in results.iter_mut().enumerate() {
                let f = &f;
                handles.push(scope.spawn(move || {
                    *slot = Some(f(rank));
                }));
            }
            for h in handles {
                h.join().expect("device thread panicked");
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("device produced no result"))
            .collect()
    }

    /// Like [`Cluster::run_round`], but gives each device exclusive
    /// mutable access to its own slot of `states` (the replica pattern:
    /// model, RNG stream and optimiser state live per device and never
    /// alias).
    pub fn run_round_mut<S: Send, T: Send>(
        &self,
        states: &mut [S],
        f: impl Fn(usize, &mut S) -> T + Sync,
    ) -> Vec<T> {
        assert_eq!(
            states.len(),
            self.num_devices(),
            "run_round_mut: one state per device required"
        );
        if states.len() == 1 {
            return vec![f(0, &mut states[0])];
        }
        let mut results: Vec<Option<T>> = (0..states.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for ((rank, state), slot) in states.iter_mut().enumerate().zip(results.iter_mut()) {
                let f = &f;
                scope.spawn(move || {
                    *slot = Some(f(rank, state));
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("device produced no result"))
            .collect()
    }

    /// Charges `flops` of compute to device `rank` on the modelled
    /// clock.
    pub fn charge_flops(&mut self, rank: usize, flops: f64) {
        self.clock
            .charge_device(rank, flops / self.spec.flops_per_sec);
    }

    /// Charges the same `flops` to every device (the SPMD common case).
    pub fn charge_flops_all(&mut self, flops: f64) {
        for rank in 0..self.num_devices() {
            self.charge_flops(rank, flops);
        }
    }

    /// Charges the fixed launch overhead of `passes` batched kernel
    /// dispatches to every device.  At small per-pass flop counts this
    /// term dominates device time (see [`DeviceSpec::pass_overhead_secs`]).
    pub fn charge_passes_all(&mut self, passes: usize) {
        let secs = passes as f64 * self.spec.pass_overhead_secs;
        for rank in 0..self.num_devices() {
            self.clock.charge_device(rank, secs);
        }
    }

    /// Averages the per-device gradient vectors through a deterministic
    /// binomial tree (reduce to rank 0, then broadcast), charging the
    /// modelled clock for every hop, and returns the average (identical
    /// on every device, bit-for-bit, because the combination order is
    /// fixed by the tree, not by thread timing).
    pub fn allreduce_mean(&mut self, vectors: Vec<Vector>) -> Vector {
        assert_eq!(
            vectors.len(),
            self.num_devices(),
            "allreduce_mean: one vector per device required"
        );
        let (mean, comm_secs) = allreduce_mean_tree(vectors, &self.topology);
        self.clock.sync_round(comm_secs);
        mean
    }

    /// Ends a compute-only round (no collective): folds the slowest
    /// device's time into the cluster total.
    pub fn sync(&mut self) {
        self.clock.sync_round(0.0);
    }

    /// Total modelled elapsed seconds.
    pub fn elapsed_modelled(&self) -> f64 {
        self.clock.total()
    }

    /// Resets the modelled clock (between experiments).
    pub fn reset_clock(&mut self) {
        self.clock = SimClock::new(self.num_devices());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(l1: usize, l2: usize) -> Cluster {
        Cluster::new(Topology::new(l1, l2), DeviceSpec::v100())
    }

    #[test]
    fn run_round_returns_rank_ordered_results() {
        let c = small_cluster(2, 3);
        let out = c.run_round(|rank| rank * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn allreduce_mean_averages_and_is_deterministic() {
        let mut c = small_cluster(2, 2);
        let vectors: Vec<Vector> = (0..4)
            .map(|r| Vector::from_fn(5, |i| (r * 5 + i) as f64))
            .collect();
        let mean = c.allreduce_mean(vectors.clone());
        // Expected mean of 0..20 arranged by rank: element i = mean of
        // {i, 5+i, 10+i, 15+i} = i + 7.5.
        for i in 0..5 {
            assert_eq!(mean[i], i as f64 + 7.5);
        }
        // Determinism: identical input → identical bits.
        let mut c2 = small_cluster(2, 2);
        let mean2 = c2.allreduce_mean(vectors);
        assert_eq!(mean.as_slice(), mean2.as_slice());
    }

    #[test]
    fn clock_accumulates_max_per_round_plus_comm() {
        let mut c = small_cluster(1, 2);
        c.charge_flops(0, 1e12);
        c.charge_flops(1, 2e12); // slower device dominates
        let before = c.elapsed_modelled();
        assert_eq!(before, 0.0, "time folds in only at sync");
        c.sync();
        let per_sec = c.spec().flops_per_sec;
        assert!((c.elapsed_modelled() - 2e12 / per_sec).abs() < 1e-12);
    }

    #[test]
    fn allreduce_charges_communication_time() {
        let mut c = small_cluster(2, 2);
        let vectors: Vec<Vector> = (0..4).map(|_| Vector::zeros(1000)).collect();
        c.allreduce_mean(vectors);
        assert!(c.elapsed_modelled() > 0.0, "comm must cost time");
    }

    #[test]
    fn single_device_round_has_no_comm() {
        let mut c = small_cluster(1, 1);
        let v = vec![Vector::from_fn(10, |i| i as f64)];
        let mean = c.allreduce_mean(v);
        assert_eq!(mean[3], 3.0);
        assert_eq!(c.elapsed_modelled(), 0.0);
    }
}
