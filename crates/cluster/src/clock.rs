//! The modelled cluster clock.
//!
//! Training proceeds in lock-step rounds (SPMD): every device computes,
//! then all devices meet at a collective.  The round's cost is therefore
//! `max(per-device compute) + collective time`; [`SimClock`] accumulates
//! exactly that.

/// Modelled time accounting for a lock-step SPMD execution.
#[derive(Clone, Debug)]
pub struct SimClock {
    /// Compute charged to each device since the last sync.
    pending: Vec<f64>,
    /// Total folded time.
    total: f64,
    /// Total spent in collectives (diagnostic split).
    comm_total: f64,
}

impl SimClock {
    /// A clock for `num_devices` devices.
    pub fn new(num_devices: usize) -> Self {
        assert!(num_devices >= 1);
        SimClock {
            pending: vec![0.0; num_devices],
            total: 0.0,
            comm_total: 0.0,
        }
    }

    /// Charges `secs` of compute to one device within the current round.
    pub fn charge_device(&mut self, rank: usize, secs: f64) {
        assert!(secs >= 0.0, "negative time charge");
        self.pending[rank] += secs;
    }

    /// Ends the round: folds the slowest device plus `comm_secs` of
    /// collective time into the total.
    pub fn sync_round(&mut self, comm_secs: f64) {
        let slowest = self.pending.iter().copied().fold(0.0, f64::max);
        self.total += slowest + comm_secs;
        self.comm_total += comm_secs;
        self.pending.fill(0.0);
    }

    /// Total modelled seconds so far (synced rounds only).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Seconds spent in collectives.
    pub fn comm_total(&self) -> f64 {
        self.comm_total
    }

    /// Fraction of total time spent communicating (0 when idle).
    pub fn comm_fraction(&self) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.comm_total / self.total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_takes_slowest_device() {
        let mut c = SimClock::new(3);
        c.charge_device(0, 1.0);
        c.charge_device(1, 3.0);
        c.charge_device(2, 2.0);
        c.sync_round(0.5);
        assert!((c.total() - 3.5).abs() < 1e-15);
        assert!((c.comm_total() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn charges_accumulate_within_round() {
        let mut c = SimClock::new(1);
        c.charge_device(0, 1.0);
        c.charge_device(0, 2.0);
        c.sync_round(0.0);
        assert!((c.total() - 3.0).abs() < 1e-15);
    }

    #[test]
    fn pending_resets_between_rounds() {
        let mut c = SimClock::new(2);
        c.charge_device(0, 5.0);
        c.sync_round(0.0);
        c.charge_device(1, 1.0);
        c.sync_round(0.0);
        assert!((c.total() - 6.0).abs() < 1e-15);
    }

    #[test]
    fn comm_fraction() {
        let mut c = SimClock::new(1);
        assert_eq!(c.comm_fraction(), 0.0);
        c.charge_device(0, 3.0);
        c.sync_round(1.0);
        assert!((c.comm_fraction() - 0.25).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_charge_rejected() {
        let mut c = SimClock::new(1);
        c.charge_device(0, -1.0);
    }
}
