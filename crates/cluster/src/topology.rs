//! Cluster topology: node layout and link cost model.
//!
//! The paper's experiments use configurations `L₁ × L₂` (`L₁` nodes with
//! `L₂` GPUs each, up to `6 × 4`).  Communication cost depends on
//! whether a hop stays inside a node (NVLink-class) or crosses nodes
//! (InfiniBand-class); the defaults are conservative effective numbers,
//! and every normalised figure is insensitive to their absolute values.

use serde::{Deserialize, Serialize};

/// Link cost parameters: latency (seconds) and bandwidth (bytes/sec).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way latency per message, in seconds.
    pub latency: f64,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl LinkSpec {
    /// Time to move `bytes` over this link.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// Node/device layout plus link specs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Topology {
    /// Number of nodes `L₁`.
    pub nodes: usize,
    /// Devices per node `L₂`.
    pub devices_per_node: usize,
    /// Intra-node link (NVLink class).
    pub intra: LinkSpec,
    /// Inter-node link (InfiniBand class).
    pub inter: LinkSpec,
}

impl Topology {
    /// A topology with default link specs (NVLink ≈ 25 GB/s, 5 µs;
    /// InfiniBand ≈ 10 GB/s, 20 µs).
    pub fn new(nodes: usize, devices_per_node: usize) -> Self {
        assert!(nodes >= 1 && devices_per_node >= 1, "empty topology");
        Topology {
            nodes,
            devices_per_node,
            intra: LinkSpec {
                latency: 5e-6,
                bandwidth: 25e9,
            },
            inter: LinkSpec {
                latency: 20e-6,
                bandwidth: 10e9,
            },
        }
    }

    /// Total device count `L = L₁·L₂`.
    pub fn num_devices(&self) -> usize {
        self.nodes * self.devices_per_node
    }

    /// Node index of a device rank (ranks are laid out node-major).
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.devices_per_node
    }

    /// The link connecting two ranks.
    pub fn link(&self, a: usize, b: usize) -> LinkSpec {
        if self.node_of(a) == self.node_of(b) {
            self.intra
        } else {
            self.inter
        }
    }

    /// The paper's §5.4 configuration sweep:
    /// `1×1, 1×2, 1×4, 2×2, 2×4, 4×2, 4×4, 8×2, 6×4`.
    pub fn paper_configurations() -> Vec<Topology> {
        [
            (1, 1),
            (1, 2),
            (1, 4),
            (2, 2),
            (2, 4),
            (4, 2),
            (4, 4),
            (8, 2),
            (6, 4),
        ]
        .into_iter()
        .map(|(l1, l2)| Topology::new(l1, l2))
        .collect()
    }

    /// Display label in the paper's `L₁ × L₂` style.
    pub fn label(&self) -> String {
        format!("{}x{}", self.nodes, self.devices_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_count_and_node_mapping() {
        let t = Topology::new(3, 4);
        assert_eq!(t.num_devices(), 12);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(11), 2);
    }

    #[test]
    fn link_classification() {
        let t = Topology::new(2, 2);
        // Ranks 0,1 on node 0; ranks 2,3 on node 1.
        assert_eq!(t.link(0, 1).bandwidth, t.intra.bandwidth);
        assert_eq!(t.link(1, 2).bandwidth, t.inter.bandwidth);
    }

    #[test]
    fn inter_node_is_slower() {
        let t = Topology::new(2, 1);
        let bytes = 1 << 20;
        assert!(t.inter.transfer_time(bytes) > t.intra.transfer_time(bytes));
    }

    #[test]
    fn paper_sweep_matches_section_54() {
        let configs = Topology::paper_configurations();
        let labels: Vec<String> = configs.iter().map(|t| t.label()).collect();
        assert_eq!(
            labels,
            ["1x1", "1x2", "1x4", "2x2", "2x4", "4x2", "4x4", "8x2", "6x4"]
        );
        let device_counts: Vec<usize> = configs.iter().map(|t| t.num_devices()).collect();
        assert_eq!(device_counts, [1, 2, 4, 4, 8, 8, 16, 16, 24]);
    }

    #[test]
    fn transfer_time_includes_latency() {
        let link = LinkSpec {
            latency: 1e-3,
            bandwidth: 1e9,
        };
        assert!((link.transfer_time(0) - 1e-3).abs() < 1e-15);
        assert!((link.transfer_time(1_000_000_000) - 1.001).abs() < 1e-9);
    }
}
