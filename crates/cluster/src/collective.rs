//! Collective operations: the gradient allreduce of the paper's §4
//! ("local gradient vectors … averaged over the GPUs using a parallel
//! reduction"), implemented as a binomial tree with per-hop cost
//! accounting.
//!
//! The combination order is fixed by the tree structure, so the result
//! is bitwise deterministic — the property that lets the distributed
//! trainer assert exact replica consistency after every update.

use vqmc_tensor::Vector;

use crate::topology::Topology;

/// Binomial-tree allreduce-mean.
///
/// Reduces rank-ordered `vectors` to rank 0 (log₂L steps), divides by
/// `L`, and broadcasts back down the same tree.  Returns the mean and
/// the modelled communication time: each step costs the *slowest active
/// link* of that step (`latency + bytes/bandwidth`), steps being
/// internally parallel but mutually sequential.
pub fn allreduce_mean_tree(mut vectors: Vec<Vector>, topo: &Topology) -> (Vector, f64) {
    let l = vectors.len();
    assert!(l >= 1, "allreduce of zero vectors");
    assert_eq!(l, topo.num_devices(), "vector count != device count");
    let len = vectors[0].len();
    assert!(
        vectors.iter().all(|v| v.len() == len),
        "allreduce: ragged vectors"
    );
    let bytes = len * std::mem::size_of::<f64>();
    let mut comm = 0.0f64;

    // Reduce phase: at stride s, rank r (r multiple of 2s) absorbs r+s.
    let mut stride = 1;
    while stride < l {
        let mut step_cost = 0.0f64;
        let mut r = 0;
        while r + stride < l {
            if r % (2 * stride) == 0 {
                // Move the sender's buffer to the receiver and add.
                let sender = std::mem::replace(&mut vectors[r + stride], Vector::zeros(0));
                vectors[r].axpy(1.0, &sender);
                step_cost = step_cost.max(topo.link(r, r + stride).transfer_time(bytes));
            }
            r += 2 * stride;
        }
        comm += step_cost;
        stride *= 2;
    }
    // True division, not multiplication by a rounded reciprocal: for
    // non-power-of-two L the reciprocal of `l` is inexact and
    // `x * (1/l)` can differ from `x / l` by 1 ulp.
    for x in vectors[0].as_mut_slice() {
        *x /= l as f64;
    }

    // Broadcast phase retraces the tree in reverse; same per-step cost
    // structure (rank 0 already holds the mean, receivers get copies).
    stride = l.next_power_of_two() / 2;
    while stride >= 1 {
        let mut step_cost = 0.0f64;
        let mut r = 0;
        while r + stride < l {
            if r % (2 * stride) == 0 {
                step_cost = step_cost.max(topo.link(r, r + stride).transfer_time(bytes));
            }
            r += 2 * stride;
        }
        comm += step_cost;
        if stride == 1 {
            break;
        }
        stride /= 2;
    }
    if l == 1 {
        comm = 0.0;
    }

    let mean = std::mem::take(&mut vectors[0]);
    (mean, comm)
}

/// Number of tree steps for `l` devices (`⌈log₂ l⌉`), exposed for the
/// analytical scaling model in the benches.
pub fn tree_depth(l: usize) -> usize {
    assert!(l >= 1);
    (usize::BITS - (l - 1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vectors(l: usize, len: usize) -> Vec<Vector> {
        (0..l)
            .map(|r| Vector::from_fn(len, |i| (r * len + i) as f64))
            .collect()
    }

    fn exact_mean(vs: &[Vector]) -> Vector {
        let mut acc = Vector::zeros(vs[0].len());
        for v in vs {
            acc.axpy(1.0, v);
        }
        acc.scale(1.0 / vs.len() as f64);
        acc
    }

    #[test]
    fn mean_correct_for_all_device_counts() {
        for l in 1..=17 {
            let topo = Topology::new(1, l);
            let vs = vectors(l, 7);
            let expect = exact_mean(&vs);
            let (mean, _) = allreduce_mean_tree(vs, &topo);
            for i in 0..7 {
                assert!(
                    (mean[i] - expect[i]).abs() < 1e-12,
                    "L={l}, element {i}"
                );
            }
        }
    }

    #[test]
    fn comm_time_grows_logarithmically() {
        let len = 1 << 16;
        let mut prev = 0.0;
        for &l in &[2usize, 4, 8, 16] {
            let topo = Topology::new(1, l);
            let (_, comm) = allreduce_mean_tree(vectors(l, len), &topo);
            assert!(comm > prev, "comm must grow with L");
            prev = comm;
        }
        // Doubling L adds one reduce step and one broadcast step, not a
        // doubling: 16 devices should cost far less than 8× the 2-device
        // time.
        let t2 = {
            let topo = Topology::new(1, 2);
            allreduce_mean_tree(vectors(2, len), &topo).1
        };
        assert!(prev < 8.0 * t2);
    }

    #[test]
    fn inter_node_hops_cost_more() {
        let len = 1 << 16;
        let intra = allreduce_mean_tree(vectors(4, len), &Topology::new(1, 4)).1;
        let inter = allreduce_mean_tree(vectors(4, len), &Topology::new(4, 1)).1;
        assert!(inter > intra);
    }

    #[test]
    fn single_device_free() {
        let topo = Topology::new(1, 1);
        let (mean, comm) = allreduce_mean_tree(vectors(1, 5), &topo);
        assert_eq!(comm, 0.0);
        assert_eq!(mean[2], 2.0);
    }

    #[test]
    fn tree_depth_values() {
        assert_eq!(tree_depth(1), 0);
        assert_eq!(tree_depth(2), 1);
        assert_eq!(tree_depth(3), 2);
        assert_eq!(tree_depth(4), 2);
        assert_eq!(tree_depth(24), 5);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_vectors_rejected() {
        let topo = Topology::new(1, 2);
        let _ = allreduce_mean_tree(vec![Vector::zeros(3), Vector::zeros(4)], &topo);
    }
}
