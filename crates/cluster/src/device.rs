//! Device specification and the memory model behind the paper's
//! "saturate each GPU" batch-size schedule.

use serde::{Deserialize, Serialize};

/// Specification of one accelerator device.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Device memory in bytes.
    pub mem_bytes: u64,
    /// Effective sustained throughput in flop/s used by the modelled
    /// clock.  (Peak V100 fp32 is 15.7 Tflop/s; dense f64 workloads with
    /// memory-bound phases sustain far less — the default uses 5 Tflop/s
    /// effective, which only shifts all modelled times by a constant and
    /// cancels in every normalised figure.)
    pub flops_per_sec: f64,
    /// Fixed overhead per batched forward pass (kernel launches +
    /// framework dispatch).  The paper's Table 1 timings are dominated
    /// by this term — at its problem sizes each pass moves too few
    /// flops to hide the launch cost — so sampling time is essentially
    /// `pass_count × overhead`, which is why MADE&AUTO's time "scales
    /// roughly linearly with the number of dimensions".  0.5 ms/pass
    /// reproduces the paper's per-pass cost to within ~30 %.
    pub pass_overhead_secs: f64,
}

/// Calibrated per-sample memory footprint coefficients (bytes).
///
/// `footprint(n, h) = ALPHA·n² + BETA·n·h` per sample:
/// * the `n²` term is the neighbour-evaluation buffer of the TIM local
///   energy (each sample spawns `n` flip-neighbours of `n` spins each,
///   plus framework overhead);
/// * the `n·h` term is the activation footprint of the forward passes.
///
/// The constants are calibrated once so that
/// [`DeviceSpec::paper_minibatch`] reproduces the paper's Table 7
/// samples-per-GPU row exactly (2¹⁹ at n=20 … 2² at n=10⁴); the unit
/// test pins the whole row.
pub const ALPHA_BYTES_PER_N2: f64 = 56.0;
/// Activation coefficient of the memory model (see
/// [`ALPHA_BYTES_PER_N2`]).
pub const BETA_BYTES_PER_NH: f64 = 20.0;

impl DeviceSpec {
    /// The paper's device: NVIDIA Tesla V100 with 32 GB.
    pub fn v100() -> Self {
        DeviceSpec {
            mem_bytes: 32 * 1024 * 1024 * 1024,
            flops_per_sec: 5.0e12,
            pass_overhead_secs: 5.0e-4,
        }
    }

    /// A deliberately tiny device for tests.
    pub fn toy(mem_bytes: u64) -> Self {
        DeviceSpec {
            mem_bytes,
            flops_per_sec: 1.0e9,
            pass_overhead_secs: 1.0e-6,
        }
    }

    /// Largest per-device minibatch that fits an `n`-spin problem with
    /// hidden width `h` (not rounded).
    pub fn max_minibatch(&self, n: usize, h: usize) -> usize {
        let per_sample =
            ALPHA_BYTES_PER_N2 * (n * n) as f64 + BETA_BYTES_PER_NH * (n * h) as f64;
        // Parameters + Adam moments + gradient: 4 copies of d doubles.
        let d = (2 * n * h + n + h) as f64;
        let fixed = 4.0 * 8.0 * d;
        let budget = self.mem_bytes as f64 - fixed;
        assert!(budget > per_sample, "model does not fit on the device");
        (budget / per_sample) as usize
    }

    /// [`Self::max_minibatch`] rounded down to a power of two — the
    /// paper's Table 7 convention.
    pub fn paper_minibatch(&self, n: usize, h: usize) -> usize {
        let m = self.max_minibatch(n, h);
        assert!(m >= 1);
        1 << (usize::BITS - 1 - m.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn made_h(n: usize) -> usize {
        let ln = (n as f64).ln();
        (5.0 * ln * ln).round().max(1.0) as usize
    }

    /// The paper's Table 7 header: samples per GPU saturating a V100
    /// for every problem dimension.
    #[test]
    fn reproduces_table7_minibatch_row() {
        let v100 = DeviceSpec::v100();
        let expected: &[(usize, usize)] = &[
            (20, 1 << 19),
            (50, 1 << 17),
            (100, 1 << 15),
            (200, 1 << 13),
            (500, 1 << 11),
            (1000, 1 << 9),
            (2000, 1 << 7),
            (5000, 1 << 4),
            (10_000, 1 << 2),
        ];
        for &(n, mbs) in expected {
            let got = v100.paper_minibatch(n, made_h(n));
            assert_eq!(got, mbs, "n = {n}: got {got}, paper has {mbs}");
        }
    }

    #[test]
    fn minibatch_monotone_in_memory() {
        let small = DeviceSpec::toy(1 << 30);
        let big = DeviceSpec::toy(1 << 34);
        let h = made_h(500);
        assert!(big.max_minibatch(500, h) > small.max_minibatch(500, h));
    }

    #[test]
    fn paper_minibatch_is_power_of_two_and_fits() {
        let v100 = DeviceSpec::v100();
        for n in [33usize, 77, 1234] {
            let h = made_h(n);
            let p = v100.paper_minibatch(n, h);
            assert!(p.is_power_of_two());
            assert!(p <= v100.max_minibatch(n, h));
            assert!(2 * p > v100.max_minibatch(n, h), "not the largest power of two");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_model_rejected() {
        let tiny = DeviceSpec::toy(1024);
        let _ = tiny.max_minibatch(1000, 400);
    }
}
