//! Exact maximum cut by exhaustive enumeration — the oracle behind the
//! approximation-ratio tests and the small-instance EXPERIMENTS entries.

use vqmc_hamiltonian::Graph;

/// Exact maximum cut for `n ≤ 26` vertices.
///
/// Enumerates the `2^{n−1}` partitions with vertex 0 fixed on side 0
/// (complement symmetry halves the work), updating the cut value by the
/// *delta* of the single bit that changes along a Gray-code walk — `O(deg)`
/// per step instead of `O(|E|)`.
pub fn brute_force(graph: &Graph) -> (Vec<u8>, usize) {
    let n = graph.num_vertices();
    assert!(n >= 1, "brute_force: empty graph");
    assert!(n <= 26, "brute_force: n = {n} is too large to enumerate");

    // Adjacency lists for O(deg) flip deltas.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in graph.edges() {
        adj[a].push(b);
        adj[b].push(a);
    }

    let mut x = vec![0u8; n];
    let mut cut = 0i64;
    let mut best_cut = 0i64;
    let mut best_x = x.clone();

    // Gray-code walk over the free bits 1..n.
    let free = n - 1;
    let total = 1u64 << free;
    for g in 1..total {
        // Index of the bit that flips between Gray(g-1) and Gray(g).
        let changed = g.trailing_zeros() as usize + 1; // skip fixed vertex 0
        // Delta: edges from `changed` to neighbours flip cut membership.
        let side = x[changed];
        let mut delta = 0i64;
        for &nb in &adj[changed] {
            if x[nb] == side {
                delta += 1; // becomes cut
            } else {
                delta -= 1; // becomes uncut
            }
        }
        x[changed] ^= 1;
        cut += delta;
        if cut > best_cut {
            best_cut = cut;
            best_x = x.clone();
        }
    }
    (best_x, best_cut as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_max_cut_is_two() {
        let g = Graph::complete(3);
        let (x, cut) = brute_force(&g);
        assert_eq!(cut, 2);
        assert_eq!(g.cut_value(&x), 2);
    }

    #[test]
    fn even_cycle_fully_cuttable() {
        let g = Graph::cycle(8);
        let (_, cut) = brute_force(&g);
        assert_eq!(cut, 8);
    }

    #[test]
    fn odd_cycle_loses_one_edge() {
        let g = Graph::cycle(9);
        let (_, cut) = brute_force(&g);
        assert_eq!(cut, 8);
    }

    #[test]
    fn complete_graph_formula() {
        // Max cut of K_n is ⌊n/2⌋·⌈n/2⌉.
        for n in 2..=9 {
            let g = Graph::complete(n);
            let (_, cut) = brute_force(&g);
            assert_eq!(cut, (n / 2) * n.div_ceil(2), "K_{n}");
        }
    }

    #[test]
    fn bipartite_graph_cuts_everything() {
        // K_{3,4}: all 12 edges cuttable.
        let edges: Vec<(usize, usize)> = (0..3).flat_map(|a| (3..7).map(move |b| (a, b))).collect();
        let g = Graph::from_edges(7, edges);
        let (_, cut) = brute_force(&g);
        assert_eq!(cut, 12);
    }

    #[test]
    fn gray_walk_matches_naive_enumeration() {
        let g = Graph::random_bernoulli(12, 17);
        let (_, fast) = brute_force(&g);
        // Naive reference.
        let mut best = 0;
        for bits in 0..(1u32 << 12) {
            let x: Vec<u8> = (0..12).map(|i| ((bits >> i) & 1) as u8).collect();
            best = best.max(g.cut_value(&x));
        }
        assert_eq!(fast, best);
    }

    #[test]
    fn returned_assignment_achieves_reported_cut() {
        let g = Graph::random_bernoulli(14, 23);
        let (x, cut) = brute_force(&g);
        assert_eq!(g.cut_value(&x), cut);
    }
}
