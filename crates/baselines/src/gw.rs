//! Goemans–Williamson hyperplane rounding and the full GW pipeline.
//!
//! Given unit vectors `v_i` from the SDP relaxation, a random hyperplane
//! with normal `r ~ N(0, I)` partitions the vertices by
//! `x_i = [v_i·r < 0]`.  Goemans & Williamson (1995) proved the expected
//! cut is at least `0.87856…` of the SDP optimum, hence of the maximum
//! cut.  The practical implementation rounds many hyperplanes and keeps
//! the best.

use rand::rngs::StdRng;
use vqmc_hamiltonian::Graph;
use vqmc_tensor::Matrix;

use crate::sdp::{gaussian, BmConfig, BurerMonteiro};

/// Result of a GW run.
#[derive(Clone, Debug)]
pub struct GwResult {
    /// Best rounded partition.
    pub assignment: Vec<u8>,
    /// Its cut value.
    pub cut: usize,
    /// The SDP upper bound used for rounding.
    pub sdp_value: f64,
}

/// Rounds an SDP factor with `rounds` random hyperplanes, returning the
/// best partition found.
pub fn hyperplane_round(
    graph: &Graph,
    v: &Matrix,
    rounds: usize,
    rng: &mut StdRng,
) -> (Vec<u8>, usize) {
    assert!(rounds >= 1, "hyperplane_round: zero rounds");
    let n = graph.num_vertices();
    let k = v.cols();
    let mut best_x = vec![0u8; n];
    let mut best_cut = 0usize;
    for round in 0..rounds {
        let r: Vec<f64> = (0..k).map(|_| gaussian(rng)).collect();
        let x: Vec<u8> = (0..n)
            .map(|i| (vqmc_tensor::vector::dot(v.row(i), &r) < 0.0) as u8)
            .collect();
        let cut = graph.cut_value(&x);
        if round == 0 || cut > best_cut {
            best_cut = cut;
            best_x = x;
        }
    }
    (best_x, best_cut)
}

/// Greedy 1-opt local search: repeatedly flip any vertex whose flip
/// increases the cut, until none exists.  A cheap polish pass used by
/// the Burer–Monteiro baseline (the paper's BM rows dominate its GW
/// rows by a similar margin).
pub fn local_search_1opt(graph: &Graph, x: &mut [u8]) -> usize {
    let n = graph.num_vertices();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in graph.edges() {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n {
            // Gain of flipping i: (#same-side neighbours) − (#cut ones).
            let mut gain = 0i64;
            for &j in &adj[i] {
                if x[j] == x[i] {
                    gain += 1;
                } else {
                    gain -= 1;
                }
            }
            if gain > 0 {
                x[i] ^= 1;
                improved = true;
            }
        }
    }
    graph.cut_value(x)
}

/// The full Goemans–Williamson algorithm: solve the Max-Cut SDP (via a
/// full-rank Burer–Monteiro factorisation, which is equivalent), round
/// `rounds` hyperplanes, keep the best.
pub fn goemans_williamson(graph: &Graph, rounds: usize, rng: &mut StdRng) -> GwResult {
    let n = graph.num_vertices();
    // Full rank (capped for big instances where √(2n)+margin suffices:
    // beyond the Barvinok–Pataki bound the landscape is benign).
    let rank = if n <= 64 {
        n.max(1)
    } else {
        BurerMonteiro::default_rank(n) * 2
    };
    let cfg = BmConfig {
        rank: Some(rank),
        max_iter: 2000,
        grad_tol: 1e-7,
    };
    let sol = BurerMonteiro::new(cfg).solve(graph, rng);
    let (assignment, cut) = hyperplane_round(graph, &sol.v, rounds, rng);
    GwResult {
        assignment,
        cut,
        sdp_value: sol.sdp_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;
    use rand::SeedableRng;

    #[test]
    fn gw_achieves_ratio_on_random_instances() {
        // Statistical check of the 0.878 guarantee (best-of-rounds makes
        // it comfortable on seeded instances).
        for seed in 0..4u64 {
            let g = Graph::random_bernoulli(14, 100 + seed);
            let (_, opt) = brute_force(&g);
            let gw = goemans_williamson(&g, 50, &mut StdRng::seed_from_u64(seed));
            let ratio = gw.cut as f64 / opt as f64;
            assert!(
                ratio >= 0.878,
                "seed {seed}: GW {} / OPT {opt} = {ratio}",
                gw.cut
            );
            assert!(gw.cut <= opt, "rounding cannot beat the optimum");
            assert!(gw.sdp_value >= opt as f64 - 1e-5, "SDP bound violated");
        }
    }

    #[test]
    fn rounding_respects_reported_cut() {
        let g = Graph::random_bernoulli(20, 3);
        let gw = goemans_williamson(&g, 10, &mut StdRng::seed_from_u64(9));
        assert_eq!(g.cut_value(&gw.assignment), gw.cut);
    }

    #[test]
    fn bipartite_recovered_exactly() {
        let edges: Vec<(usize, usize)> = (0..5).flat_map(|a| (5..10).map(move |b| (a, b))).collect();
        let g = Graph::from_edges(10, edges);
        let gw = goemans_williamson(&g, 30, &mut StdRng::seed_from_u64(2));
        assert_eq!(gw.cut, 25, "bipartite max cut must be found");
    }

    #[test]
    fn local_search_never_decreases() {
        let g = Graph::random_bernoulli(25, 8);
        let mut rng = StdRng::seed_from_u64(4);
        let (mut x, before) = crate::random_cut(&g, 1, &mut rng);
        let after = local_search_1opt(&g, &mut x);
        assert!(after >= before);
        // 1-opt fixed point: no single flip improves.
        for i in 0..25 {
            let mut y = x.clone();
            y[i] ^= 1;
            assert!(g.cut_value(&y) <= after, "vertex {i} still improves");
        }
    }

    #[test]
    fn more_hyperplanes_never_worse() {
        let g = Graph::random_bernoulli(16, 6);
        let sol = BurerMonteiro::default().solve(&g, &mut StdRng::seed_from_u64(5));
        let few = hyperplane_round(&g, &sol.v, 1, &mut StdRng::seed_from_u64(7)).1;
        let many = hyperplane_round(&g, &sol.v, 64, &mut StdRng::seed_from_u64(7)).1;
        assert!(many >= few);
    }
}
