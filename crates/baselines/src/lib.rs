//! # vqmc-baselines
//!
//! The classical Max-Cut algorithms the paper benchmarks VQMC against
//! (its Table 2 "Classical" rows), implemented from scratch:
//!
//! * [`random_cut`] — the 0.5-approximation: assign each vertex to a
//!   side by a fair coin.
//! * [`goemans_williamson`] — the 0.878-approximation: solve the Max-Cut
//!   SDP relaxation, then round with a random hyperplane.  The paper
//!   used CVXPY's interior-point solver; we solve the SDP through a
//!   **high-rank Burer–Monteiro factorisation** (rank `n` makes the
//!   factorised problem equivalent to the SDP, and Riemannian descent on
//!   the product of spheres converges to its optimum — the standard
//!   result behind Manopt's Max-Cut example).  The substitution is
//!   recorded in DESIGN.md.
//! * [`BurerMonteiro`] — the low-rank reformulation itself (paper's
//!   third baseline, after Burer & Monteiro 2001 / Journée et al. 2010),
//!   with rank `⌈√(2n)⌉ + 1` (above the Barvinok–Pataki bound, so no
//!   spurious local optima in the generic case), rounded with the best
//!   of many hyperplanes **plus 1-opt local search** — matching the
//!   slightly-better-than-GW behaviour of the paper's Table 2.
//! * [`brute_force`] — exact maximum cut by exhaustive enumeration
//!   (`n ≤ 26`), the oracle for every approximation-ratio test.

#![warn(missing_docs)]

pub mod brute;
pub mod gw;
pub mod sdp;

pub use brute::brute_force;
pub use gw::{goemans_williamson, hyperplane_round, local_search_1opt, GwResult};
pub use sdp::{BmConfig, BmSolution, BurerMonteiro};

use rand::rngs::StdRng;
use rand::Rng;
use vqmc_hamiltonian::Graph;

/// The 0.5-approximation: a uniformly random partition.
///
/// Returns the best cut over `trials` independent coins (the paper's
/// Table 2 reports the single-shot mean; `trials = 1` gives that).
pub fn random_cut(graph: &Graph, trials: usize, rng: &mut StdRng) -> (Vec<u8>, usize) {
    assert!(trials >= 1, "random_cut: zero trials");
    let n = graph.num_vertices();
    let mut best_x = vec![0u8; n];
    let mut best_cut = 0usize;
    for t in 0..trials {
        let x: Vec<u8> = (0..n).map(|_| rng.gen::<bool>() as u8).collect();
        let cut = graph.cut_value(&x);
        if t == 0 || cut > best_cut {
            best_cut = cut;
            best_x = x;
        }
    }
    (best_x, best_cut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_cut_is_half_of_edges_in_expectation() {
        let g = Graph::random_bernoulli(60, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let samples = 300;
        let mean: f64 = (0..samples)
            .map(|_| random_cut(&g, 1, &mut rng).1 as f64)
            .sum::<f64>()
            / samples as f64;
        let expected = g.num_edges() as f64 / 2.0;
        // Each edge is cut with probability 1/2; CLT bounds the error.
        assert!(
            (mean - expected).abs() < expected * 0.05,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn more_trials_never_worse() {
        let g = Graph::random_bernoulli(30, 7);
        let one = random_cut(&g, 1, &mut StdRng::seed_from_u64(5)).1;
        let many = random_cut(&g, 64, &mut StdRng::seed_from_u64(5)).1;
        assert!(many >= one);
    }
}
