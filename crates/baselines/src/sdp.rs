//! Burer–Monteiro low-rank factorisation of the Max-Cut SDP, optimised
//! by Riemannian gradient descent on the product of unit spheres.
//!
//! The Max-Cut SDP relaxation is
//!
//! ```text
//! max  Σ_{(i,j)∈E} (1 − X_ij)/2    s.t. X ⪰ 0, X_ii = 1,
//! ```
//!
//! and Burer–Monteiro substitutes `X = V Vᵀ` with `V ∈ ℝ^{n×k}`, turning
//! the conic program into smooth optimisation over unit rows
//! (`‖v_i‖ = 1`) — the manifold `(S^{k−1})ⁿ`.  For `k > √(2n)`
//! (Barvinok–Pataki) second-order points of the factorised problem are
//! globally optimal for the SDP in the generic case; with `k = n` the
//! equivalence is unconditional, which is how [`crate::goemans_williamson`]
//! obtains the true SDP optimum.
//!
//! The solver is projected Riemannian gradient ascent with backtracking
//! line search — the first-order core of the Riemannian trust-region
//! method the paper cites (Absil et al. 2007); the trust-region outer
//! loop adds robustness the smooth sphere geometry doesn't need here
//! (the tests verify convergence to the known SDP optima).

use rand::rngs::StdRng;
use rand::Rng;
use vqmc_hamiltonian::Graph;
use vqmc_tensor::Matrix;

/// Burer–Monteiro solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct BmConfig {
    /// Factorisation rank `k`; `None` selects `⌈√(2n)⌉ + 1`.
    pub rank: Option<usize>,
    /// Maximum gradient-ascent iterations.
    pub max_iter: usize,
    /// Stop when the Riemannian gradient norm falls below this.
    pub grad_tol: f64,
}

impl Default for BmConfig {
    fn default() -> Self {
        BmConfig {
            rank: None,
            max_iter: 1000,
            grad_tol: 1e-6,
        }
    }
}

/// A solved factorisation.
#[derive(Clone, Debug)]
pub struct BmSolution {
    /// Row-normalised factor `V (n×k)`.
    pub v: Matrix,
    /// SDP objective value `Σ_{(i,j)∈E} (1 − v_i·v_j)/2` — an upper
    /// bound on the maximum cut.
    pub sdp_value: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Final Riemannian gradient norm.
    pub grad_norm: f64,
}

/// The Burer–Monteiro Max-Cut solver.
#[derive(Clone, Copy, Debug, Default)]
pub struct BurerMonteiro {
    /// Solver configuration.
    pub config: BmConfig,
}

impl BurerMonteiro {
    /// Creates a solver.
    pub fn new(config: BmConfig) -> Self {
        BurerMonteiro { config }
    }

    /// Default rank `⌈√(2n)⌉ + 1`.
    pub fn default_rank(n: usize) -> usize {
        ((2.0 * n as f64).sqrt().ceil() as usize + 1).min(n.max(1))
    }

    /// Solves the factorised SDP for `graph`.
    pub fn solve(&self, graph: &Graph, rng: &mut StdRng) -> BmSolution {
        let n = graph.num_vertices();
        let k = self.config.rank.unwrap_or_else(|| Self::default_rank(n));
        assert!(k >= 1, "BurerMonteiro: zero rank");

        // Random start on the manifold.
        let mut v = Matrix::from_fn(n, k, |_, _| gaussian(rng));
        normalize_rows(&mut v);

        // Objective: f(V) = Σ_E (1 − v_i·v_j)/2.  Ascent direction uses
        // ∇_{v_i} f = −½ Σ_{j∈N(i)} v_j, projected onto the tangent.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in graph.edges() {
            adj[a].push(b);
            adj[b].push(a);
        }

        let mut step = 1.0f64;
        let mut value = sdp_objective(graph, &v);
        let mut grad_norm = f64::INFINITY;
        let mut iterations = 0;

        for it in 0..self.config.max_iter {
            iterations = it + 1;
            // Euclidean gradient of the *ascent* objective.
            let mut grad = Matrix::zeros(n, k);
            for (i, adj_i) in adj.iter().enumerate() {
                let gi = grad.row_mut(i);
                for &j in adj_i {
                    // Borrow discipline: copy neighbour row (k is small).
                    for (g, &vj) in gi.iter_mut().zip(v.row(j)) {
                        *g -= 0.5 * vj;
                    }
                }
            }
            // Project onto the tangent space of each sphere.
            for i in 0..n {
                let radial = vqmc_tensor::vector::dot(grad.row(i), v.row(i));
                let vi: Vec<f64> = v.row(i).to_vec();
                vqmc_tensor::vector::axpy(grad.row_mut(i), -radial, &vi);
            }
            grad_norm = grad.frobenius_norm();
            if grad_norm < self.config.grad_tol {
                break;
            }

            // Backtracking line search on the retraction (row renorm).
            let mut accepted = false;
            for _ in 0..40 {
                let mut trial = v.clone();
                trial.axpy(step, &grad);
                normalize_rows(&mut trial);
                let trial_value = sdp_objective(graph, &trial);
                if trial_value > value + 1e-12 {
                    v = trial;
                    value = trial_value;
                    step = (step * 1.5).min(10.0);
                    accepted = true;
                    break;
                }
                step *= 0.5;
            }
            if !accepted {
                break; // line search stalled at a stationary point
            }
        }

        BmSolution {
            v,
            sdp_value: value,
            iterations,
            grad_norm,
        }
    }
}

/// The SDP objective `Σ_{(i,j)∈E} (1 − v_i·v_j)/2`.
pub fn sdp_objective(graph: &Graph, v: &Matrix) -> f64 {
    graph
        .edges()
        .iter()
        .map(|&(a, b)| (1.0 - vqmc_tensor::vector::dot(v.row(a), v.row(b))) / 2.0)
        .sum()
}

fn normalize_rows(v: &mut Matrix) {
    for i in 0..v.rows() {
        let row = v.row_mut(i);
        let norm = vqmc_tensor::vector::dot(row, row).sqrt();
        assert!(norm > 0.0, "zero row cannot be normalised");
        for x in row {
            *x /= norm;
        }
    }
}

/// Standard normal via Box–Muller (keeps `rand_distr` out of the
/// dependency set).
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rank_rule() {
        assert_eq!(BurerMonteiro::default_rank(50), 11);
        assert!(BurerMonteiro::default_rank(2) <= 2);
    }

    #[test]
    fn rows_stay_on_sphere() {
        let g = Graph::random_bernoulli(20, 3);
        let sol = BurerMonteiro::default().solve(&g, &mut StdRng::seed_from_u64(1));
        for i in 0..20 {
            let norm = vqmc_tensor::vector::dot(sol.v.row(i), sol.v.row(i));
            assert!((norm - 1.0).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn sdp_value_upper_bounds_max_cut() {
        let g = Graph::random_bernoulli(16, 9);
        let sol = BurerMonteiro::default().solve(&g, &mut StdRng::seed_from_u64(2));
        let (_, opt) = crate::brute_force(&g);
        assert!(
            sol.sdp_value >= opt as f64 - 1e-6,
            "SDP {} below OPT {opt}",
            sol.sdp_value
        );
        // And not absurdly loose: the SDP is at most OPT/0.878.
        assert!(sol.sdp_value <= opt as f64 / 0.8785 + 1e-6);
    }

    #[test]
    fn bipartite_sdp_is_tight() {
        // On bipartite graphs the SDP equals the max cut (all edges cut,
        // antipodal vectors).
        let edges: Vec<(usize, usize)> = (0..4).flat_map(|a| (4..8).map(move |b| (a, b))).collect();
        let g = Graph::from_edges(8, edges);
        let sol = BurerMonteiro::default().solve(&g, &mut StdRng::seed_from_u64(3));
        assert!(
            (sol.sdp_value - 16.0).abs() < 1e-4,
            "SDP {} should be 16",
            sol.sdp_value
        );
    }

    #[test]
    fn triangle_sdp_known_value() {
        // SDP optimum of K₃ is 3·(1−cos(2π/3))/2 = 9/4.
        let g = Graph::complete(3);
        let cfg = BmConfig {
            rank: Some(3),
            max_iter: 4000,
            grad_tol: 1e-10,
        };
        let sol = BurerMonteiro::new(cfg).solve(&g, &mut StdRng::seed_from_u64(4));
        assert!(
            (sol.sdp_value - 2.25).abs() < 1e-3,
            "SDP {} should be 2.25",
            sol.sdp_value
        );
    }

    #[test]
    fn gaussian_moments_sane() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
