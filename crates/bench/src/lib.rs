//! # vqmc-bench
//!
//! Reproduction harness for the paper's evaluation section.  One binary
//! per table/figure (see DESIGN.md §5 for the index):
//!
//! | binary | paper artefact |
//! |---|---|
//! | `repro_table1` | Table 1 — training time, RBM&MCMC vs MADE&AUTO |
//! | `repro_fig2` | Figure 2 — training curves (energy ± std) |
//! | `repro_table2` | Table 2 — converged objectives + classical baselines |
//! | `repro_fig3` / `repro_table7` | Figure 3 / Table 7 — weak-scaling sampling times |
//! | `repro_fig4` / `repro_table6` | Figure 4 / Table 6 — energy vs #GPUs at mbs = 4 |
//! | `repro_table3` | Table 3 — latent-size ablation |
//! | `repro_table4` | Table 4 — MCMC-scheme ablation |
//! | `repro_table5` | Table 5 — hitting time to target cut |
//! | `repro_efficiency` | Eq. 14/15 — parallel-efficiency models |
//!
//! Every binary accepts `--dims a,b,c`, `--iters N`, `--seeds K`,
//! `--batch B` and `--full` (paper-scale parameters; expect long runs
//! on a laptop), defaulting to scaled-down parameters that finish in
//! minutes while preserving every qualitative shape.  All binaries
//! print the table to stdout and, with `--csv PATH`, also write
//! machine-readable CSV.
//!
//! The `benches/` directory holds criterion micro-benchmarks for the
//! design-choice ablations DESIGN.md calls out (gemm threshold,
//! incremental AUTO sampling, SR solve cost, collective depth).

pub mod harness;

pub use harness::{mean_std, parse_scale, pm, write_csv, Scale, Table};
