//! Shared experiment plumbing: CLI scale parsing, table formatting, CSV
//! output.

use std::io::Write as _;

/// Experiment scale, parsed from the command line.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Problem dimensions to sweep.
    pub dims: Vec<usize>,
    /// Training iterations per run.
    pub iterations: usize,
    /// Batch size (single-device experiments).
    pub batch_size: usize,
    /// Number of random seeds to average over.
    pub seeds: usize,
    /// Whether `--full` (paper-scale) was requested.
    pub full: bool,
    /// Optional CSV output path.
    pub csv: Option<String>,
}

/// Parses the standard flags.  `default_*` are the scaled-down values;
/// `--full` swaps in the paper's parameters (`full_dims`, 300
/// iterations, batch 1024, 5 seeds).
pub fn parse_scale(default_dims: &[usize], full_dims: &[usize], default_iters: usize) -> Scale {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale {
        dims: default_dims.to_vec(),
        iterations: default_iters,
        batch_size: 256,
        seeds: 3,
        full: false,
        csv: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => {
                scale.full = true;
                scale.dims = full_dims.to_vec();
                scale.iterations = 300;
                scale.batch_size = 1024;
                scale.seeds = 5;
            }
            "--dims" => {
                i += 1;
                scale.dims = args[i]
                    .split(',')
                    .map(|d| d.parse().expect("--dims wants integers"))
                    .collect();
            }
            "--iters" => {
                i += 1;
                scale.iterations = args[i].parse().expect("--iters wants an integer");
            }
            "--batch" => {
                i += 1;
                scale.batch_size = args[i].parse().expect("--batch wants an integer");
            }
            "--seeds" => {
                i += 1;
                scale.seeds = args[i].parse().expect("--seeds wants an integer");
            }
            "--csv" => {
                i += 1;
                scale.csv = Some(args[i].clone());
            }
            other => panic!("unknown flag {other} (see crate docs for usage)"),
        }
        i += 1;
    }
    scale
}

/// A printable result table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Pretty-prints with per-column alignment.
    pub fn print(&self) {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let print_row = |cells: &[String]| {
            let line: Vec<String> = (0..ncols)
                .map(|c| format!("{:>width$}", cells[c], width = widths[c]))
                .collect();
            println!("{}", line.join("  "));
        };
        print_row(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        println!("{}", "-".repeat(total));
        for row in &self.rows {
            print_row(row);
        }
    }
}

/// Writes a table as CSV.
pub fn write_csv(table: &Table, path: &str) {
    let mut f = std::fs::File::create(path).expect("cannot create CSV file");
    writeln!(f, "{}", table.headers.join(",")).expect("CSV write failed");
    for row in &table.rows {
        writeln!(f, "{}", row.join(",")).expect("CSV write failed");
    }
    eprintln!("(wrote {path})");
}

/// Mean and population standard deviation of a slice — the `μ ± σ`
/// the paper reports over seeds.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// Formats `μ ± σ` the way the paper's tables do.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{mean:.1} ± {std:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_known() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m, 2.5);
        assert!((s - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(vec!["only-one".into()])
        }));
        assert!(result.is_err());
    }

    #[test]
    fn pm_format() {
        assert_eq!(pm(43.0, 0.0), "43.0 ± 0.0");
    }
}
