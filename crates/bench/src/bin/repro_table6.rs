//! **Table 6 / Figure 4** — converged energy and running time for TIM
//! as the device count grows with a *fixed* per-device minibatch of 4:
//! the effective batch is `4·L`, and the paper's observation is that
//! the converged energy improves with `L` (more exploration) while the
//! time stays flat.
//!
//! This binary actually *trains* at every `(n, topology)` cell (real
//! sampling, real gradients, real allreduces on the virtual cluster)
//! and reports the converged energy plus the modelled time.
//!
//! ```sh
//! cargo run --release -p vqmc-bench --bin repro_table6 [-- --dims 20,50]
//! ```

use vqmc_bench::{parse_scale, write_csv, Table};
use vqmc_cluster::{Cluster, DeviceSpec, Topology};
use vqmc_core::{DistributedConfig, DistributedTrainer, OptimizerChoice};
use vqmc_hamiltonian::TransverseFieldIsing;
use vqmc_nn::{made_hidden_size, Made};
use vqmc_sampler::IncrementalAutoSampler;

fn main() {
    let scale = parse_scale(&[20, 50], &[20, 50, 100, 200, 500], 60);
    let mbs = 4usize; // the paper's Table 6 setting
    println!(
        "Table 6 / Figure 4 reproduction: energy & modelled time vs GPU \
         configuration, mbs = {mbs}, {} iterations\n",
        scale.iterations
    );

    let mut table = Table::new(&[
        "config",
        "L",
        "eff.batch",
        "n",
        "energy",
        "modelled s",
        "wall s",
    ]);
    for &n in &scale.dims {
        let hidden = made_hidden_size(n);
        let h = TransverseFieldIsing::random(n, 1000 + n as u64);
        for topo in Topology::paper_configurations() {
            let label = topo.label();
            let l = topo.num_devices();
            let cluster = Cluster::new(topo, DeviceSpec::v100());
            let wf = Made::new(n, hidden, 1);
            let config = DistributedConfig {
                iterations: scale.iterations,
                minibatch_per_device: mbs,
                optimizer: OptimizerChoice::paper_default(),
                local_energy: Default::default(),
                seed: 9,
                cost_hidden: hidden,
                cost_offdiag: n,
            };
            let mut t = DistributedTrainer::new(cluster, wf, IncrementalAutoSampler::new(), config);
            let trace = t.run(&h);
            table.row(vec![
                label,
                l.to_string(),
                (mbs * l).to_string(),
                n.to_string(),
                format!("{:.2}", trace.final_energy()),
                format!("{:.4}", t.elapsed_modelled()),
                format!("{:.2}", trace.total_secs),
            ]);
        }
    }
    table.print();
    if let Some(path) = &scale.csv {
        write_csv(&table, path);
    }
    println!(
        "\nShape checks (the paper's Table 6): at fixed n, energy improves \
         (grows in magnitude) as L increases — saturating for small n — \
         while the modelled time stays nearly constant.\n\
         Figure 4 is this table with each n-column divided by its \
         largest-magnitude entry."
    );
}
