//! **Table 4** — MCMC sampling-scheme ablation for RBM on Max-Cut:
//!
//! * Scheme 1 (burn-in): discard the first `{n, 3n+100, 10n}` states;
//! * Scheme 2 (thinning): keep every `{2, 5, 10}`-th state.
//!
//! Paper shape to reproduce: longer chains (`10n`, `×10`) score better
//! but cost proportionally more time; the time scales with the chain
//! length, not the model size.
//!
//! ```sh
//! cargo run --release -p vqmc-bench --bin repro_table4 [-- --full]
//! ```

use vqmc_bench::{mean_std, parse_scale, write_csv, Table};
use vqmc_core::{OptimizerChoice, Trainer, TrainerConfig};
use vqmc_hamiltonian::MaxCut;
use vqmc_nn::{rbm_hidden_size, Rbm};
use vqmc_sampler::{BurnIn, McmcConfig, McmcSampler, RbmFastMcmc, Thinning};

fn schemes(n: usize) -> Vec<(String, McmcConfig)> {
    let base = McmcConfig::default(); // 2 chains, k = 3n+100, j = 1
    vec![
        (
            "burn-in n".into(),
            McmcConfig {
                burn_in: BurnIn::Fixed(n),
                ..base
            },
        ),
        ("burn-in 3n+100 (paper)".into(), base),
        (
            "burn-in 10n".into(),
            McmcConfig {
                burn_in: BurnIn::Fixed(10 * n),
                ..base
            },
        ),
        (
            "thinning x2".into(),
            McmcConfig {
                thinning: Thinning(2),
                ..base
            },
        ),
        (
            "thinning x5".into(),
            McmcConfig {
                thinning: Thinning(5),
                ..base
            },
        ),
        (
            "thinning x10".into(),
            McmcConfig {
                thinning: Thinning(10),
                ..base
            },
        ),
    ]
}

fn main() {
    let scale = parse_scale(&[16, 24], &[50, 100, 200, 500], 80);
    println!(
        "Table 4 reproduction: MCMC scheme ablation, RBM + ADAM on Max-Cut, \
         {} iterations, batch {}, {} seeds\n",
        scale.iterations, scale.batch_size, scale.seeds
    );
    let mut table = Table::new(&["n", "scheme", "mean cut", "time (s)", "chain sweeps/iter"]);

    for &n in &scale.dims {
        let mc = MaxCut::random(n, 500 + n as u64);
        for (label, mcmc_config) in schemes(n) {
            let mut cuts = Vec::new();
            let mut times = Vec::new();
            let mut sweeps = 0usize;
            for seed in 0..scale.seeds as u64 {
                let config = TrainerConfig {
                    iterations: scale.iterations,
                    batch_size: scale.batch_size,
                    optimizer: OptimizerChoice::paper_default(),
                    ..TrainerConfig::paper_default(seed)
                };
                let mut t = Trainer::new(
                    Rbm::new(n, rbm_hidden_size(n), seed),
                    RbmFastMcmc(McmcSampler::new(mcmc_config)),
                    config,
                );
                let trace = t.run(&mc);
                sweeps = trace.records[0].sample_stats.forward_passes;
                cuts.push(-t.evaluate(&mc, scale.batch_size).stats.mean);
                times.push(trace.total_secs);
            }
            let (cm, cs) = mean_std(&cuts);
            let (tm, _) = mean_std(&times);
            table.row(vec![
                n.to_string(),
                label,
                format!("{cm:.1} ± {cs:.1}"),
                format!("{tm:.2}"),
                sweeps.to_string(),
            ]);
        }
    }
    table.print();
    if let Some(path) = &scale.csv {
        write_csv(&table, path);
    }
    println!(
        "\nShape checks: 10n / x10 rows score best but cost the most; time \
         tracks the sweeps-per-iteration column (chain length), mirroring \
         the paper's finding that GPU time scales with chain length, not \
         model size."
    );
}
