//! **Eq. 14 / Eq. 15** — the paper's closed-form parallel-efficiency
//! analysis, regenerated numerically:
//!
//! * Eq. 14: MCMC speedup is affine in `L` with a slope that the
//!   (non-parallelisable) burn-in drives toward 0;
//! * Eq. 15: AUTO speedup is ≈ `L` whenever `n·mbs` dominates the
//!   `O(h·n)` gradient allreduce.
//!
//! ```sh
//! cargo run --release -p vqmc-bench --bin repro_efficiency
//! ```

use vqmc_bench::{parse_scale, write_csv, Table};
use vqmc_sampler::efficiency::{auto_efficiency, mcmc_speedup, mcmc_speedup_slope};

fn main() {
    let scale = parse_scale(&[64], &[64], 1);

    println!("Eq. 14: MCMC sampling speedup a + bL (n_samples per unit = 64, j = 1)\n");
    let ls = [1usize, 2, 4, 8, 16, 24];
    let mut t14 = Table::new(&["burn-in k", "slope b", "L=1", "L=2", "L=4", "L=8", "L=16", "L=24"]);
    for k in [0usize, 100, 300, 1000, 10_000] {
        let mut row = vec![
            k.to_string(),
            format!("{:.4}", mcmc_speedup_slope(k, 1, 64)),
        ];
        for &l in &ls {
            row.push(format!("{:.2}", mcmc_speedup(k, 1, 64, l)));
        }
        t14.row(row);
    }
    t14.print();
    println!(
        "\nShape check: slope b decays from ~1 toward 0 as burn-in k grows — \
         burn-in throttles MCMC's parallel speedup.\n"
    );

    println!("Eq. 15: AUTO parallel efficiency (speedup / L)\n");
    let mut t15 = Table::new(&["n", "h", "mbs", "L", "efficiency"]);
    for (n, mbs) in [(20usize, 1usize << 19), (500, 1 << 11), (10_000, 4)] {
        let h = {
            let ln = (n as f64).ln();
            (5.0 * ln * ln).round() as usize
        };
        for &l in &[2usize, 8, 24] {
            t15.row(vec![
                n.to_string(),
                h.to_string(),
                mbs.to_string(),
                l.to_string(),
                format!("{:.6}", auto_efficiency(h, n, mbs, l)),
            ]);
        }
    }
    t15.print();
    if let Some(path) = &scale.csv {
        write_csv(&t15, path);
    }
    println!(
        "\nShape check: every efficiency entry is ≳ 0.999 — the paper's \
         'approximately L' claim for AUTO across its whole experimental range."
    );
}
