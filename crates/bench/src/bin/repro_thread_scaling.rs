//! Real-thread scaling of the training hot paths on the worker pool.
//!
//! Two sweeps over `VQMC_THREADS`-style pool widths (overridden per
//! measurement with `par::with_threads`, so one run covers the curve):
//!
//! * **strong scaling** — fixed work (MADE cols-path sampling of a
//!   16 384-sample batch; the acceptance GEMM `(1024,512,512)`; a
//!   batched local-energy pass), wall time per call vs width;
//! * **weak scaling** — per-worker work held constant (4 096 sampled
//!   rows per worker), wall time should stay flat on a machine with
//!   that many cores.
//!
//! The output records `available_parallelism` alongside the curve:
//! on a single-core container the t>1 rows time-slice one core and
//! document dispatch overhead, **not** speedup — rerun on a multi-core
//! host for the real curve.  Results are bit-identical at every width
//! (the determinism contract), so the width is purely a throughput
//! knob; this binary also asserts that on the fly.
//!
//! Usage: `repro_thread_scaling [--rounds R]` (default 3); prints the
//! table to stdout — redirect into `results/thread_scaling.txt`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use vqmc_hamiltonian::{
    local_energies_into, LocalEnergyConfig, LocalEnergyScratch, TransverseFieldIsing,
};
use vqmc_nn::{made_hidden_size, Made, WaveFunction};
use vqmc_sampler::{MadeBatchSampler, PanelLayout};
use vqmc_tensor::{gemm, par, Matrix, SpinBatch, Vector};

fn main() {
    let mut rounds = 3usize;
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--rounds") {
        rounds = args[i + 1].parse().expect("--rounds takes an integer");
    }
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!("Real-thread scaling on the vqmc_tensor::par worker pool");
    println!(
        "host cores (available_parallelism): {cores}   rounds per cell: {rounds}"
    );
    if cores == 1 {
        println!(
            "NOTE: single-core host — widths > 1 time-slice one core; the\n\
             t>1 rows measure dispatch overhead, not speedup. Rerun on a\n\
             multi-core host for the scaling curve."
        );
    }
    println!();

    let widths = [1usize, 2, 4, 8];

    // --- strong scaling: fixed work per cell -------------------------
    let n = 64;
    let wf = Made::new(n, made_hidden_size(n), 1);
    let batch_rows = 16_384;
    let a = Matrix::from_fn(1024, 512, |i, j| ((i * 31 + j * 7) % 100) as f64 / 50.0 - 1.0);
    let b = Matrix::from_fn(512, 512, |i, j| ((i * 17 + j * 13) % 100) as f64 / 50.0 - 1.0);
    let h = TransverseFieldIsing::random(n, 5);
    let le_rows = 512;

    println!("strong scaling (fixed work), best-of-{rounds} wall seconds:");
    println!("  threads  sample_cols_b16384  gemm_nt_1024x512x512  local_energy_n64_b512");
    let mut ref_bits: Option<(Vec<u8>, u64, u64)> = None;
    for &t in &widths {
        let (st, bits) = par::with_threads(t, || {
            let mut sampler = MadeBatchSampler::new();
            sampler.force_layout(PanelLayout::Cols);
            let mut out = SpinBatch::default();
            let mut lp = Vector::default();
            let mut best = f64::INFINITY;
            for _ in 0..rounds {
                let mut rng = StdRng::seed_from_u64(7);
                let t0 = Instant::now();
                sampler.sample_stream(&wf, batch_rows, &mut rng, &mut out, &mut lp);
                best = best.min(t0.elapsed().as_secs_f64());
            }
            (best, (out.as_bytes().to_vec(), lp[0].to_bits()))
        });
        let gt = par::with_threads(t, || {
            let mut c = Matrix::zeros(1024, 512);
            let mut best = f64::INFINITY;
            for _ in 0..rounds {
                let t0 = Instant::now();
                gemm::gemm_nt_into(&a, &b, &mut c);
                best = best.min(t0.elapsed().as_secs_f64());
            }
            best
        });
        let (lt, le_bits) = par::with_threads(t, || {
            let mut sampler = MadeBatchSampler::new();
            let mut batch = SpinBatch::default();
            let mut lpx = Vector::default();
            let mut rng = StdRng::seed_from_u64(11);
            sampler.sample_stream(&wf, le_rows, &mut rng, &mut batch, &mut lpx);
            let mut scratch = LocalEnergyScratch::new();
            let mut out = Vector::default();
            let mut best = f64::INFINITY;
            for _ in 0..rounds {
                let t0 = Instant::now();
                local_energies_into(
                    &h,
                    &batch,
                    &lpx,
                    &mut |nb, dst: &mut Vector| dst.copy_from(&wf.log_psi(nb)),
                    LocalEnergyConfig::default(),
                    &mut scratch,
                    &mut out,
                );
                best = best.min(t0.elapsed().as_secs_f64());
            }
            (best, out[0].to_bits())
        });
        println!("  {t:>7}  {st:>18.4}  {gt:>20.4}  {lt:>21.4}");
        // Bit-identity across the sweep, asserted inline.
        match &ref_bits {
            None => ref_bits = Some((bits.0, bits.1, le_bits)),
            Some(r) => {
                assert_eq!(r.0, bits.0, "sampled bits differ at {t} threads");
                assert_eq!(r.1, bits.1, "logψ differs at {t} threads");
                assert_eq!(r.2, le_bits, "local energy differs at {t} threads");
            }
        }
    }
    println!("  (outputs bit-identical across all widths: asserted)");
    println!();

    // --- weak scaling: 4096 sampled rows per worker ------------------
    println!("weak scaling (4096 sampled rows per worker), best-of-{rounds} wall seconds:");
    println!("  threads    rows  sample_cols  normalised");
    let mut base = None;
    for &t in &widths {
        let rows = 4_096 * t;
        let wt = par::with_threads(t, || {
            let mut sampler = MadeBatchSampler::new();
            sampler.force_layout(PanelLayout::Cols);
            let mut out = SpinBatch::default();
            let mut lp = Vector::default();
            let mut best = f64::INFINITY;
            for _ in 0..rounds {
                let mut rng = StdRng::seed_from_u64(7);
                let t0 = Instant::now();
                sampler.sample_stream(&wf, rows, &mut rng, &mut out, &mut lp);
                best = best.min(t0.elapsed().as_secs_f64());
            }
            best
        });
        let b0 = *base.get_or_insert(wt);
        println!("  {t:>7}  {rows:>6}  {wt:>11.4}  {:>10.2}", wt / b0);
    }
    println!(
        "  (flat normalised column = ideal weak scaling; expect ≈ t on a\n\
         single-core host where workers time-slice)"
    );
}
