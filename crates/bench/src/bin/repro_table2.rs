//! **Table 2** — converged objective values for Max-Cut (maximise cut)
//! and TIM (minimise energy), averaged over seeds:
//!
//! * classical rows: Random, Goemans–Williamson, Burer–Monteiro;
//! * VQMC rows: {RBM&MCMC, MADE&AUTO} × {SGD, ADAM, SGD+SR}.
//!
//! Paper shape to reproduce: MADE&AUTO ≳ RBM&MCMC everywhere (the gap
//! exploding at large `n` for TIM), SR improving every architecture,
//! MADE&AUTO+SR competitive with the SDP solvers on Max-Cut.
//!
//! ```sh
//! cargo run --release -p vqmc-bench --bin repro_table2 [-- --full]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use vqmc_baselines::{brute_force, goemans_williamson, random_cut, BurerMonteiro};
use vqmc_bench::{mean_std, parse_scale, write_csv, Table};
use vqmc_core::{OptimizerChoice, Trainer, TrainerConfig};
use vqmc_hamiltonian::{MaxCut, SparseRowHamiltonian, TransverseFieldIsing};
use vqmc_nn::{made_hidden_size, rbm_hidden_size, Made, Rbm};
use vqmc_sampler::{AutoSampler, McmcSampler, RbmFastMcmc};

fn optimizers() -> [OptimizerChoice; 3] {
    [
        OptimizerChoice::Sgd { lr: 0.1 },
        OptimizerChoice::Adam { lr: 0.01 },
        OptimizerChoice::paper_sr(),
    ]
}

fn main() {
    let scale = parse_scale(&[12, 16, 20], &[20, 50, 100, 200, 500], 120);
    println!(
        "Table 2 reproduction: converged objectives, {} iterations, batch {}, {} seeds\n",
        scale.iterations, scale.batch_size, scale.seeds
    );
    let mut table = Table::new(&["problem", "model", "sampler", "optimizer", "n", "objective"]);

    // ---------------- Max-Cut ----------------
    for &n in &scale.dims {
        let mc = MaxCut::random(n, 500 + n as u64);
        let graph = mc.graph();

        // Classical baselines, averaged over seeds.
        let mut rand_vals = Vec::new();
        let mut gw_vals = Vec::new();
        let mut bm_vals = Vec::new();
        for seed in 0..scale.seeds as u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            rand_vals.push(random_cut(graph, 1, &mut rng).1 as f64);
            let gw = goemans_williamson(graph, 100, &mut rng);
            gw_vals.push(gw.cut as f64);
            let bm = BurerMonteiro::default().solve(graph, &mut rng);
            let (mut x, _) = vqmc_baselines::hyperplane_round(graph, &bm.v, 100, &mut rng);
            bm_vals.push(vqmc_baselines::local_search_1opt(graph, &mut x) as f64);
        }
        for (label, vals) in [
            ("Random", &rand_vals),
            ("Goemans-Williamson", &gw_vals),
            ("Burer-Monteiro", &bm_vals),
        ] {
            let (m, s) = mean_std(vals);
            table.row(vec![
                "Max-Cut".into(),
                "Classical".into(),
                "-".into(),
                label.into(),
                n.to_string(),
                format!("{m:.1} ± {s:.1}"),
            ]);
        }
        if n <= 22 {
            let (_, opt) = brute_force(graph);
            table.row(vec![
                "Max-Cut".into(),
                "Classical".into(),
                "-".into(),
                "Brute force (exact)".into(),
                n.to_string(),
                format!("{opt}"),
            ]);
        }

        // VQMC rows: score = mean cut of a fresh evaluation batch.
        for opt_choice in optimizers() {
            let mut rbm_scores = Vec::new();
            let mut made_scores = Vec::new();
            for seed in 0..scale.seeds as u64 {
                let config = TrainerConfig {
                    iterations: scale.iterations,
                    batch_size: scale.batch_size,
                    optimizer: opt_choice,
                    ..TrainerConfig::paper_default(seed)
                };
                let mut t = Trainer::new(
                    Rbm::new(n, rbm_hidden_size(n), seed),
                    RbmFastMcmc(McmcSampler::default()),
                    config,
                );
                t.run(&mc);
                let eval = t.evaluate(&mc, scale.batch_size);
                rbm_scores.push(-eval.stats.mean);

                let mut t = Trainer::new(
                    Made::new(n, made_hidden_size(n), seed),
                    AutoSampler::new(),
                    config,
                );
                t.run(&mc);
                let eval = t.evaluate(&mc, scale.batch_size);
                made_scores.push(-eval.stats.mean);
            }
            let (m, s) = mean_std(&rbm_scores);
            table.row(vec![
                "Max-Cut".into(),
                "RBM".into(),
                "MCMC".into(),
                opt_choice.label().into(),
                n.to_string(),
                format!("{m:.1} ± {s:.1}"),
            ]);
            let (m, s) = mean_std(&made_scores);
            table.row(vec![
                "Max-Cut".into(),
                "MADE".into(),
                "AUTO".into(),
                opt_choice.label().into(),
                n.to_string(),
                format!("{m:.1} ± {s:.1}"),
            ]);
        }
    }

    // ---------------- TIM ----------------
    for &n in &scale.dims {
        let h = TransverseFieldIsing::random(n, 900 + n as u64);
        if n <= 12 {
            let gs = vqmc_hamiltonian::ground_state(&h, 300, 1e-10);
            table.row(vec![
                "TIM".into(),
                "Exact".into(),
                "-".into(),
                "Lanczos".into(),
                n.to_string(),
                format!("{:.2}", gs.energy),
            ]);
        }
        for opt_choice in optimizers() {
            for (model, scores) in [("RBM", 0usize), ("MADE", 1)] {
                let mut vals = Vec::new();
                for seed in 0..scale.seeds as u64 {
                    let config = TrainerConfig {
                        iterations: scale.iterations,
                        batch_size: scale.batch_size,
                        optimizer: opt_choice,
                        ..TrainerConfig::paper_default(seed)
                    };
                    let energy = if scores == 0 {
                        let mut t = Trainer::new(
                            Rbm::new(n, rbm_hidden_size(n), seed),
                            RbmFastMcmc(McmcSampler::default()),
                            config,
                        );
                        t.run(&h);
                        t.evaluate(&h, scale.batch_size).stats.mean
                    } else {
                        let mut t = Trainer::new(
                            Made::new(n, made_hidden_size(n), seed),
                            AutoSampler::new(),
                            config,
                        );
                        t.run(&h);
                        t.evaluate(&h, scale.batch_size).stats.mean
                    };
                    vals.push(energy);
                }
                let (m, s) = mean_std(&vals);
                table.row(vec![
                    "TIM".into(),
                    model.into(),
                    if scores == 0 { "MCMC" } else { "AUTO" }.into(),
                    opt_choice.label().into(),
                    n.to_string(),
                    format!("{m:.2} ± {s:.2}"),
                ]);
            }
        }
        let _ = h.num_spins();
    }

    table.print();
    if let Some(path) = &scale.csv {
        write_csv(&table, path);
    }
    println!(
        "\nShape checks: (1) SR rows dominate their SGD/ADAM siblings; \
         (2) MADE&AUTO ≥ RBM&MCMC, increasingly so at larger n; \
         (3) MADE&AUTO+SR is within a few percent of Burer-Monteiro on Max-Cut."
    );
}
