//! **Table 3** — latent-size ablation: cut quality and training time
//! for MADE and RBM on Max-Cut across hidden widths
//! `h ∈ {(ln n)², 3(ln n)², 5(ln n)², n, 5n}` (the paper also probes
//! `n²`, which we include only under `--full`; at default scale it
//! explodes the parameter count without adding information).
//!
//! Paper shape to reproduce: a broad optimum between `3(ln n)²` and `n`;
//! degradation at the extremes; time roughly flat in `h` until the
//! model saturates the device.
//!
//! ```sh
//! cargo run --release -p vqmc-bench --bin repro_table3 [-- --full]
//! ```

use vqmc_bench::{mean_std, parse_scale, write_csv, Table};
use vqmc_core::{OptimizerChoice, Trainer, TrainerConfig};
use vqmc_hamiltonian::MaxCut;
use vqmc_nn::{Made, Rbm};
use vqmc_sampler::{AutoSampler, McmcSampler, RbmFastMcmc};

fn latent_sizes(n: usize, full: bool) -> Vec<(String, usize)> {
    let ln2 = (n as f64).ln().powi(2);
    let mut out = vec![
        ("(ln n)^2".to_string(), ln2.round().max(1.0) as usize),
        ("3(ln n)^2".to_string(), (3.0 * ln2).round() as usize),
        ("5(ln n)^2".to_string(), (5.0 * ln2).round() as usize),
        ("n".to_string(), n),
        ("5n".to_string(), 5 * n),
    ];
    if full {
        out.push(("n^2".to_string(), n * n));
    }
    out
}

fn main() {
    let scale = parse_scale(&[16, 24], &[50, 100, 200, 500], 80);
    println!(
        "Table 3 reproduction: latent-size ablation on Max-Cut (ADAM), \
         {} iterations, batch {}, {} seeds\n",
        scale.iterations, scale.batch_size, scale.seeds
    );
    let mut table = Table::new(&["model", "n", "h-policy", "h", "mean cut", "time (s)"]);

    for &n in &scale.dims {
        let mc = MaxCut::random(n, 500 + n as u64);
        for (policy, h) in latent_sizes(n, scale.full) {
            for model in ["MADE", "RBM"] {
                let mut cuts = Vec::new();
                let mut times = Vec::new();
                for seed in 0..scale.seeds as u64 {
                    let config = TrainerConfig {
                        iterations: scale.iterations,
                        batch_size: scale.batch_size,
                        optimizer: OptimizerChoice::paper_default(),
                        ..TrainerConfig::paper_default(seed)
                    };
                    let (score, secs) = if model == "MADE" {
                        let mut t =
                            Trainer::new(Made::new(n, h, seed), AutoSampler::new(), config);
                        let trace = t.run(&mc);
                        (-t.evaluate(&mc, scale.batch_size).stats.mean, trace.total_secs)
                    } else {
                        let mut t = Trainer::new(
                            Rbm::new(n, h, seed),
                            RbmFastMcmc(McmcSampler::default()),
                            config,
                        );
                        let trace = t.run(&mc);
                        (-t.evaluate(&mc, scale.batch_size).stats.mean, trace.total_secs)
                    };
                    cuts.push(score);
                    times.push(secs);
                }
                let (cm, cs) = mean_std(&cuts);
                let (tm, _) = mean_std(&times);
                table.row(vec![
                    model.into(),
                    n.to_string(),
                    policy.clone(),
                    h.to_string(),
                    format!("{cm:.1} ± {cs:.1}"),
                    format!("{tm:.2}"),
                ]);
            }
        }
    }
    table.print();
    if let Some(path) = &scale.csv {
        write_csv(&table, path);
    }
    println!(
        "\nShape check: best cuts sit in the middle of the h sweep \
         (3(ln n)² … n); the extremes underfit or train poorly in the \
         fixed budget."
    );
}
