//! Multi-process (socket-mesh) scaling measurements over loopback.
//!
//! Three sections:
//!
//! 1. **Collective latency** — wall time of one socket `allreduce_mean`
//!    at world sizes 1/2/4 for gradient-sized vectors, next to the
//!    synthetic cluster's *modelled* tree time for the same collective
//!    ([`vqmc_cluster::allreduce_mean_tree`]'s cost accounting with the
//!    V100-era link model).  Loopback is not NVLink: the comparison
//!    shows how far kernel TCP is from the modelled interconnect, not a
//!    validation of either.
//! 2. **Sharded training** (`train --ranks N` mode) — wall s/iter of
//!    `ShardedTrainer` over the socket mesh at a fixed global batch.
//!    Sampling is replicated (per-rank cost constant) and measurement
//!    is sharded (per-rank cost ∝ 1/L), so multi-core hosts see the
//!    measurement phase shrink.
//! 3. **Data-parallel training** — `DistributedTrainer` over the mesh
//!    (per-rank sampling, wire allreduce) wall s/iter next to the same
//!    configuration on the simulated cluster's modelled clock.
//!
//! All world sizes run as threads of this process over 127.0.0.1 —
//! real sockets, same kernel path as separate processes.
//!
//! **Single-core caveat**: on a 1-core container every rank time-slices
//! one CPU, so per-iteration wall time *grows* with world size —
//! compute is serialised while the collectives add latency.  The
//! numbers document protocol overhead; rerun on a multi-core host (or
//! across hosts) for speedup curves.
//!
//! Usage: `repro_dist_scaling [--iters N] [--rounds R] [--json PATH]`
//! (defaults 4, 20, BENCH_dist.json); table goes to stdout — redirect
//! into `results/dist_scaling.txt`.

use std::time::{Duration, Instant};

use vqmc_cluster::{allreduce_mean_tree, Cluster, DeviceSpec, Topology};
use vqmc_core::trainer::{OptimizerChoice, TrainerConfig};
use vqmc_core::{Collective, DistributedConfig, DistributedTrainer, ShardedTrainer};
use vqmc_dist::{peers_for_ports, reserve_loopback_ports, Mesh, MeshConfig};
use vqmc_hamiltonian::{LocalEnergyConfig, TransverseFieldIsing};
use vqmc_nn::{made_hidden_size, Made};
use vqmc_sampler::IncrementalAutoSampler;
use vqmc_tensor::Vector;

/// Forms a loopback mesh and runs `f` on every rank; returns rank 0's
/// result.
fn on_mesh<T, F>(world: usize, f: F) -> T
where
    T: Send + 'static,
    F: Fn(Mesh, usize) -> T + Send + Sync + 'static,
{
    let ports = reserve_loopback_ports(world).expect("reserve ports");
    let peers = peers_for_ports(&ports);
    let f = std::sync::Arc::new(f);
    let handles: Vec<_> = (0..world)
        .map(|rank| {
            let peers = peers.clone();
            let f = f.clone();
            std::thread::spawn(move || {
                let mut cfg = MeshConfig::new(rank, peers);
                cfg.connect_timeout = Duration::from_secs(30);
                cfg.collective_timeout = Duration::from_secs(120);
                let mesh = Mesh::connect(cfg).expect("mesh formation");
                f(mesh, rank)
            })
        })
        .collect();
    let mut results: Vec<T> = handles
        .into_iter()
        .map(|h| h.join().expect("rank panicked"))
        .collect();
    results.swap_remove(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("integer flag"))
            .unwrap_or(default)
    };
    let iters = flag("--iters", 4);
    let rounds = flag("--rounds", 20);
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_dist.json".to_string());
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut json: Vec<String> = Vec::new();

    println!("Socket-mesh (multi-process) scaling over loopback TCP");
    println!("host cores (available_parallelism): {cores}");
    if cores < 4 {
        println!(
            "NOTE: {cores}-core host — ranks time-slice CPUs, so wall times\n\
             grow with world size; these rows document protocol overhead,\n\
             not speedup. Rerun on a multi-core host for scaling curves."
        );
    }

    // ---- 1. collective latency ------------------------------------
    println!("\n[1] socket allreduce_mean latency ({rounds} rounds/cell)");
    println!("  world      dim     wall µs/op    modelled µs (V100 tree)");
    for &world in &[1usize, 2, 4] {
        for &dim in &[1_024usize, 65_536] {
            let modelled_s = {
                let vectors: Vec<Vector> = (0..world).map(|_| Vector::zeros(dim)).collect();
                allreduce_mean_tree(vectors, &Topology::new(1, world)).1
            };
            let wall_us = on_mesh(world, move |mut mesh, rank| {
                let v = Vector::from_fn(dim, |i| (rank + i) as f64);
                // Warm-up: page in buffers, settle TCP.
                for _ in 0..3 {
                    mesh.allreduce_mean(v.clone()).expect("allreduce");
                }
                let start = Instant::now();
                for _ in 0..rounds {
                    mesh.allreduce_mean(v.clone()).expect("allreduce");
                }
                let us = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;
                mesh.shutdown();
                us
            });
            println!(
                "  {world:>5} {dim:>8}   {wall_us:>10.1}    {:>10.3}",
                modelled_s * 1e6
            );
            json.push(format!(
                "{{\"section\": \"allreduce\", \"world\": {world}, \"dim\": {dim}, \
                 \"wall_us_per_op\": {wall_us:.1}, \"modelled_us\": {:.3}, \
                 \"rounds\": {rounds}, \"cores\": {cores}}}",
                modelled_s * 1e6
            ));
        }
    }

    // ---- 2. sharded training (the --ranks mode) -------------------
    let n = 20;
    let batch = 256;
    println!("\n[2] ShardedTrainer over sockets: TIM n={n}, global batch {batch}, {iters} iters");
    println!("  world    wall s/iter   (sampling replicated, measurement sharded 1/L)");
    for &world in &[1usize, 2, 4] {
        let cfg = TrainerConfig {
            iterations: iters,
            batch_size: batch,
            optimizer: OptimizerChoice::paper_default(),
            local_energy: LocalEnergyConfig::default(),
            seed: 3,
        };
        let h = TransverseFieldIsing::random(n, 2021);
        let s_per_iter = on_mesh(world, move |mut mesh, _rank| {
            let wf = Made::new(n, made_hidden_size(n), 4);
            let mut t = ShardedTrainer::new(wf, IncrementalAutoSampler::new(), cfg);
            let start = Instant::now();
            let trace = t.run(&h, &mut mesh).expect("train");
            let s = start.elapsed().as_secs_f64() / trace.records.len() as f64;
            mesh.shutdown();
            s
        });
        println!("  {world:>5}   {s_per_iter:>10.4}");
        json.push(format!(
            "{{\"section\": \"sharded_train\", \"world\": {world}, \"n\": {n}, \
             \"batch\": {batch}, \"iters\": {iters}, \
             \"wall_s_per_iter\": {s_per_iter:.5}, \"cores\": {cores}}}"
        ));
    }

    // ---- 3. data-parallel training: real sockets vs modelled ------
    let mbs = 64;
    println!(
        "\n[3] DistributedTrainer: TIM n={n}, mbs {mbs}/rank, {iters} iters \
         (socket wall vs simulated-cluster modelled clock)"
    );
    println!("  world    socket s/iter   modelled s/iter");
    for &world in &[1usize, 2, 4] {
        let dcfg = DistributedConfig {
            iterations: iters,
            minibatch_per_device: mbs,
            optimizer: OptimizerChoice::paper_default(),
            local_energy: LocalEnergyConfig::default(),
            seed: 9,
            cost_hidden: made_hidden_size(n),
            cost_offdiag: n,
        };
        let h = TransverseFieldIsing::random(n, 2021);

        let cluster = Cluster::new(Topology::new(1, world), DeviceSpec::v100());
        let mut sim = DistributedTrainer::new(
            cluster,
            Made::new(n, made_hidden_size(n), 4),
            IncrementalAutoSampler::new(),
            dcfg,
        );
        sim.run(&h);
        let modelled_per_iter = sim.elapsed_modelled() / iters as f64;

        let h2 = TransverseFieldIsing::random(n, 2021);
        let socket_per_iter = on_mesh(world, move |mesh, _rank| {
            let mut t = DistributedTrainer::over_mesh(
                Box::new(mesh),
                Made::new(n, made_hidden_size(n), 4),
                IncrementalAutoSampler::new(),
                dcfg,
            );
            let start = Instant::now();
            t.try_run(&h2).expect("train");
            start.elapsed().as_secs_f64() / iters as f64
        });
        println!("  {world:>5}   {socket_per_iter:>13.4}   {modelled_per_iter:>15.6}");
        json.push(format!(
            "{{\"section\": \"data_parallel\", \"world\": {world}, \"n\": {n}, \
             \"mbs\": {mbs}, \"iters\": {iters}, \
             \"socket_s_per_iter\": {socket_per_iter:.5}, \
             \"modelled_s_per_iter\": {modelled_per_iter:.6}, \"cores\": {cores}}}"
        ));
    }

    let body = format!("[\n{}\n]\n", json.join(",\n"));
    std::fs::write(&json_path, body).expect("write json");
    println!("\nwrote {json_path}");
}
