//! **Figure 4** — normalised converged energy vs device count at a
//! fixed per-device batch of 4 (effective batch `4·L`): the energy
//! improves with `L` and saturates earlier for smaller problems.
//!
//! This is the Table 6 sweep with each problem size's energies divided
//! by the largest-magnitude value in its series, printed as a compact
//! matrix plus terminal bars.
//!
//! ```sh
//! cargo run --release -p vqmc-bench --bin repro_fig4 [-- --dims 16,32,64]
//! ```

use vqmc_bench::{parse_scale, write_csv, Table};
use vqmc_cluster::{Cluster, DeviceSpec, Topology};
use vqmc_core::{DistributedConfig, DistributedTrainer, OptimizerChoice};
use vqmc_hamiltonian::TransverseFieldIsing;
use vqmc_nn::{made_hidden_size, Made};
use vqmc_sampler::IncrementalAutoSampler;

fn main() {
    let scale = parse_scale(&[16, 32, 64], &[20, 50, 100, 200, 500, 1000], 60);
    let mbs = 4usize;
    println!(
        "Figure 4 reproduction: normalised converged energy vs #GPUs, \
         mbs = {mbs}, {} iterations\n",
        scale.iterations
    );

    // Distinct device counts in ascending order (the figure's x-axis).
    let device_counts = [1usize, 2, 4, 8, 16, 24];
    let topo_for = |l: usize| match l {
        1 => Topology::new(1, 1),
        2 => Topology::new(1, 2),
        4 => Topology::new(1, 4),
        8 => Topology::new(2, 4),
        16 => Topology::new(4, 4),
        24 => Topology::new(6, 4),
        _ => unreachable!(),
    };

    let mut headers: Vec<String> = vec!["L".into(), "eff.batch".into()];
    for &n in &scale.dims {
        headers.push(format!("n={n}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut series: Vec<Vec<f64>> = Vec::new();
    for &n in &scale.dims {
        let hidden = made_hidden_size(n);
        let h = TransverseFieldIsing::random(n, 1000 + n as u64);
        let energies: Vec<f64> = device_counts
            .iter()
            .map(|&l| {
                let cluster = Cluster::new(topo_for(l), DeviceSpec::v100());
                let wf = Made::new(n, hidden, 1);
                let config = DistributedConfig {
                    iterations: scale.iterations,
                    minibatch_per_device: mbs,
                    optimizer: OptimizerChoice::paper_default(),
                    local_energy: Default::default(),
                    seed: 9,
                    cost_hidden: hidden,
                    cost_offdiag: n,
                };
                let mut t =
                    DistributedTrainer::new(cluster, wf, IncrementalAutoSampler::new(), config);
                t.run(&h).final_energy()
            })
            .collect();
        series.push(energies);
    }

    // Normalise per problem size by the largest magnitude in the series.
    for (row_idx, &l) in device_counts.iter().enumerate() {
        let mut row = vec![l.to_string(), (mbs * l).to_string()];
        for s in &series {
            let norm = s.iter().map(|e| e.abs()).fold(0.0, f64::max);
            row.push(format!("{:.3}", s[row_idx] / norm));
        }
        table.row(row);
    }
    table.print();

    println!("\nterminal view (each column: deeper bar = closer to best energy):");
    for (col, &n) in scale.dims.iter().enumerate() {
        let norm = series[col].iter().map(|e| e.abs()).fold(0.0, f64::max);
        print!("  n={n:<6}");
        for (row_idx, _) in device_counts.iter().enumerate() {
            let frac = (series[col][row_idx] / norm).abs().clamp(0.0, 1.0);
            let blocks = (frac * 8.0).round() as usize;
            print!(" {}", "█".repeat(blocks.max(1)));
        }
        println!();
    }

    if let Some(path) = &scale.csv {
        write_csv(&table, path);
    }
    println!(
        "\nShape check: within each column the normalised energy approaches \
         1.0 as L grows; small problems saturate at small L, larger problems \
         keep improving — the paper's batch-size/exploration effect."
    );
}
