//! `vqmc-loadgen` — load generator for the `vqmc-serve` inference
//! server. Measures sustained throughput and latency percentiles under
//! two standard load models:
//!
//! * **closed loop** (default): `--connections` clients each issue
//!   `--requests` back-to-back requests (a new request the moment the
//!   previous reply lands). Offered load self-regulates to the server's
//!   capacity — this is the mode the dynamic-batching speedup criterion
//!   is judged in.
//! * **open loop**: requests are fired on a fixed schedule
//!   (`--rate` req/s split across the connections) regardless of
//!   completions, so queueing delay shows up in the tail latencies
//!   instead of throttling the client.
//! * **swarm**: open-loop arrivals over *thousands* of connections
//!   (1k–10k) driven by a single nonblocking event-loop thread
//!   (`vqmc-net` poller + frame decoder), so client-side thread
//!   scheduling never caps the offered connection count.  Latency is
//!   measured from each request's *scheduled* arrival time, so
//!   queueing delay is charged to the server, never hidden by client
//!   send backpressure (no coordinated omission).
//!
//! Results append to a JSON array (default `BENCH_serving.json`):
//!
//! ```sh
//! vqmc-cli serve --checkpoint model.ckpt --max-batch 64 &   # prints the address
//! vqmc-loadgen --addr 127.0.0.1:PORT --connections 32 --requests 200 \
//!              --count 16 --label batch64
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vqmc_serve::{Client, Request};
use vqmc_tensor::{Precision, SpinBatch};

const USAGE: &str = "\
vqmc-loadgen — load generator for vqmc-serve

USAGE:
  vqmc-loadgen --addr <host:port> [--flag value]...

FLAGS:
  --addr <host:port>   server address (required)
  --mode closed|open|swarm  load model (default closed)
  --connections <N>    concurrent client connections (default 8)
  --requests <N>       requests per connection (default 100)
  --rate <R>           open/swarm: total offered req/s (default 500)
  --op sample|logpsi|localenergy  request type (default sample)
  --precision f64|f32  execution precision tag on every request
                       (default: omit the tag — server default applies)
  --count <N>          rows per request (default 16)
  --seed <N>           base seed for request payloads (default 0)
  --warmup <N>         unrecorded warm-up requests per connection (default 5)
  --reload <path>      send a checkpoint hot-reload (server-side path)
                       from a side connection at the midpoint of the
                       measured run; the run fails if the reload errs
  --label <s>          run label recorded in the JSON output
  --out <path>         output JSON array (default BENCH_serving.json; 'none' to skip)
  --stats true         fetch and print the server's live stats snapshot
                       (standalone with --requests 0, or after the run)
  --shutdown true      send Shutdown to the server when done
                       (with --requests 0: send it without any load)";

#[derive(Clone)]
struct Opts {
    addr: String,
    mode: String,
    connections: usize,
    requests: usize,
    rate: f64,
    op: String,
    precision: Option<Precision>,
    count: u32,
    seed: u64,
    warmup: usize,
    reload: Option<String>,
    label: String,
    out: String,
    shutdown: bool,
    stats: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flags = std::collections::BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            return Err(format!("expected a --flag, found {:?}", args[i]));
        };
        if name == "help" || name == "h" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        let Some(value) = args.get(i + 1) else {
            return Err(format!("flag --{name} is missing its value"));
        };
        flags.insert(name.to_string(), value.clone());
        i += 2;
    }
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let opts = Opts {
        addr: flags.get("addr").cloned().ok_or("--addr is required")?,
        mode: get("mode", "closed"),
        connections: get("connections", "8").parse().map_err(|_| "--connections")?,
        requests: get("requests", "100").parse().map_err(|_| "--requests")?,
        rate: get("rate", "500").parse().map_err(|_| "--rate")?,
        op: get("op", "sample"),
        precision: match flags.get("precision") {
            None => None,
            Some(s) => Some(
                Precision::parse(s).ok_or(format!("--precision {s:?} (f64|f32)"))?,
            ),
        },
        count: get("count", "16").parse().map_err(|_| "--count")?,
        seed: get("seed", "0").parse().map_err(|_| "--seed")?,
        warmup: get("warmup", "5").parse().map_err(|_| "--warmup")?,
        reload: flags.get("reload").cloned(),
        label: get("label", ""),
        out: get("out", "BENCH_serving.json"),
        shutdown: get("shutdown", "false") == "true",
        stats: get("stats", "false") == "true",
    };
    if !matches!(opts.mode.as_str(), "closed" | "open" | "swarm") {
        return Err(format!("--mode {:?} (closed|open|swarm)", opts.mode));
    }
    if !matches!(opts.op.as_str(), "sample" | "logpsi" | "localenergy") {
        return Err(format!("--op {:?} (sample|logpsi|localenergy)", opts.op));
    }
    if opts.connections == 0 || opts.count == 0 {
        return Err("--connections/--count must be positive".into());
    }
    if opts.requests == 0 && !opts.shutdown && !opts.stats {
        return Err("--requests 0 only makes sense with --shutdown/--stats true".into());
    }
    Ok(opts)
}

/// Builds the r-th request for connection c (deterministic payloads so
/// runs are comparable).
fn build_request(opts: &Opts, num_spins: usize, c: usize, r: usize) -> Request {
    let seed = opts
        .seed
        .wrapping_add((c as u64) << 32)
        .wrapping_add(r as u64);
    match opts.op.as_str() {
        "sample" => Request::Sample {
            count: opts.count,
            seed: Some(seed),
            precision: opts.precision,
        },
        op => {
            let batch = SpinBatch::from_fn(opts.count as usize, num_spins, |s, i| {
                (seed as usize + s * 31 + i * 7).wrapping_mul(2654435761) as u8 & 1
            });
            if op == "logpsi" {
                Request::LogPsi {
                    batch,
                    precision: opts.precision,
                }
            } else {
                Request::LocalEnergy {
                    batch,
                    precision: opts.precision,
                }
            }
        }
    }
}

struct RunStats {
    latencies_us: Vec<u64>,
    ok: u64,
    errors: u64,
    wall: Duration,
}

/// Swarm mode: one event-loop thread drives every connection
/// nonblocking — open-loop arrivals at `--rate` req/s dealt
/// round-robin across `--connections` sockets, replies matched FIFO
/// per connection (the server guarantees in-order replies), latency
/// measured from the scheduled arrival instant.
fn run_swarm(opts: &Opts, num_spins: usize) -> RunStats {
    use std::collections::VecDeque;
    use vqmc_net::{Connection, Event, Poller};

    struct SwarmConn {
        conn: Connection,
        /// Scheduled arrival instants of in-flight requests, FIFO.
        inflight: VecDeque<Instant>,
        open: bool,
    }

    let n_conns = opts.connections;
    let total = n_conns * opts.requests;
    let period = Duration::from_secs_f64(1.0 / opts.rate);
    let poller = Poller::new().expect("create poller");

    // Ramp the swarm up with bounded retries: thousands of sequential
    // connects can outrun the server's accept backlog, which shows up
    // as transient refusals, not fatal errors.
    let mut conns: Vec<SwarmConn> = Vec::with_capacity(n_conns);
    for key in 0..n_conns {
        let stream = {
            let mut attempt = 0;
            loop {
                match std::net::TcpStream::connect(&opts.addr[..]) {
                    Ok(s) => break s,
                    Err(e) if attempt < 50 => {
                        attempt += 1;
                        let _ = e;
                        std::thread::sleep(Duration::from_millis(2 * attempt));
                    }
                    Err(e) => panic!("connect {key}/{n_conns}: {e}"),
                }
            }
        };
        let conn =
            Connection::new(stream, vqmc_serve::protocol::MAX_FRAME_LEN).expect("nonblocking");
        poller
            .add(conn.raw_fd(), key, true, false)
            .expect("register connection");
        conns.push(SwarmConn {
            conn,
            inflight: VecDeque::new(),
            open: true,
        });
    }
    println!("  swarm: {n_conns} connections open");

    let started = Instant::now();
    // Generous overall guard: the scheduled span plus a drain margin.
    let guard = started
        + Duration::from_secs_f64(total as f64 / opts.rate)
        + Duration::from_secs(120);
    let mut latencies_us: Vec<u64> = Vec::with_capacity(total);
    let mut errors = 0u64;
    let mut sent = 0usize;
    let mut answered = 0usize;
    let mut lost = 0usize;
    let mut events: Vec<Event> = Vec::new();
    let mut dirty: Vec<usize> = Vec::new();

    while answered + lost < total {
        if Instant::now() > guard {
            eprintln!("  swarm: guard timeout with {} unanswered", total - answered - lost);
            errors += (total - answered - lost) as u64;
            break;
        }

        // Fire every arrival that is due; deal round-robin.
        let now = started.elapsed();
        while sent < total && period.mul_f64(sent as f64) <= now {
            let key = sent % n_conns;
            let due = started + period.mul_f64(sent as f64);
            let sc = &mut conns[key];
            if sc.open {
                let request = build_request(opts, num_spins, key, sent / n_conns);
                sc.conn
                    .queue_payload(&vqmc_serve::protocol::encode_request(&request));
                sc.inflight.push_back(due);
                dirty.push(key);
            } else {
                // The connection died earlier: this arrival can never
                // be answered — it is a failed request, not a no-op.
                lost += 1;
                errors += 1;
            }
            sent += 1;
        }

        // Wait for socket readiness, but never past the next arrival.
        let timeout = if sent < total {
            let next_due = period.mul_f64(sent as f64);
            next_due
                .checked_sub(started.elapsed())
                .unwrap_or(Duration::ZERO)
                .min(Duration::from_millis(50))
        } else {
            Duration::from_millis(50)
        };
        poller.wait(&mut events, Some(timeout)).expect("poller wait");
        for ev in events.drain(..) {
            dirty.push(ev.key);
        }

        // Service marked connections: read replies, flush queued
        // requests, resync poller interest.
        dirty.sort_unstable();
        dirty.dedup();
        for key in dirty.drain(..) {
            let sc = &mut conns[key];
            if !sc.open {
                continue;
            }
            let inflight = &mut sc.inflight;
            let mut failed = false;
            let read = sc.conn.read_frames(&mut |payload: Vec<u8>| {
                let due = inflight.pop_front().expect("reply without a request");
                answered += 1;
                // An Error frame (0xEF) is a protocol-level failure.
                if payload.first() == Some(&0xEF) {
                    errors += 1;
                } else {
                    latencies_us.push(due.elapsed().as_micros() as u64);
                }
            });
            match read {
                Ok(vqmc_net::ReadStatus::Open) => {}
                Ok(vqmc_net::ReadStatus::Eof) => failed = true,
                Err(_) => failed = true,
            }
            if !failed && sc.conn.flush().is_err() {
                failed = true;
            }
            if failed {
                // Connection died: unanswered in-flight requests are
                // lost, and the slot stops accepting arrivals.
                let _ = poller.delete(sc.conn.raw_fd());
                sc.open = false;
                let dropped = sc.inflight.len();
                lost += dropped;
                errors += dropped as u64;
                sc.inflight.clear();
                continue;
            }
            let _ = poller.modify(sc.conn.raw_fd(), key, true, sc.conn.wants_write());
        }
    }

    let wall = started.elapsed();
    latencies_us.sort_unstable();
    RunStats {
        ok: latencies_us.len() as u64,
        errors,
        latencies_us,
        wall,
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64 / 1000.0
}

fn run(opts: &Opts, num_spins: usize) -> RunStats {
    let errors = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    // Open loop: each connection fires on its own fixed schedule at
    // rate/connections, offset so the aggregate arrivals interleave.
    let per_conn_period = Duration::from_secs_f64(opts.connections as f64 / opts.rate);
    let handles: Vec<_> = (0..opts.connections)
        .map(|c| {
            let opts = opts.clone();
            let errors = Arc::clone(&errors);
            std::thread::spawn(move || {
                let mut client = Client::connect(&opts.addr[..]).expect("connect");
                client.set_timeout(Some(Duration::from_secs(60))).unwrap();
                for w in 0..opts.warmup {
                    let _ = client.call(&build_request(&opts, num_spins, c, usize::MAX - w));
                }
                let mut lats = Vec::with_capacity(opts.requests);
                let open = opts.mode == "open";
                let t0 = Instant::now();
                let offset = per_conn_period.mul_f64(c as f64 / opts.connections as f64);
                for r in 0..opts.requests {
                    if open {
                        let due = offset + per_conn_period.mul_f64(r as f64);
                        if let Some(wait) = due.checked_sub(t0.elapsed()) {
                            std::thread::sleep(wait);
                        }
                    }
                    let req = build_request(&opts, num_spins, c, r);
                    let t = Instant::now();
                    match client.call(&req) {
                        Ok(_) => lats.push(t.elapsed().as_micros() as u64),
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                lats
            })
        })
        .collect();
    let mut latencies_us = Vec::new();
    for handle in handles {
        latencies_us.extend(handle.join().expect("loadgen thread"));
    }
    let wall = started.elapsed();
    latencies_us.sort_unstable();
    RunStats {
        ok: latencies_us.len() as u64,
        errors: errors.load(Ordering::Relaxed),
        latencies_us,
        wall,
    }
}

/// Appends one record to a JSON array file (creates it if missing).
fn append_record(path: &str, record: &str) -> std::io::Result<()> {
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let head = trimmed
                .strip_suffix(']')
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("{path} is not a JSON array"),
                    )
                })?
                .trim_end();
            if head == "[" {
                format!("[\n{record}\n]\n")
            } else {
                format!("{head},\n{record}\n]\n")
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => format!("[\n{record}\n]\n"),
        Err(e) => return Err(e),
    };
    std::fs::write(path, body)
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(1);
        }
    };

    // One probe connection: model shape for payload construction.
    let mut probe = Client::connect(&opts.addr[..]).expect("connect to server");
    let (num_spins, kind) = probe.ping().expect("ping server");
    println!(
        "server at {} serves a {kind} model with {num_spins} spins",
        opts.addr
    );

    // Probe-only invocations (--requests 0): skip the load phase.
    if opts.requests == 0 {
        if opts.stats {
            print_stats(&mut probe);
        }
        if opts.shutdown {
            probe.shutdown().expect("shutdown server");
            println!("  sent Shutdown");
        }
        return;
    }

    // Optional mid-run hot-reload: a side connection fires a Reload
    // frame halfway through the scheduled load, proving the swap is
    // invisible to in-flight traffic (the run's error count stays 0).
    let reloader = opts.reload.clone().map(|path| {
        let addr = opts.addr.clone();
        let midpoint = if opts.mode == "closed" {
            Duration::from_millis(500)
        } else {
            Duration::from_secs_f64(
                (opts.connections * opts.requests) as f64 / opts.rate / 2.0,
            )
        };
        std::thread::spawn(move || {
            std::thread::sleep(midpoint);
            let mut side = Client::connect(&addr[..]).expect("reload connection");
            side.reload(&path).expect("mid-run reload");
            println!("  mid-run reload of {path} acked");
        })
    });

    let stats = if opts.mode == "swarm" {
        run_swarm(&opts, num_spins)
    } else {
        run(&opts, num_spins)
    };
    if let Some(h) = reloader {
        h.join().expect("reload thread");
    }
    let throughput = stats.ok as f64 / stats.wall.as_secs_f64();
    let row_throughput = throughput * opts.count as f64;
    let (p50, p95, p99) = (
        percentile(&stats.latencies_us, 50.0),
        percentile(&stats.latencies_us, 95.0),
        percentile(&stats.latencies_us, 99.0),
    );
    let mean_ms = if stats.latencies_us.is_empty() {
        f64::NAN
    } else {
        stats.latencies_us.iter().sum::<u64>() as f64 / stats.latencies_us.len() as f64 / 1000.0
    };
    println!(
        "{} loop, op {}: {} ok, {} errors in {:.3}s",
        opts.mode, opts.op, stats.ok, stats.errors, stats.wall.as_secs_f64()
    );
    println!("  throughput : {throughput:>10.1} req/s  ({row_throughput:.0} rows/s)");
    println!("  latency ms : p50 {p50:.3}  p95 {p95:.3}  p99 {p99:.3}  mean {mean_ms:.3}");

    if opts.out != "none" {
        let record = format!(
            "{{\"label\": \"{}\", \"mode\": \"{}\", \"op\": \"{}\", \
             \"precision\": \"{}\", \
             \"connections\": {}, \"requests_per_conn\": {}, \"count\": {}, \
             \"offered_rps\": {:.1}, \
             \"num_spins\": {}, \"ok\": {}, \"errors\": {}, \"wall_s\": {:.4}, \
             \"throughput_rps\": {:.2}, \"rows_per_s\": {:.1}, \
             \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"mean_ms\": {:.4}}}",
            opts.label,
            opts.mode,
            opts.op,
            opts.precision.map_or("default", |p| p.as_str()),
            opts.connections,
            opts.requests,
            opts.count,
            // Closed loop has no fixed offered rate; record 0.
            if opts.mode == "closed" { 0.0 } else { opts.rate },
            num_spins,
            stats.ok,
            stats.errors,
            stats.wall.as_secs_f64(),
            throughput,
            row_throughput,
            p50,
            p95,
            p99,
            mean_ms,
        );
        append_record(&opts.out, &record).expect("write output JSON");
        println!("  recorded to {}", opts.out);
    }

    if opts.stats {
        print_stats(&mut probe);
    }

    if opts.shutdown {
        probe.shutdown().expect("shutdown server");
        println!("  sent Shutdown");
    }
}

/// Fetches and pretty-prints the server's live stats snapshot.
fn print_stats(probe: &mut Client) {
    let s = probe.stats().expect("fetch server stats");
    println!(
        "server stats: accepted {} · shed {} · refused {} · reloads {} · \
         queue {} · tier {} · connections {}",
        s.accepted, s.shed, s.refused, s.reloads, s.queue_depth, s.tier, s.connections
    );
    const OPS: [&str; 3] = ["sample", "logpsi", "localenergy"];
    const PRECS: [&str; 2] = ["f64", "f32"];
    for (oi, op) in OPS.iter().enumerate() {
        for (pi, prec) in PRECS.iter().enumerate() {
            let l = &s.latency[oi][pi];
            if l.count == 0 {
                continue;
            }
            println!(
                "  {op}/{prec}: n {} · mean {:.3} ms · p50 {:.3} · p95 {:.3} · p99 {:.3}",
                l.count,
                l.sum_us as f64 / l.count as f64 / 1000.0,
                l.p50_us as f64 / 1000.0,
                l.p95_us as f64 / 1000.0,
                l.p99_us as f64 / 1000.0,
            );
        }
    }
    let total: u64 = s.occupancy.iter().sum();
    if total > 0 {
        let cells: Vec<String> = s
            .occupancy
            .iter()
            .enumerate()
            .map(|(i, &c)| format!("{}:{c}", 1u32 << i))
            .collect();
        println!("  batch occupancy (size:count): {}", cells.join(" "));
    }
}
