//! `vqmc-loadgen` — load generator for the `vqmc-serve` inference
//! server. Measures sustained throughput and latency percentiles under
//! two standard load models:
//!
//! * **closed loop** (default): `--connections` clients each issue
//!   `--requests` back-to-back requests (a new request the moment the
//!   previous reply lands). Offered load self-regulates to the server's
//!   capacity — this is the mode the dynamic-batching speedup criterion
//!   is judged in.
//! * **open loop**: requests are fired on a fixed schedule
//!   (`--rate` req/s split across the connections) regardless of
//!   completions, so queueing delay shows up in the tail latencies
//!   instead of throttling the client.
//!
//! Results append to a JSON array (default `BENCH_serving.json`):
//!
//! ```sh
//! vqmc-cli serve --checkpoint model.ckpt --max-batch 64 &   # prints the address
//! vqmc-loadgen --addr 127.0.0.1:PORT --connections 32 --requests 200 \
//!              --count 16 --label batch64
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vqmc_serve::{Client, Request};
use vqmc_tensor::{Precision, SpinBatch};

const USAGE: &str = "\
vqmc-loadgen — load generator for vqmc-serve

USAGE:
  vqmc-loadgen --addr <host:port> [--flag value]...

FLAGS:
  --addr <host:port>   server address (required)
  --mode closed|open   load model (default closed)
  --connections <N>    concurrent client connections (default 8)
  --requests <N>       requests per connection (default 100)
  --rate <R>           open loop only: total offered req/s (default 500)
  --op sample|logpsi|localenergy  request type (default sample)
  --precision f64|f32  execution precision tag on every request
                       (default: omit the tag — server default applies)
  --count <N>          rows per request (default 16)
  --seed <N>           base seed for request payloads (default 0)
  --warmup <N>         unrecorded warm-up requests per connection (default 5)
  --label <s>          run label recorded in the JSON output
  --out <path>         output JSON array (default BENCH_serving.json; 'none' to skip)
  --shutdown true      send Shutdown to the server when done
                       (with --requests 0: send it without any load)";

#[derive(Clone)]
struct Opts {
    addr: String,
    mode: String,
    connections: usize,
    requests: usize,
    rate: f64,
    op: String,
    precision: Option<Precision>,
    count: u32,
    seed: u64,
    warmup: usize,
    label: String,
    out: String,
    shutdown: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flags = std::collections::BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            return Err(format!("expected a --flag, found {:?}", args[i]));
        };
        if name == "help" || name == "h" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        let Some(value) = args.get(i + 1) else {
            return Err(format!("flag --{name} is missing its value"));
        };
        flags.insert(name.to_string(), value.clone());
        i += 2;
    }
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let opts = Opts {
        addr: flags.get("addr").cloned().ok_or("--addr is required")?,
        mode: get("mode", "closed"),
        connections: get("connections", "8").parse().map_err(|_| "--connections")?,
        requests: get("requests", "100").parse().map_err(|_| "--requests")?,
        rate: get("rate", "500").parse().map_err(|_| "--rate")?,
        op: get("op", "sample"),
        precision: match flags.get("precision") {
            None => None,
            Some(s) => Some(
                Precision::parse(s).ok_or(format!("--precision {s:?} (f64|f32)"))?,
            ),
        },
        count: get("count", "16").parse().map_err(|_| "--count")?,
        seed: get("seed", "0").parse().map_err(|_| "--seed")?,
        warmup: get("warmup", "5").parse().map_err(|_| "--warmup")?,
        label: get("label", ""),
        out: get("out", "BENCH_serving.json"),
        shutdown: get("shutdown", "false") == "true",
    };
    if !matches!(opts.mode.as_str(), "closed" | "open") {
        return Err(format!("--mode {:?} (closed|open)", opts.mode));
    }
    if !matches!(opts.op.as_str(), "sample" | "logpsi" | "localenergy") {
        return Err(format!("--op {:?} (sample|logpsi|localenergy)", opts.op));
    }
    if opts.connections == 0 || opts.count == 0 {
        return Err("--connections/--count must be positive".into());
    }
    if opts.requests == 0 && !opts.shutdown {
        return Err("--requests 0 only makes sense with --shutdown true".into());
    }
    Ok(opts)
}

/// Builds the r-th request for connection c (deterministic payloads so
/// runs are comparable).
fn build_request(opts: &Opts, num_spins: usize, c: usize, r: usize) -> Request {
    let seed = opts
        .seed
        .wrapping_add((c as u64) << 32)
        .wrapping_add(r as u64);
    match opts.op.as_str() {
        "sample" => Request::Sample {
            count: opts.count,
            seed: Some(seed),
            precision: opts.precision,
        },
        op => {
            let batch = SpinBatch::from_fn(opts.count as usize, num_spins, |s, i| {
                (seed as usize + s * 31 + i * 7).wrapping_mul(2654435761) as u8 & 1
            });
            if op == "logpsi" {
                Request::LogPsi {
                    batch,
                    precision: opts.precision,
                }
            } else {
                Request::LocalEnergy {
                    batch,
                    precision: opts.precision,
                }
            }
        }
    }
}

struct RunStats {
    latencies_us: Vec<u64>,
    ok: u64,
    errors: u64,
    wall: Duration,
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64 / 1000.0
}

fn run(opts: &Opts, num_spins: usize) -> RunStats {
    let errors = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    // Open loop: each connection fires on its own fixed schedule at
    // rate/connections, offset so the aggregate arrivals interleave.
    let per_conn_period = Duration::from_secs_f64(opts.connections as f64 / opts.rate);
    let handles: Vec<_> = (0..opts.connections)
        .map(|c| {
            let opts = opts.clone();
            let errors = Arc::clone(&errors);
            std::thread::spawn(move || {
                let mut client = Client::connect(&opts.addr[..]).expect("connect");
                client.set_timeout(Some(Duration::from_secs(60))).unwrap();
                for w in 0..opts.warmup {
                    let _ = client.call(&build_request(&opts, num_spins, c, usize::MAX - w));
                }
                let mut lats = Vec::with_capacity(opts.requests);
                let open = opts.mode == "open";
                let t0 = Instant::now();
                let offset = per_conn_period.mul_f64(c as f64 / opts.connections as f64);
                for r in 0..opts.requests {
                    if open {
                        let due = offset + per_conn_period.mul_f64(r as f64);
                        if let Some(wait) = due.checked_sub(t0.elapsed()) {
                            std::thread::sleep(wait);
                        }
                    }
                    let req = build_request(&opts, num_spins, c, r);
                    let t = Instant::now();
                    match client.call(&req) {
                        Ok(_) => lats.push(t.elapsed().as_micros() as u64),
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                lats
            })
        })
        .collect();
    let mut latencies_us = Vec::new();
    for handle in handles {
        latencies_us.extend(handle.join().expect("loadgen thread"));
    }
    let wall = started.elapsed();
    latencies_us.sort_unstable();
    RunStats {
        ok: latencies_us.len() as u64,
        errors: errors.load(Ordering::Relaxed),
        latencies_us,
        wall,
    }
}

/// Appends one record to a JSON array file (creates it if missing).
fn append_record(path: &str, record: &str) -> std::io::Result<()> {
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let head = trimmed
                .strip_suffix(']')
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("{path} is not a JSON array"),
                    )
                })?
                .trim_end();
            if head == "[" {
                format!("[\n{record}\n]\n")
            } else {
                format!("{head},\n{record}\n]\n")
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => format!("[\n{record}\n]\n"),
        Err(e) => return Err(e),
    };
    std::fs::write(path, body)
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(1);
        }
    };

    // One probe connection: model shape for payload construction.
    let mut probe = Client::connect(&opts.addr[..]).expect("connect to server");
    let (num_spins, kind) = probe.ping().expect("ping server");
    println!(
        "server at {} serves a {kind} model with {num_spins} spins",
        opts.addr
    );

    // Shutdown-only invocation: skip the load phase entirely.
    if opts.requests == 0 {
        probe.shutdown().expect("shutdown server");
        println!("  sent Shutdown");
        return;
    }

    let stats = run(&opts, num_spins);
    let throughput = stats.ok as f64 / stats.wall.as_secs_f64();
    let row_throughput = throughput * opts.count as f64;
    let (p50, p95, p99) = (
        percentile(&stats.latencies_us, 50.0),
        percentile(&stats.latencies_us, 95.0),
        percentile(&stats.latencies_us, 99.0),
    );
    let mean_ms = if stats.latencies_us.is_empty() {
        f64::NAN
    } else {
        stats.latencies_us.iter().sum::<u64>() as f64 / stats.latencies_us.len() as f64 / 1000.0
    };
    println!(
        "{} loop, op {}: {} ok, {} errors in {:.3}s",
        opts.mode, opts.op, stats.ok, stats.errors, stats.wall.as_secs_f64()
    );
    println!("  throughput : {throughput:>10.1} req/s  ({row_throughput:.0} rows/s)");
    println!("  latency ms : p50 {p50:.3}  p95 {p95:.3}  p99 {p99:.3}  mean {mean_ms:.3}");

    if opts.out != "none" {
        let record = format!(
            "{{\"label\": \"{}\", \"mode\": \"{}\", \"op\": \"{}\", \
             \"precision\": \"{}\", \
             \"connections\": {}, \"requests_per_conn\": {}, \"count\": {}, \
             \"num_spins\": {}, \"ok\": {}, \"errors\": {}, \"wall_s\": {:.4}, \
             \"throughput_rps\": {:.2}, \"rows_per_s\": {:.1}, \
             \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"mean_ms\": {:.4}}}",
            opts.label,
            opts.mode,
            opts.op,
            opts.precision.map_or("default", |p| p.as_str()),
            opts.connections,
            opts.requests,
            opts.count,
            num_spins,
            stats.ok,
            stats.errors,
            stats.wall.as_secs_f64(),
            throughput,
            row_throughput,
            p50,
            p95,
            p99,
            mean_ms,
        );
        append_record(&opts.out, &record).expect("write output JSON");
        println!("  recorded to {}", opts.out);
    }

    if opts.shutdown {
        probe.shutdown().expect("shutdown server");
        println!("  sent Shutdown");
    }
}
