//! **§2.2 claims, quantified** — not a paper table, but the measurement
//! that grounds the paper's central argument: MCMC samples are
//! correlated with undetermined convergence, exact autoregressive
//! samples are i.i.d.  For each engine we report integrated
//! autocorrelation time τ, effective sample size, Gelman–Rubin R̂
//! across independent chains, and the forward-pass budget spent.
//!
//! ```sh
//! cargo run --release -p vqmc-bench --bin repro_diagnostics [-- --dims 16,32]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use vqmc_bench::{parse_scale, write_csv, Table};
use vqmc_nn::{made_hidden_size, rbm_hidden_size, Made, Rbm};
use vqmc_sampler::diagnostics::{
    effective_sample_size, gelman_rubin, integrated_autocorrelation_time,
};
use vqmc_sampler::{
    AutoSampler, BurnIn, GibbsSampler, McmcConfig, McmcSampler, Sampler, TemperingSampler,
    Thinning,
};

fn main() {
    let scale = parse_scale(&[16, 32], &[20, 50, 100, 200], 1);
    let draws = 3000usize;
    println!(
        "Sampler diagnostics (batch {draws}): the paper's §2.2 argument, measured\n"
    );
    let mut table = Table::new(&["n", "engine", "tau_int", "ESS", "R-hat(4)", "passes"]);

    for &n in &scale.dims {
        let made = Made::new(n, made_hidden_size(n), 1);
        let rbm = Rbm::new(n, rbm_hidden_size(n), 1);

        // Independent-chain series for R̂ (4 runs with distinct seeds);
        // returns the chains plus the pass count of the last run.
        fn series_of(
            f: &dyn Fn(&mut StdRng) -> (Vec<f64>, usize),
        ) -> (Vec<Vec<f64>>, usize) {
            let mut passes = 0;
            let chains = (0..4u64)
                .map(|s| {
                    let (series, p) = f(&mut StdRng::seed_from_u64(100 + s));
                    passes = p;
                    series
                })
                .collect();
            (chains, passes)
        }

        let mut row = |engine: &str, chains: Vec<Vec<f64>>, passes: usize| {
            let tau = integrated_autocorrelation_time(&chains[0]);
            let ess = effective_sample_size(&chains[0]);
            let rhat = gelman_rubin(&chains);
            table.row(vec![
                n.to_string(),
                engine.into(),
                format!("{tau:.2}"),
                format!("{ess:.0}"),
                format!("{rhat:.3}"),
                passes.to_string(),
            ]);
        };

        let (auto, passes) = series_of(&|rng| {
            let out = AutoSampler::new().sample(&made, draws, rng);
            (out.log_psi.into_vec(), out.stats.forward_passes)
        });
        row("MADE+AUTO (exact)", auto, passes);

        let mcmc_cfg = McmcConfig {
            chains: 1,
            burn_in: BurnIn::paper_default(),
            thinning: Thinning(1),
        };
        let (mcmc, passes) = series_of(&|rng| {
            let out = McmcSampler::new(mcmc_cfg).sample_rbm(&rbm, draws, rng);
            (out.log_psi.into_vec(), out.stats.forward_passes)
        });
        row("RBM+Metropolis", mcmc, passes);

        let (gibbs, passes) = series_of(&|rng| {
            let out = GibbsSampler::default().sample(&rbm, draws, rng);
            (out.log_psi.into_vec(), out.stats.forward_passes)
        });
        row("RBM+Gibbs", gibbs, passes);

        let (tempered, passes) = series_of(&|rng| {
            let out = TemperingSampler::default().sample(&rbm, draws, rng);
            (out.log_psi.into_vec(), out.stats.forward_passes)
        });
        row("RBM+Tempering", tempered, passes);
    }
    table.print();
    if let Some(path) = &scale.csv {
        write_csv(&table, path);
    }
    println!(
        "\nReading: AUTO's τ ≈ 1 / ESS ≈ batch at n passes; every Markov \
         kernel trades passes for correlation (τ > 1) and none removes the \
         sequential burn-in — kernel engineering narrows but cannot close \
         the gap to exact sampling."
    );
}
