//! **Figure 3 / Table 7** — weak-scaling of the sampling step: the
//! per-round sampling time for TIM problems as the device count grows,
//! with the per-device minibatch pinned at the memory-saturating value
//! (the V100 memory model reproduces the paper's samples-per-GPU row:
//! 2¹⁹ at n = 20 down to 2² at n = 10⁴).
//!
//! Reported per configuration: the **modelled** V100 seconds per round
//! (the quantity comparable to the paper's Table 7 — see the
//! `vqmc-cluster` docs for why wall-clock on a 1-core host cannot carry
//! this claim) normalised by the largest configuration, plus the real
//! wall-clock of the simulation for transparency.
//!
//! Paper shape to reproduce: every normalised entry ≈ 1.0.
//!
//! ```sh
//! cargo run --release -p vqmc-bench --bin repro_fig3 [-- --full]
//! ```

use std::time::Instant;

use vqmc_bench::{parse_scale, write_csv, Table};
use vqmc_cluster::{Cluster, DeviceSpec, Topology};
use vqmc_core::{DistributedConfig, DistributedTrainer, OptimizerChoice};
use vqmc_nn::{made_hidden_size, Made};
use vqmc_sampler::IncrementalAutoSampler;

fn main() {
    let scale = parse_scale(&[100, 200, 500], &[1000, 2000, 5000, 10_000], 3);
    println!(
        "Figure 3 / Table 7 reproduction: weak-scaling sampling times \
         ({} rounds per cell)\n",
        scale.iterations.max(1)
    );
    let rounds = scale.iterations.max(1);
    let spec = DeviceSpec::v100();

    let mut table = Table::new(&[
        "n",
        "mbs/GPU",
        "config",
        "L",
        "modelled s/round",
        "normalised",
        "wall s/round",
    ]);

    for &n in &scale.dims {
        let hidden = made_hidden_size(n);
        // The paper's memory-saturating minibatch for this dimension,
        // scaled down by default so a laptop run finishes (the modelled
        // time is linear in mbs, so normalised entries are unaffected).
        let paper_mbs = spec.paper_minibatch(n, hidden);
        let mbs = if scale.full {
            paper_mbs
        } else {
            paper_mbs.clamp(1, 64)
        };

        let mut rows = Vec::new();
        for topo in Topology::paper_configurations() {
            let label = topo.label();
            let l = topo.num_devices();
            let cluster = Cluster::new(topo, spec);
            let wf = Made::new(n, hidden, 1);
            let config = DistributedConfig {
                iterations: 0,
                minibatch_per_device: mbs,
                optimizer: OptimizerChoice::paper_default(),
                local_energy: Default::default(),
                seed: 7,
                cost_hidden: hidden,
                cost_offdiag: n,
            };
            let mut t = DistributedTrainer::new(cluster, wf, IncrementalAutoSampler::new(), config);
            let wall_start = Instant::now();
            let mut modelled = 0.0;
            for _ in 0..rounds {
                modelled += t.sampling_round();
            }
            let wall = wall_start.elapsed().as_secs_f64() / rounds as f64;
            rows.push((label, l, modelled / rounds as f64, wall));
        }
        // Normalise by the largest configuration (6x4), as the paper does.
        let reference = rows.last().expect("nonempty sweep").2;
        for (label, l, modelled, wall) in rows {
            table.row(vec![
                n.to_string(),
                mbs.to_string(),
                label,
                l.to_string(),
                format!("{modelled:.4}"),
                format!("{:.4}", modelled / reference),
                format!("{wall:.4}"),
            ]);
        }
    }
    table.print();
    if let Some(path) = &scale.csv {
        write_csv(&table, path);
    }
    println!(
        "\nShape check: the normalised column is ≈ 1.0 everywhere — \
         near-optimal weak scaling of exact autoregressive sampling \
         (no burn-in, no cross-device coupling)."
    );
}
