//! **Figure 2** — training curves on TIM: energy (red in the paper) and
//! the standard deviation of the stochastic objective (blue), for
//! RBM&MCMC vs MADE&AUTO across problem sizes.
//!
//! Paper shape to reproduce: MADE&AUTO converges rapidly and stably at
//! every size; RBM&MCMC degrades as `n` grows (low-quality MCMC samples
//! misestimate the population energy).
//!
//! ```sh
//! cargo run --release -p vqmc-bench --bin repro_fig2 [-- --csv fig2.csv]
//! ```

use vqmc_bench::{parse_scale, write_csv, Table};
use vqmc_core::{OptimizerChoice, Trainer, TrainerConfig, TrainingTrace};
use vqmc_hamiltonian::TransverseFieldIsing;
use vqmc_nn::{made_hidden_size, rbm_hidden_size, Made, Rbm};
use vqmc_sampler::{AutoSampler, McmcSampler, RbmFastMcmc};

fn run_pair(n: usize, iterations: usize, batch: usize) -> (TrainingTrace, TrainingTrace) {
    let h = TransverseFieldIsing::random(n, 1000 + n as u64);
    let config = TrainerConfig {
        iterations,
        batch_size: batch,
        optimizer: OptimizerChoice::paper_default(),
        ..TrainerConfig::paper_default(7)
    };
    let mut auto = Trainer::new(Made::new(n, made_hidden_size(n), 1), AutoSampler::new(), config);
    let auto_trace = auto.run(&h);
    let mut mcmc = Trainer::new(
        Rbm::new(n, rbm_hidden_size(n), 1),
        RbmFastMcmc(McmcSampler::default()),
        config,
    );
    let mcmc_trace = mcmc.run(&h);
    (auto_trace, mcmc_trace)
}

/// Crude terminal sparkline of a series (high = worse energy).
fn sparkline(values: &[f64]) -> String {
    const GLYPHS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| GLYPHS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let scale = parse_scale(&[10, 20, 40], &[20, 50, 100, 200, 500], 120);
    println!(
        "Figure 2 reproduction: training curves, {} iterations, batch {}\n",
        scale.iterations, scale.batch_size
    );

    let mut csv = Table::new(&["n", "method", "iter", "energy", "std"]);
    for &n in &scale.dims {
        let (auto, mcmc) = run_pair(n, scale.iterations, scale.batch_size);
        let stride = (scale.iterations / 60).max(1);
        let a_curve: Vec<f64> = auto.records.iter().step_by(stride).map(|r| r.energy).collect();
        let m_curve: Vec<f64> = mcmc.records.iter().step_by(stride).map(|r| r.energy).collect();
        println!("n = {n}");
        println!("  MADE&AUTO energy {}", sparkline(&a_curve));
        println!("  RBM&MCMC  energy {}", sparkline(&m_curve));
        println!(
            "  final: AUTO {:.3} (std {:.3})   MCMC {:.3} (std {:.3})\n",
            auto.final_energy(),
            auto.records.last().unwrap().std_dev,
            mcmc.final_energy(),
            mcmc.records.last().unwrap().std_dev,
        );
        for (method, trace) in [("MADE&AUTO", &auto), ("RBM&MCMC", &mcmc)] {
            for (it, rec) in trace.records.iter().enumerate() {
                csv.row(vec![
                    n.to_string(),
                    method.into(),
                    it.to_string(),
                    format!("{:.6}", rec.energy),
                    format!("{:.6}", rec.std_dev),
                ]);
            }
        }
    }
    if let Some(path) = &scale.csv {
        write_csv(&csv, path);
    } else {
        println!("(pass --csv fig2.csv to dump the full curves)");
    }
    println!(
        "Shape check: AUTO curves descend monotonically with shrinking std at \
         every n; MCMC curves stagnate sooner as n grows."
    );
}
