//! **Table 1** — training time on TIM for a fixed iteration budget on
//! one device: RBM&MCMC (ADAM) vs MADE&AUTO (ADAM).
//!
//! Three columns of time are reported, because the substrate matters:
//!
//! * **passes/iter** — batched forward passes per training iteration,
//!   the paper's own cost unit (its Figure 1): `1 + k + bs·j/c` for
//!   MCMC vs `n + 1` for AUTO.  This is substrate-independent.
//! * **modelled V100 s** — pass count × launch overhead + flops at the
//!   device rate.  The paper's Table 1 numbers are launch-overhead
//!   dominated, and this model reproduces their shape (MADE&AUTO
//!   roughly an order of magnitude faster, both roughly linear in `n`).
//! * **wall s** — real single-core CPU time of this simulation.  On a
//!   serial substrate the batch axis is *not* free, which flips parts
//!   of the comparison; EXPERIMENTS.md discusses this honestly.  The
//!   incremental AUTO row shows the comparison with the batch-axis
//!   redundancy removed.
//!
//! ```sh
//! cargo run --release -p vqmc-bench --bin repro_table1 [-- --full]
//! ```

use vqmc_bench::{parse_scale, write_csv, Table};
use vqmc_cluster::DeviceSpec;
use vqmc_core::{cost, OptimizerChoice, Trainer, TrainerConfig, TrainingTrace};
use vqmc_hamiltonian::TransverseFieldIsing;
use vqmc_nn::{made_hidden_size, rbm_hidden_size, Made, Rbm};
use vqmc_sampler::{AutoSampler, IncrementalAutoSampler, McmcSampler, RbmFastMcmc};

struct RowInput {
    model: &'static str,
    sampler: &'static str,
    trace: TrainingTrace,
    hidden: usize,
    sampling_flops: f64,
}

fn main() {
    let scale = parse_scale(&[10, 20, 40, 80], &[20, 50, 100, 200, 500], 50);
    println!(
        "Table 1 reproduction: training time, {} iterations, batch {}\n",
        scale.iterations, scale.batch_size
    );
    let spec = DeviceSpec::v100();
    let mut table = Table::new(&[
        "model",
        "sampler",
        "n",
        "passes/iter",
        "modelled V100 s",
        "wall s",
    ]);

    for &n in &scale.dims {
        let h = TransverseFieldIsing::random(n, 1000 + n as u64);
        let config = TrainerConfig {
            iterations: scale.iterations,
            batch_size: scale.batch_size,
            optimizer: OptimizerChoice::paper_default(),
            ..TrainerConfig::paper_default(7)
        };
        let bs = scale.batch_size;

        let mut rows: Vec<RowInput> = Vec::new();

        // RBM & MCMC, paper settings (2 chains, k = 3n + 100), full
        // forward passes per sweep — the fast cached path would be an
        // optimisation the paper's implementation did not have, so the
        // pass accounting uses the batched-forward cost. (Training
        // itself uses the cached path for wall-clock sanity; the pass
        // count is identical.)
        {
            let rbm_h = rbm_hidden_size(n);
            let mut t = Trainer::new(
                Rbm::new(n, rbm_h, 1),
                RbmFastMcmc(McmcSampler::default()),
                config,
            );
            let trace = t.run(&h);
            let steps = cost::mcmc_steps(bs, 2, 3 * n + 100, 1);
            rows.push(RowInput {
                model: "RBM",
                sampler: "MCMC",
                trace,
                hidden: rbm_h,
                sampling_flops: cost::mcmc_sampling_flops(2, steps, n, rbm_h),
            });
        }

        // MADE & AUTO — naive Algorithm 1 (the paper's accounting).
        {
            let made_h = made_hidden_size(n);
            let mut t = Trainer::new(Made::new(n, made_h, 1), AutoSampler::new(), config);
            let trace = t.run(&h);
            rows.push(RowInput {
                model: "MADE",
                sampler: "AUTO",
                trace,
                hidden: made_h,
                sampling_flops: cost::auto_sampling_flops(bs, n, made_h),
            });
        }

        // MADE & AUTO — incremental sampler (our optimisation; same
        // distribution, same pass count in the paper's unit).
        {
            let made_h = made_hidden_size(n);
            let mut t = Trainer::new(Made::new(n, made_h, 1), IncrementalAutoSampler::new(), config);
            let trace = t.run(&h);
            rows.push(RowInput {
                model: "MADE",
                sampler: "AUTO(incr)",
                trace,
                hidden: made_h,
                sampling_flops: cost::auto_sampling_flops_incremental(bs, n, made_h),
            });
        }

        for r in rows {
            let passes_per_iter = r.trace.records[0].sample_stats.forward_passes
                + 2 /* measurement neighbour pass + own-batch backward */;
            let iter_flops = r.sampling_flops
                + cost::measurement_flops(bs, n, r.hidden, n)
                + cost::backward_flops(bs, n, r.hidden);
            // Measurement adds ceil(bs·n / chunk) + 1 more passes; count
            // the dominant single neighbour pass for the summary unit.
            let modelled =
                cost::modelled_pass_time(passes_per_iter, iter_flops, &spec)
                    * scale.iterations as f64;
            table.row(vec![
                r.model.into(),
                r.sampler.into(),
                n.to_string(),
                passes_per_iter.to_string(),
                format!("{modelled:.2}"),
                format!("{:.2}", r.trace.total_secs),
            ]);
        }
    }
    table.print();
    if let Some(path) = &scale.csv {
        write_csv(&table, path);
    }
    println!(
        "\nShape checks (paper's Table 1, in the modelled column): \
         MADE&AUTO is roughly an order of magnitude cheaper than RBM&MCMC \
         at every n, and both grow roughly linearly in n.\n\
         The wall column shows the single-core caveat: with no parallel \
         batch axis, naive AUTO pays its O(n) redundant forward passes \
         for real; the incremental sampler removes them."
    );
}
