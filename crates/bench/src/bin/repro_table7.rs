//! **Table 7** — the raw weak-scaling data behind Figure 3: running
//! time for TIM problems of every dimension, each device loaded with
//! the memory-saturating minibatch, across all GPU configurations.
//!
//! Unlike `repro_fig3` (which *executes* scaled-down sampling rounds),
//! this binary evaluates the full modelled iteration time — sampling +
//! measurement + backward + the two collectives — at the paper's exact
//! parameters, for every `(n, topology)` cell.  The compute terms come
//! from the flop model; the collective terms from real tree allreduces
//! of gradient-sized buffers over each topology's link model.
//!
//! Paper shape to reproduce: each column (fixed n) is constant in L.
//!
//! ```sh
//! cargo run --release -p vqmc-bench --bin repro_table7
//! ```

use vqmc_bench::{parse_scale, write_csv, Table};
use vqmc_cluster::{allreduce_mean_tree, DeviceSpec, Topology};
use vqmc_core::cost;
use vqmc_nn::made_hidden_size;
use vqmc_tensor::Vector;

fn main() {
    let scale = parse_scale(
        &[20, 50, 100, 200, 500, 1000, 2000, 5000, 10_000],
        &[20, 50, 100, 200, 500, 1000, 2000, 5000, 10_000],
        1,
    );
    println!("Table 7 reproduction: modelled seconds per training iteration\n");
    let spec = DeviceSpec::v100();

    let mut headers: Vec<String> = vec!["config".into(), "L".into()];
    for &n in &scale.dims {
        headers.push(format!("n={n}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    // Print the paper's "samples per GPU" context row.
    let mut mbs_row: Vec<String> = vec!["mbs/GPU".into(), "-".into()];
    for &n in &scale.dims {
        mbs_row.push(spec.paper_minibatch(n, made_hidden_size(n)).to_string());
    }
    table.row(mbs_row);

    for topo in Topology::paper_configurations() {
        let l = topo.num_devices();
        let mut row: Vec<String> = vec![topo.label(), l.to_string()];
        for &n in &scale.dims {
            let hidden = made_hidden_size(n);
            let mbs = spec.paper_minibatch(n, hidden);
            let d = 2 * n * hidden + n + hidden;
            let compute = cost::auto_iteration_flops(mbs, n, hidden, n) / spec.flops_per_sec
                + (n + 3) as f64 * spec.pass_overhead_secs;
            // Two collectives: 3-double scalars + d-double gradient.
            let (_, comm_scalar) =
                allreduce_mean_tree((0..l).map(|_| Vector::zeros(3)).collect(), &topo);
            let (_, comm_grad) =
                allreduce_mean_tree((0..l).map(|_| Vector::zeros(d)).collect(), &topo);
            let per_iter = compute + comm_scalar + comm_grad;
            row.push(format!("{per_iter:.2}"));
        }
        table.row(row);
    }
    table.print();
    if let Some(path) = &scale.csv {
        write_csv(&table, path);
    }
    println!(
        "\nShape check: within each column the entries are nearly constant \
         across configurations (weak scaling); along a row they grow with n \
         as the paper's Table 7 does."
    );
}
