//! **Table 5** — time to reach a target cut: MADE+AUTO vs RBM+MCMC on
//! Max-Cut, training with evaluation-after-update and stopping at the
//! target (evaluation time excluded, as in the paper).
//!
//! Targets: at paper scale (`--full`), the paper's own
//! `{41, 190, 730, 2800, 16800}` for `n ∈ {20, 50, 100, 200, 500}`;
//! otherwise 92 % of the Burer–Monteiro score for the instance.
//!
//! Paper shape to reproduce: MADE+AUTO hits the target orders of
//! magnitude faster, with the gap growing in `n`.
//!
//! ```sh
//! cargo run --release -p vqmc-bench --bin repro_table5 [-- --full]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use vqmc_baselines::BurerMonteiro;
use vqmc_bench::{mean_std, parse_scale, write_csv, Table};
use vqmc_cluster::DeviceSpec;
use vqmc_core::{cost, hitting_time, HittingConfig, OptimizerChoice, Trainer, TrainerConfig};
use vqmc_hamiltonian::MaxCut;
use vqmc_nn::{made_hidden_size, rbm_hidden_size, Made, Rbm};
use vqmc_sampler::{AutoSampler, McmcSampler, RbmFastMcmc};

fn paper_target(n: usize) -> Option<f64> {
    match n {
        20 => Some(41.0),
        50 => Some(190.0),
        100 => Some(730.0),
        200 => Some(2800.0),
        500 => Some(16_800.0),
        _ => None,
    }
}

fn main() {
    let scale = parse_scale(&[12, 16, 20], &[20, 50, 100, 200, 500], 400);
    println!(
        "Table 5 reproduction: seconds to reach the target cut \
         ({} seeds, cap {} iterations)\n",
        scale.seeds, scale.iterations
    );
    let mut table = Table::new(&[
        "n",
        "target",
        "method",
        "iters",
        "wall s",
        "modelled V100 s",
        "hit rate",
    ]);
    let spec = DeviceSpec::v100();

    for &n in &scale.dims {
        let mc = MaxCut::random(n, 500 + n as u64);
        let target = paper_target(n).filter(|_| scale.full).unwrap_or_else(|| {
            // 96 % of the Burer–Monteiro score: near-converged, like the
            // paper's targets.
            let mut rng = StdRng::seed_from_u64(1);
            let bm = BurerMonteiro::default().solve(mc.graph(), &mut rng);
            let (mut x, _) =
                vqmc_baselines::hyperplane_round(mc.graph(), &bm.v, 60, &mut rng);
            let cut = vqmc_baselines::local_search_1opt(mc.graph(), &mut x);
            (cut as f64 * 0.96).floor()
        });

        for method in ["MADE+AUTO", "RBM+MCMC"] {
            let mut secs = Vec::new();
            let mut iters = Vec::new();
            let mut hits = 0usize;
            for seed in 0..scale.seeds as u64 {
                let config = TrainerConfig {
                    iterations: 0,
                    batch_size: scale.batch_size,
                    optimizer: OptimizerChoice::paper_default(),
                    ..TrainerConfig::paper_default(seed)
                };
                let hc = HittingConfig {
                    target_score: target,
                    eval_batch_size: scale.batch_size,
                    max_iterations: scale.iterations,
                };
                let result = if method == "MADE+AUTO" {
                    let mut t = Trainer::new(
                        Made::new(n, made_hidden_size(n), seed),
                        AutoSampler::new(),
                        config,
                    );
                    hitting_time(&mut t, &mc, hc)
                } else {
                    let mut t = Trainer::new(
                        Rbm::new(n, rbm_hidden_size(n), seed),
                        RbmFastMcmc(McmcSampler::default()),
                        config,
                    );
                    hitting_time(&mut t, &mc, hc)
                };
                if result.hit {
                    hits += 1;
                    secs.push(result.train_secs);
                    iters.push(result.iterations as f64);
                }
            }
            let (wall_cell, iter_cell, modelled_cell) = if secs.is_empty() {
                ("never".to_string(), "-".to_string(), "-".to_string())
            } else {
                let (m, s) = mean_std(&secs);
                let (im, _) = mean_std(&iters);
                // Modelled V100 time per training iteration (as in
                // repro_table1): Max-Cut is diagonal, so measurement is
                // one pass over the batch with no neighbours.
                let bs = scale.batch_size;
                let (passes, flops) = if method == "MADE+AUTO" {
                    let h = made_hidden_size(n);
                    (
                        n + 3,
                        cost::auto_sampling_flops(bs, n, h)
                            + cost::measurement_flops(bs, n, h, 0)
                            + cost::backward_flops(bs, n, h),
                    )
                } else {
                    let h = rbm_hidden_size(n);
                    let steps = cost::mcmc_steps(bs, 2, 3 * n + 100, 1);
                    (
                        steps + 3,
                        cost::mcmc_sampling_flops(2, steps, n, h)
                            + cost::measurement_flops(bs, n, h, 0)
                            + cost::backward_flops(bs, n, h),
                    )
                };
                let modelled = cost::modelled_pass_time(passes, flops, &spec) * im;
                (
                    format!("{m:.2} ± {s:.2}"),
                    format!("{im:.0}"),
                    format!("{modelled:.2}"),
                )
            };
            table.row(vec![
                n.to_string(),
                format!("{target}"),
                method.into(),
                iter_cell,
                wall_cell,
                modelled_cell,
                format!("{hits}/{}", scale.seeds),
            ]);
        }
    }
    table.print();
    if let Some(path) = &scale.csv {
        write_csv(&table, path);
    }
    println!(
        "\nShape check (modelled V100 column): MADE+AUTO reaches the target \
         in a fraction of the RBM+MCMC time, the ratio widening with n \
         (the paper's 40-170x); the wall column shows the single-core \
         caveat discussed in EXPERIMENTS.md."
    );
}
