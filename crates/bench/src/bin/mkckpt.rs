//! `vqmc-mkckpt` — writes an untrained MADE checkpoint of a given
//! shape, so serving benchmarks can be run at sizes where training a
//! real model first would dominate the benchmark wall-clock (the
//! serving path only cares about shapes, not learned weights).
//!
//! ```sh
//! vqmc-mkckpt --n 65536 --hidden 256 --seed 1 --out made_64k.ckpt
//! vqmc-mkckpt --n 1024 --hidden 192,96 --seed 1 --out made_deep.ckpt
//! ```

use vqmc_nn::checkpoint::Checkpoint;
use vqmc_nn::Made;
use vqmc_tensor::Precision;

const USAGE: &str = "\
vqmc-mkckpt — write an untrained MADE checkpoint for serving benchmarks

FLAGS:
  --n <spins>          number of spins (required)
  --hidden <N[,N...]>  hidden widths, comma-separated for a deep
                       stack (required)
  --seed <N>           weight init seed (default 1)
  --precision f64|f32  parameter storage width (default f64)
  --mutate             derive a *different* model of the same shape
                       (distinguishable logψ) — pairs with the base
                       checkpoint for hot-reload tests
  --out <path>         checkpoint path (required)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flags = std::collections::BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            eprintln!("expected a --flag, found {:?}\n\n{USAGE}", args[i]);
            std::process::exit(1);
        };
        if name == "help" || name == "h" {
            println!("{USAGE}");
            return;
        }
        // Boolean flags take no value.
        if name == "mutate" {
            flags.insert(name.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("flag --{name} is missing its value\n\n{USAGE}");
            std::process::exit(1);
        };
        flags.insert(name.to_string(), value.clone());
        i += 2;
    }
    let req = |k: &str| -> String {
        flags.get(k).cloned().unwrap_or_else(|| {
            eprintln!("--{k} is required\n\n{USAGE}");
            std::process::exit(1);
        })
    };
    let n: usize = req("n").parse().expect("--n wants an integer");
    let hidden: Vec<usize> = req("hidden")
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .expect("--hidden wants a comma-separated integer list")
        })
        .collect();
    assert!(
        !hidden.is_empty() && hidden.iter().all(|&w| w > 0),
        "--hidden widths must be positive"
    );
    let seed: u64 = flags
        .get("seed")
        .map_or(1, |s| s.parse().expect("--seed wants an integer"));
    let precision = flags.get("precision").map_or(Precision::F64, |s| {
        Precision::parse(s).expect("--precision wants f64|f32")
    });
    let out = req("out");

    // --mutate perturbs the init seed deterministically, so the same
    // invocation plus the flag yields a same-shape model whose logψ is
    // distinguishable from the base — the "new weights" side of a
    // hot-reload test.
    let mutate = flags.contains_key("mutate");
    let model_seed = if mutate { seed ^ 0x6d75_7461 } else { seed };

    let model = Made::with_hidden(n, &hidden, model_seed);
    model
        .save_with_precision(&out, precision)
        .expect("write checkpoint");
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {out}: made n={n} hidden={hidden:?} seed={model_seed}{} precision={} ({bytes} bytes)",
        if mutate { " (mutated)" } else { "" },
        precision.as_str()
    );
}
