//! The batched local-energy engine across pool widths: neighbour-batch
//! build + forward pass + vectorised ratio/exp + scatter, exactly the
//! per-iteration measurement path of `Trainer::step`.
//!
//! The neighbour build and log-ratio fill stripe over the worker pool;
//! the `logψ` forward pass rides the pool through the GEMM and slice
//! kernels.  On this container `nproc` = 1, so the t2/t4 entries
//! document dispatch overhead rather than speedup — rerun on a
//! multi-core host for the scaling columns (results are bit-identical
//! at any width).
//!
//! Run with `BENCH_JSON=BENCH_kernels.json cargo bench --bench
//! bench_local_energy` to refresh the machine-readable medians.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use vqmc_hamiltonian::{
    local_energies_into, LocalEnergyConfig, LocalEnergyScratch, TransverseFieldIsing,
};
use vqmc_nn::{made_hidden_size, Made, WaveFunction};
use vqmc_sampler::MadeBatchSampler;
use vqmc_tensor::{par, SpinBatch, Vector};

fn bench_local_energy(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_energy");
    group.sample_size(10);
    let n = 64;
    let batch_size = 512; // 512 samples × 64 flip-neighbours ≈ 33k logψ rows
    let h = TransverseFieldIsing::random(n, 5);
    let wf = Made::new(n, made_hidden_size(n), 1);
    let mut rng = StdRng::seed_from_u64(11);
    let mut batch = SpinBatch::default();
    let mut log_psi_x = Vector::default();
    MadeBatchSampler::new().sample_stream(&wf, batch_size, &mut rng, &mut batch, &mut log_psi_x);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("tim_n64_b512/t{threads}"), |b| {
            par::with_threads(threads, || {
                let mut scratch = LocalEnergyScratch::new();
                let mut out = Vector::default();
                b.iter(|| {
                    local_energies_into(
                        &h,
                        &batch,
                        &log_psi_x,
                        &mut |nb, dst: &mut Vector| dst.copy_from(&wf.log_psi(nb)),
                        LocalEnergyConfig::default(),
                        &mut scratch,
                        &mut out,
                    );
                    black_box(out.as_slice()[0])
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_local_energy);
criterion_main!(benches);
