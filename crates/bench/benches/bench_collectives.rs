//! Ablation bench (DESIGN.md): the tree allreduce across topologies and
//! gradient sizes — the real data-combination cost of the virtual
//! cluster (modelled link time is accounted separately by SimClock).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vqmc_cluster::{allreduce_mean_tree, Topology};
use vqmc_tensor::Vector;

fn vectors(l: usize, len: usize) -> Vec<Vector> {
    (0..l)
        .map(|r| Vector::from_fn(len, |i| ((r * 131 + i * 7) % 97) as f64))
        .collect()
}

fn bench_device_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce_devices");
    let len = 1 << 16; // ~ the d of a mid-size MADE
    for topo in Topology::paper_configurations() {
        let l = topo.num_devices();
        group.bench_with_input(
            BenchmarkId::from_parameter(topo.label()),
            &topo,
            |b, topo| {
                b.iter_batched(
                    || vectors(l, len),
                    |vs| black_box(allreduce_mean_tree(vs, topo)),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_gradient_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce_bytes");
    let topo = Topology::new(4, 4);
    for &len in &[1usize << 12, 1 << 16, 1 << 20] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            b.iter_batched(
                || vectors(16, len),
                |vs| black_box(allreduce_mean_tree(vs, &topo)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_device_counts, bench_gradient_sizes);
criterion_main!(benches);
