//! The Table-1 kernel as a criterion micro-benchmark: one sampling call
//! of AUTO (MADE) vs MCMC (RBM, paper settings) across problem sizes.
//! The wall-clock ratio here is the engine behind the paper's 20-50x
//! training-time gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use vqmc_nn::{made_hidden_size, rbm_hidden_size, Made, Rbm};
use vqmc_sampler::{AutoSampler, MadeBatchSampler, McmcSampler, PanelLayout, Sampler};
use vqmc_tensor::{SpinBatch, Vector};

const BATCH: usize = 64;

fn bench_auto(c: &mut Criterion) {
    let mut group = c.benchmark_group("auto_sampling");
    group.sample_size(10);
    for &n in &[20usize, 50, 100] {
        let wf = Made::new(n, made_hidden_size(n), 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &wf, |b, wf| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| black_box(AutoSampler::new().sample(wf, BATCH, &mut rng)))
        });
    }
    group.finish();
}

fn bench_mcmc(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcmc_sampling");
    group.sample_size(10);
    for &n in &[20usize, 50, 100] {
        let wf = Rbm::new(n, rbm_hidden_size(n), 1);
        let sampler = McmcSampler::default(); // 2 chains, k = 3n + 100
        group.bench_with_input(BenchmarkId::from_parameter(n), &wf, |b, wf| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| black_box(sampler.sample_rbm(wf, BATCH, &mut rng)))
        });
    }
    group.finish();
}

/// The training hot path after the sampling unification: one
/// `MadeBatchSampler::sample_stream` call (exactly what
/// `IncrementalAutoSampler` — and hence `Trainer::step` — executes).
/// `rows` is the "before" layout (the pre-unification per-row training
/// path); `cols` is the fused transposed-panel kernel that the
/// unification promoted from `vqmc-serve` onto training; `auto` is the
/// production threshold dispatch (≡ cols at these batch sizes).
fn bench_training_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    group.sample_size(10);
    // (n, batch): paper-scale spin counts, batch sized to keep one
    // measurement within the stub's time budget.
    for &(n, batch) in &[(1024usize, 256usize), (16384, 32)] {
        let wf = Made::new(n, made_hidden_size(n), 1);
        for (label, layout) in [
            ("rows", PanelLayout::Rows),
            ("cols", PanelLayout::Cols),
            ("auto", PanelLayout::Auto),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &wf,
                |b, wf| {
                    let mut sampler = MadeBatchSampler::new();
                    sampler.force_layout(layout);
                    let mut rng = StdRng::seed_from_u64(7);
                    let mut out_batch = SpinBatch::default();
                    let mut out_log_psi = Vector::default();
                    b.iter(|| {
                        sampler.sample_stream(
                            wf,
                            batch,
                            &mut rng,
                            &mut out_batch,
                            &mut out_log_psi,
                        );
                        black_box(out_log_psi.as_slice()[0])
                    })
                },
            );
        }
    }
    group.finish();
}

/// Pool-width sweep on the acceptance sampling shape (16 384 samples):
/// the cols panel path stripes the batch across workers.  On this
/// container `nproc` = 1, so t2/t4 time-slice one core and the medians
/// document dispatch overhead, not speedup — rerun on a multi-core host
/// for the scaling columns (output is bit-identical either way, so the
/// thread count is purely a throughput knob).
fn bench_sampling_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_threads");
    group.sample_size(10);
    let n = 64;
    let batch = 16_384;
    let wf = Made::new(n, made_hidden_size(n), 1);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("cols_b16384/t{threads}"), |b| {
            vqmc_tensor::par::with_threads(threads, || {
                let mut sampler = MadeBatchSampler::new();
                sampler.force_layout(PanelLayout::Cols);
                let mut rng = StdRng::seed_from_u64(7);
                let mut out_batch = SpinBatch::default();
                let mut out_log_psi = Vector::default();
                b.iter(|| {
                    sampler.sample_stream(&wf, batch, &mut rng, &mut out_batch, &mut out_log_psi);
                    black_box(out_log_psi.as_slice()[0])
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_auto,
    bench_mcmc,
    bench_training_path,
    bench_sampling_threads
);
criterion_main!(benches);
