//! The Table-1 kernel as a criterion micro-benchmark: one sampling call
//! of AUTO (MADE) vs MCMC (RBM, paper settings) across problem sizes.
//! The wall-clock ratio here is the engine behind the paper's 20-50x
//! training-time gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use vqmc_nn::{made_hidden_size, rbm_hidden_size, Made, Rbm};
use vqmc_sampler::{AutoSampler, McmcSampler, Sampler};

const BATCH: usize = 64;

fn bench_auto(c: &mut Criterion) {
    let mut group = c.benchmark_group("auto_sampling");
    group.sample_size(10);
    for &n in &[20usize, 50, 100] {
        let wf = Made::new(n, made_hidden_size(n), 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &wf, |b, wf| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| black_box(AutoSampler::new().sample(wf, BATCH, &mut rng)))
        });
    }
    group.finish();
}

fn bench_mcmc(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcmc_sampling");
    group.sample_size(10);
    for &n in &[20usize, 50, 100] {
        let wf = Rbm::new(n, rbm_hidden_size(n), 1);
        let sampler = McmcSampler::default(); // 2 chains, k = 3n + 100
        group.bench_with_input(BenchmarkId::from_parameter(n), &wf, |b, wf| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| black_box(sampler.sample_rbm(wf, BATCH, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_auto, bench_mcmc);
criterion_main!(benches);
