//! Deep-stack cost curves: log-psi evaluation and AUTO sampling for
//! MADE depths 1/2/3 at a fixed parameter-comparable width schedule,
//! n = 4096. Depth 1 is the baseline every other row in
//! `BENCH_kernels.json` was measured against; depths 2/3 price the
//! extra masked layers the composable stack makes expressible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use vqmc_nn::{Made, MadeWorkspace};
use vqmc_sampler::MadeBatchSampler;
use vqmc_tensor::{SpinBatch, Vector};

const N: usize = 4096;

/// Width schedules chosen so the three depths hold a roughly equal
/// parameter budget (the dominant cost is the n×h input layer).
fn stacks() -> [(&'static str, Vec<usize>); 3] {
    [
        ("depth1", vec![96]),
        ("depth2", vec![72, 48]),
        ("depth3", vec![64, 40, 24]),
    ]
}

fn bench_deep_log_psi(c: &mut Criterion) {
    let mut group = c.benchmark_group("deep_log_psi");
    group.sample_size(10);
    let batch = SpinBatch::from_fn(64, N, |s, i| ((s * 7 + i * 3) % 2) as u8);
    for (label, hidden) in stacks() {
        let wf = Made::with_hidden(N, &hidden, 1);
        group.bench_with_input(BenchmarkId::from_parameter(label), &wf, |b, wf| {
            let mut ws = MadeWorkspace::default();
            let mut out = Vector::default();
            b.iter(|| {
                wf.log_psi_with(&batch, &mut ws, &mut out);
                black_box(out.as_slice()[0])
            })
        });
    }
    group.finish();
}

fn bench_deep_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("deep_sampling");
    group.sample_size(10);
    for (label, hidden) in stacks() {
        let wf = Made::with_hidden(N, &hidden, 1);
        group.bench_with_input(BenchmarkId::from_parameter(label), &wf, |b, wf| {
            let mut sampler = MadeBatchSampler::new();
            let mut rng = StdRng::seed_from_u64(7);
            let mut out_batch = SpinBatch::default();
            let mut out_log_psi = Vector::default();
            b.iter(|| {
                sampler.sample_stream(wf, 64, &mut rng, &mut out_batch, &mut out_log_psi);
                black_box(out_log_psi.as_slice()[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_deep_log_psi, bench_deep_sampling);
criterion_main!(benches);
