//! Ablation bench (DESIGN.md): stochastic-reconfiguration solve cost as
//! a function of the CG tolerance and the regulariser λ — the knobs of
//! the paper's §5.1 SR setting (λ = 1e-3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vqmc_nn::{Made, WaveFunction};
use vqmc_optim::{SrConfig, StochasticReconfiguration};
use vqmc_tensor::{SpinBatch, Vector};

fn setup(n: usize, bs: usize) -> (vqmc_tensor::Matrix, Vector) {
    let wf = Made::new(n, 2 * n, 1);
    let batch = SpinBatch::from_fn(bs, n, |s, i| (((s + 1) * (i + 3)) % 2) as u8);
    let o_rows = wf.per_sample_grads(&batch);
    let grad = Vector::from_fn(wf.num_params(), |k| ((k as f64) * 0.37).sin() * 1e-2);
    (o_rows, grad)
}

fn bench_sr_lambda(c: &mut Criterion) {
    let mut group = c.benchmark_group("sr_lambda");
    group.sample_size(10);
    let (o_rows, grad) = setup(24, 128);
    for &lambda in &[1e-1, 1e-3, 1e-5] {
        let sr = StochasticReconfiguration::new(SrConfig {
            lambda,
            ..SrConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{lambda:e}")),
            &sr,
            |b, sr| b.iter(|| black_box(sr.precondition(&o_rows, &grad))),
        );
    }
    group.finish();
}

fn bench_sr_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sr_batch_size");
    group.sample_size(10);
    for &bs in &[32usize, 128, 512] {
        let (o_rows, grad) = setup(24, bs);
        let sr = StochasticReconfiguration::default();
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, _| {
            b.iter(|| black_box(sr.precondition(&o_rows, &grad)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sr_lambda, bench_sr_batch);
criterion_main!(benches);
