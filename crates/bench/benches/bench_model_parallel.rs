//! Ablation bench: model-parallel (hidden-sharded) MADE forward pass vs
//! the dense forward — the execution cost of the paper's §4 avenue (1),
//! implemented in `vqmc-core::model_parallel`.  The interesting numbers
//! are the modelled comm volumes (printed by `comm_comparison` tests);
//! this bench measures the real orchestration overhead of sharding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vqmc_cluster::{Cluster, DeviceSpec, Topology};
use vqmc_core::model_parallel::ShardedMade;
use vqmc_nn::{Made, WaveFunction};
use vqmc_tensor::SpinBatch;

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_parallel_forward");
    group.sample_size(10);
    let (n, h, bs) = (64usize, 64usize, 128usize);
    let made = Made::new(n, h, 1);
    let batch = SpinBatch::from_fn(bs, n, |s, i| (((s + 1) * (i + 3)) % 2) as u8);

    group.bench_function("dense", |b| {
        b.iter(|| black_box(made.log_psi(&batch)))
    });
    for &shards in &[2usize, 4, 8] {
        let sharded = ShardedMade::from_made(&made, shards);
        group.bench_with_input(
            BenchmarkId::new("sharded", shards),
            &sharded,
            |b, sharded| {
                let mut cluster = Cluster::new(Topology::new(1, shards), DeviceSpec::v100());
                b.iter(|| black_box(sharded.log_psi_distributed(&mut cluster, &batch)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
