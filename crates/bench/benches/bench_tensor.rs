//! Micro-benchmarks of the dense kernels: GEMM variants across sizes
//! straddling the rayon crossover threshold, validating the
//! `PAR_THRESHOLD_ELEMS` design choice called out in DESIGN.md, a
//! naive / blocked-scalar / packed-SIMD `gemm_nt` comparison at the
//! EXPERIMENTS.md acceptance shape (m,k,n) = (1024,512,512), and the
//! transcendental slice kernels (SIMD arm vs portable scalar arm).
//!
//! Run with `BENCH_JSON=BENCH_kernels.json cargo bench --bench
//! bench_tensor` to refresh the machine-readable medians.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vqmc_tensor::vector::dot;
use vqmc_tensor::{gemm, ops, par, simd, Matrix};

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1000) as f64 / 500.0 - 1.0
    })
}

/// The pre-blocking `gemm_nt` inner loop (one dot product per output
/// element), kept as the durable "before" baseline for the blocked
/// kernel's speedup numbers.
fn gemm_nt_naive(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(k, kb);
    let mut c = Matrix::zeros(m, n);
    for r in 0..m {
        let a_row = a.row(r);
        let c_row = c.row_mut(r);
        for (j, c_val) in c_row.iter_mut().enumerate() {
            *c_val = dot(a_row, b.row(j));
        }
    }
    c
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_nt");
    // Shapes mirroring the FC forward pass Y[bs,h] = X[bs,n] W[h,n]^T at
    // the paper's policy h = 5(ln n)^2.
    for &(bs, n) in &[(64usize, 50usize), (256, 100), (1024, 200)] {
        let h = {
            let ln = (n as f64).ln();
            (5.0 * ln * ln).round() as usize
        };
        let x = mat(bs, n, 1);
        let w = mat(h, n, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("bs{bs}_n{n}_h{h}")),
            &(x, w),
            |b, (x, w)| b.iter(|| black_box(gemm::gemm_nt(x, w))),
        );
    }
    group.finish();
}

fn bench_gemm_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_variants_256");
    let a = mat(256, 256, 3);
    let b_ = mat(256, 256, 4);
    group.bench_function("nt", |bch| bch.iter(|| black_box(gemm::gemm_nt(&a, &b_))));
    group.bench_function("nn", |bch| bch.iter(|| black_box(gemm::gemm_nn(&a, &b_))));
    group.bench_function("tn", |bch| bch.iter(|| black_box(gemm::gemm_tn(&a, &b_))));
    group.bench_function("reference", |bch| {
        bch.iter(|| black_box(gemm::gemm_reference(&a, &b_)))
    });
    group.finish();
}

fn bench_gemm_blocked_vs_naive(c: &mut Criterion) {
    // The acceptance shape: C[1024,512] = A[1024,512] · B[512,512]^T.
    // "blocked" / "blocked_into" pin the scalar 4×4 loop nest (the
    // pre-SIMD baseline); "simd" is the production dispatch, i.e. the
    // packed AVX2 8×4 microkernel on capable hosts.
    let mut group = c.benchmark_group("gemm_nt_1024x512x512");
    group.sample_size(10);
    let a = mat(1024, 512, 5);
    let b_ = mat(512, 512, 6);
    group.bench_function("blocked", |bch| {
        bch.iter(|| {
            let mut out = Matrix::zeros(1024, 512);
            gemm::gemm_nt_blocked_scalar_into(&a, &b_, &mut out);
            black_box(out)
        })
    });
    group.bench_function("naive", |bch| {
        bch.iter(|| black_box(gemm_nt_naive(&a, &b_)))
    });
    let mut out = Matrix::zeros(1024, 512);
    group.bench_function("blocked_into", |bch| {
        bch.iter(|| {
            gemm::gemm_nt_blocked_scalar_into(&a, &b_, &mut out);
            black_box(out.get(0, 0))
        })
    });
    group.bench_function("simd", |bch| {
        bch.iter(|| black_box(gemm::gemm_nt(&a, &b_)))
    });
    group.finish();
}

/// Transcendental slice kernels at the MADE conditionals batch size:
/// the production dispatch (AVX2 on capable hosts) against the portable
/// scalar twin, same vendored algorithm on both arms.
fn bench_ops_slice(c: &mut Criterion) {
    const LEN: usize = 4096;
    let xs: Vec<f64> = {
        let m = mat(1, LEN, 9);
        m.as_slice().iter().map(|v| v * 6.0).collect()
    };
    let prod = simd::kernels();
    let port = simd::portable_kernels();
    let mut group = c.benchmark_group("ops_slice");
    let kernels: [(&str, fn(&mut [f64]), fn(&mut [f64])); 4] = [
        ("sigmoid_4096", prod.sigmoid_slice, port.sigmoid_slice),
        ("ln_cosh_4096", prod.ln_cosh_slice, port.ln_cosh_slice),
        ("log_sigmoid_4096", prod.log_sigmoid_slice, port.log_sigmoid_slice),
        ("exp_4096", prod.exp_slice, port.exp_slice),
    ];
    let mut buf = vec![0.0f64; LEN];
    for (name, simd_fn, scalar_fn) in kernels {
        group.bench_function(format!("{name}/simd"), |bch| {
            bch.iter(|| {
                buf.copy_from_slice(&xs);
                simd_fn(&mut buf);
                black_box(buf[0])
            })
        });
        group.bench_function(format!("{name}/scalar"), |bch| {
            bch.iter(|| {
                buf.copy_from_slice(&xs);
                scalar_fn(&mut buf);
                black_box(buf[0])
            })
        });
    }
    group.finish();
}

/// The f32 GEMM twin against the f64 kernel at the same shapes: the
/// mixed-precision arm's headline claim is that halving the streamed
/// bytes (and doubling the SIMD lanes) roughly doubles GEMM throughput
/// once the working set spills past cache.
fn bench_gemm_f32(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_f32");
    group.sample_size(10);
    for &(m, n, k) in &[(256usize, 256usize, 256usize), (1024, 512, 512)] {
        let a64 = mat(m, k, 5);
        let b64 = mat(n, k, 6);
        let a32: Vec<f32> = a64.as_slice().iter().map(|&v| v as f32).collect();
        let b32: Vec<f32> = b64.as_slice().iter().map(|&v| v as f32).collect();
        let mut c32 = vec![0.0f32; m * n];
        group.bench_function(format!("{m}x{n}x{k}/f32"), |bch| {
            bch.iter(|| {
                vqmc_tensor::gemm32::gemm_nt_f32(m, n, k, &a32, &b32, &mut c32);
                black_box(c32[0])
            })
        });
        group.bench_function(format!("{m}x{n}x{k}/f64"), |bch| {
            bch.iter(|| black_box(gemm::gemm_nt(&a64, &b64)))
        });
    }
    group.finish();
}

/// The f32 transcendental slice kernels (widen→f64-kernel→narrow
/// strategy) against the f64 production dispatch at the same element
/// count: documents how much of the f32 arm's win comes from the
/// bandwidth side rather than the transcendental side.
fn bench_ops_slice_f32(c: &mut Criterion) {
    const LEN: usize = 4096;
    let xs64: Vec<f64> = {
        let m = mat(1, LEN, 9);
        m.as_slice().iter().map(|v| v * 6.0).collect()
    };
    let xs32: Vec<f32> = xs64.iter().map(|&v| v as f32).collect();
    let k64 = simd::kernels();
    let k32 = simd::kernels_f32();
    let mut group = c.benchmark_group("ops_slice_f32");
    let pairs: [(&str, fn(&mut [f32]), fn(&mut [f64])); 3] = [
        ("sigmoid_4096", k32.sigmoid_slice, k64.sigmoid_slice),
        ("log_sigmoid_4096", k32.log_sigmoid_slice, k64.log_sigmoid_slice),
        ("exp_4096", k32.exp_slice, k64.exp_slice),
    ];
    let mut buf32 = vec![0.0f32; LEN];
    let mut buf64 = vec![0.0f64; LEN];
    for (name, f32_fn, f64_fn) in pairs {
        group.bench_function(format!("{name}/f32"), |bch| {
            bch.iter(|| {
                buf32.copy_from_slice(&xs32);
                f32_fn(&mut buf32);
                black_box(buf32[0])
            })
        });
        group.bench_function(format!("{name}/f64"), |bch| {
            bch.iter(|| {
                buf64.copy_from_slice(&xs64);
                f64_fn(&mut buf64);
                black_box(buf64[0])
            })
        });
    }
    group.finish();
}

/// Raw pool-region dispatch cost: one broadcast wake + join over an
/// (almost) empty job, per requested width.  This is the overhead every
/// `should_parallelize` gate amortises; `PAR_THRESHOLD_ELEMS` is sized
/// so the crossover sweep below clears it with margin.
fn bench_par_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_dispatch");
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("t{threads}"), |bch| {
            par::with_threads(threads, || {
                bch.iter(|| {
                    let sink = std::sync::atomic::AtomicUsize::new(0);
                    par::run(threads, &|w| {
                        sink.fetch_add(w + 1, std::sync::atomic::Ordering::Relaxed);
                    });
                    black_box(sink.into_inner())
                })
            })
        });
    }
    group.finish();
}

/// `PAR_THRESHOLD_ELEMS` crossover sweep: a pool-parallel transcendental
/// slice kernel at lengths straddling the 32 Ki-element gate, at 1 and
/// 4 threads.  On a multi-core host the t4 column should win from the
/// first gated length on; equal t1/t4 medians below the gate confirm
/// the threshold suppresses unprofitable dispatch.
fn bench_par_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_threshold");
    for len in [8 * 1024usize, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024] {
        let xs: Vec<f64> = (0..len).map(|i| ((i % 97) as f64) / 10.0 - 4.0).collect();
        let mut buf = vec![0.0f64; len];
        for threads in [1usize, 4] {
            group.bench_function(format!("exp_{}k/t{threads}", len / 1024), |bch| {
                par::with_threads(threads, || {
                    bch.iter(|| {
                        buf.copy_from_slice(&xs);
                        ops::exp_slice(&mut buf);
                        black_box(buf[0])
                    })
                })
            });
        }
    }
    group.finish();
}

/// The acceptance GEMM shape across pool widths (packed SIMD dispatch).
/// On this container `nproc` = 1, so t2/t4 time-slice one core — the
/// medians document dispatch overhead, not speedup; rerun on a
/// multi-core host for the scaling numbers.
fn bench_gemm_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_nt_1024x512x512_threads");
    group.sample_size(10);
    let a = mat(1024, 512, 5);
    let b_ = mat(512, 512, 6);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("simd_t{threads}"), |bch| {
            par::with_threads(threads, || {
                bch.iter(|| black_box(gemm::gemm_nt(&a, &b_)))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_gemm_variants,
    bench_gemm_blocked_vs_naive,
    bench_ops_slice,
    bench_gemm_f32,
    bench_ops_slice_f32,
    bench_par_dispatch,
    bench_par_threshold,
    bench_gemm_threads
);
criterion_main!(benches);
