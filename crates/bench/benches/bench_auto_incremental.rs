//! Ablation bench (DESIGN.md): naive Algorithm-1 AUTO sampling (n full
//! forward passes) vs the incremental hidden-state-caching sampler.
//! The two are bit-identical in output; the bench quantifies the
//! `O(n)`-fold work reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use vqmc_nn::{made_hidden_size, Made};
use vqmc_sampler::{AutoSampler, IncrementalAutoSampler, Sampler};

const BATCH: usize = 32;

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("auto_naive_vs_incremental");
    group.sample_size(10);
    for &n in &[50usize, 100, 200] {
        let wf = Made::new(n, made_hidden_size(n), 1);
        group.bench_with_input(BenchmarkId::new("naive", n), &wf, |b, wf| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(AutoSampler::new().sample(wf, BATCH, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &wf, |b, wf| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(IncrementalAutoSampler::new().sample(wf, BATCH, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
