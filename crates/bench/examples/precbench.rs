//! Timing probe: f64 vs f32 coalesced sampler passes at serving shapes.
//!
//! ```sh
//! cargo run --release -p vqmc-bench --example precbench [n] [rows] [h]
//! ```
//!
//! Used to pick the panel shapes in the README's precision table — the
//! f32/f64 ratio is strongly shape-dependent (per-bit RNG/transcendental
//! overhead is precision-blind, and the two arms cross their L1/L2 panel
//! boundaries at different row counts), so rerun this when retuning
//! `HIDDEN_MAJOR_BYTES` or the serving `max_batch` on a new host.

use std::time::Instant;
use vqmc_nn::{Made, MadeF32};
use vqmc_sampler::{BatchSampler, SampleRequest};
use vqmc_tensor::{Precision, SpinBatch, Vector};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(65536);
    let h: usize = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(256);
    let rows: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let made = Made::new(n, h, 1);
    let mut sampler = BatchSampler::new();
    let reqs: Vec<SampleRequest> = (0..rows)
        .map(|i| SampleRequest {
            count: 1,
            seed: 100 + i as u64,
        })
        .collect();
    let mut out = SpinBatch::zeros(rows, n);
    let mut lp = Vector::default();

    let t = Instant::now();
    let m32 = MadeF32::for_sampling(&made);
    println!("for_sampling conversion: {:?} (v{})", t.elapsed(), m32.version());
    drop(m32);

    for prec in [Precision::F64, Precision::F32, Precision::F64, Precision::F32] {
        sampler.set_precision(prec);
        // warm pass (builds caches)
        sampler.sample_requests(&made, &reqs, &mut out, &mut lp);
        let t = Instant::now();
        const PASSES: usize = 5;
        for _ in 0..PASSES {
            sampler.sample_requests(&made, &reqs, &mut out, &mut lp);
        }
        let per = t.elapsed() / PASSES as u32;
        println!(
            "{}: {:?}/pass  ({:.1} rows/s)  lp[0]={:.6}",
            prec.as_str(),
            per,
            rows as f64 / per.as_secs_f64(),
            lp.as_slice()[0]
        );
    }
}
