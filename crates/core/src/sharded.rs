//! Rank-count-invariant multi-process training: the mode behind
//! `vqmc-cli train --ranks N`.
//!
//! The plain data-parallel [`crate::DistributedTrainer`] gives each
//! device its own RNG stream and its own minibatch, so its trajectory
//! depends on the device count — correct, but it can never reproduce
//! the single-process golden trace at `--ranks 2`.  [`ShardedTrainer`]
//! makes the *work* parallel while keeping the *numerics* identical at
//! any world size:
//!
//! 1. **Sampling is replicated.**  Every rank runs the sampler over the
//!    full batch with the single-device RNG stream
//!    (`derive_seed(seed, 0, 0)`) — identical batches everywhere.
//! 2. **Measurement is sharded.**  Local energies are the dominant cost
//!    (`O(n²·bs·h)` for TIM — `n` neighbour evaluations per sample vs
//!    the sampler's one pass); each rank evaluates only its contiguous
//!    row shard.  Per-sample local energies depend only on that
//!    sample's row (the neighbour forward pass is row-independent and
//!    the SIMD arms are proptested bit-identical to the row-sequential
//!    portable kernel), so a shard slice equals the same slice of the
//!    full-batch result — asserted by `shard_slices_match_full_batch`
//!    below.
//! 3. **The shards are allgathered** and reassembled in rank order,
//!    giving every rank the bit-identical full local-energy vector.
//! 4. **Statistics, gradient and update are replicated** — the same
//!    full-batch backprop and optimiser step the single-device
//!    [`crate::Trainer`] performs, in the same order, on the same bits.
//!
//! Net effect: `ShardedTrainer` over any [`Collective`] backend — solo,
//! thread mesh, or the socket mesh of `vqmc-dist` — produces the exact
//! byte sequence of `Trainer` at every iteration, which is what lets
//! the golden trace (-10.555253) be asserted under `--ranks ∈ {1,2,4}`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vqmc_hamiltonian::{local_energies_into, LocalEnergyScratch, SparseRowHamiltonian};
use vqmc_nn::WaveFunction;
use vqmc_optim::{Optimizer, SrScratch, StochasticReconfiguration};
use vqmc_sampler::{SampleOutput, Sampler};
use vqmc_tensor::{Matrix, SpinBatch, Vector, Workspace};

use crate::backend::{Collective, CollectiveError};
use crate::estimator::{energy_gradient_into, EnergyStats};
use crate::trainer::{IterationRecord, OptimizerChoice, TrainerConfig, TrainingTrace};

/// Contiguous row shard of a `total`-row batch owned by `rank`: the
/// first `total % world` ranks take one extra row.  Shards tile the
/// batch in rank order, which is the reassembly order after the
/// allgather.
pub fn shard_bounds(total: usize, world: usize, rank: usize) -> (usize, usize) {
    assert!(rank < world, "rank {rank} out of world {world}");
    let base = total / world;
    let extra = total % world;
    let lo = rank * base + rank.min(extra);
    let hi = lo + base + usize::from(rank < extra);
    (lo, hi)
}

/// Reusable buffers (the sharded analogue of `TrainerScratch`).
#[derive(Debug, Default)]
struct ShardedScratch {
    ws: Workspace,
    sample_out: SampleOutput,
    /// This rank's rows of the sampled batch.
    shard_batch: SpinBatch,
    /// This rank's slice of `logψ`.
    shard_log_psi: Vector,
    /// Local energies of the shard.
    shard_local: Vector,
    /// Reassembled full-batch local energies.
    local: Vector,
    le: LocalEnergyScratch,
    weights: Vector,
    grad: Vector,
    params: Vector,
    o_rows: Matrix,
    sr: SrScratch,
    direction: Vector,
}

/// The multi-rank trainer with single-device numerics (see module
/// docs).  One instance per rank; all ranks must be constructed with
/// identical `(wf, sampler, config)`.
pub struct ShardedTrainer<W, S> {
    wf: W,
    sampler: S,
    config: TrainerConfig,
    rng: StdRng,
    scratch: ShardedScratch,
}

impl<W, S> ShardedTrainer<W, S>
where
    W: WaveFunction,
    S: Sampler<W>,
{
    /// Creates one rank's trainer.  The RNG seed is the **single-device
    /// stream** (`derive_seed(seed, 0, 0)`), not a per-rank stream —
    /// replicated sampling is the whole point.
    pub fn new(wf: W, sampler: S, config: TrainerConfig) -> Self {
        let rng = StdRng::seed_from_u64(crate::derive_seed(config.seed, 0, 0));
        ShardedTrainer {
            wf,
            sampler,
            config,
            rng,
            scratch: ShardedScratch::default(),
        }
    }

    /// Read access to the (current) wavefunction.
    pub fn wavefunction(&self) -> &W {
        &self.wf
    }

    /// Consumes the trainer, returning the trained wavefunction.
    pub fn into_wavefunction(self) -> W {
        self.wf
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Builds the configured base optimiser (same mapping as
    /// [`crate::Trainer::make_optimizer`]).
    pub fn make_optimizer(&self) -> Box<dyn Optimizer> {
        match self.config.optimizer {
            OptimizerChoice::Sgd { lr } => Box::new(vqmc_optim::Sgd::new(lr)),
            OptimizerChoice::Adam { lr } => Box::new(vqmc_optim::Adam::new(lr)),
            OptimizerChoice::SgdSr { lr, .. } => Box::new(vqmc_optim::Sgd::new(lr)),
        }
    }

    /// One training iteration over the collective.  On any collective
    /// error the model parameters are untouched (the failure happens
    /// strictly before the optimiser step), so a surviving rank can
    /// report a clean [`CollectiveError`] without having applied a
    /// partial update.
    pub fn step(
        &mut self,
        h: &dyn SparseRowHamiltonian,
        coll: &mut dyn Collective,
        opt: &mut dyn Optimizer,
    ) -> Result<IterationRecord, CollectiveError> {
        let start = Instant::now();
        let bs = self.config.batch_size;
        let world = coll.world();
        let (lo, hi) = shard_bounds(bs, world, coll.rank());
        let ShardedScratch {
            ws,
            sample_out,
            shard_batch,
            shard_log_psi,
            shard_local,
            local,
            le,
            weights,
            grad,
            params,
            o_rows,
            sr,
            direction,
        } = &mut self.scratch;

        // 1. Replicated sampling: the full batch, the Trainer's RNG.
        self.sampler
            .sample_into(&self.wf, bs, &mut self.rng, sample_out);

        // 2. Sharded measurement.
        let wf = &self.wf;
        let mut eval = |b: &SpinBatch, out: &mut Vector| wf.log_psi_into(b, ws, out);
        if hi > lo {
            sample_out.batch.copy_rows_into(lo..hi, shard_batch);
            shard_log_psi.resize(hi - lo);
            shard_log_psi
                .as_mut_slice()
                .copy_from_slice(&sample_out.log_psi.as_slice()[lo..hi]);
            local_energies_into(
                h,
                shard_batch,
                shard_log_psi,
                &mut eval,
                self.config.local_energy,
                le,
                shard_local,
            );
        } else {
            // More ranks than samples: this rank measures nothing but
            // still participates in the collective.
            shard_local.resize(0);
        }

        // 3. Allgather the shards; reassemble in rank order.
        let gathered = coll.allgather(shard_local)?;
        local.resize(bs);
        let mut offset = 0;
        for (r, part) in gathered.iter().enumerate() {
            let (rlo, rhi) = shard_bounds(bs, world, r);
            if part.len() != rhi - rlo {
                return Err(CollectiveError::Protocol(format!(
                    "rank {r} gathered {} local energies, expected {}",
                    part.len(),
                    rhi - rlo
                )));
            }
            local.as_mut_slice()[offset..offset + part.len()]
                .copy_from_slice(part.as_slice());
            offset += part.len();
        }

        // 4. Replicated statistics, gradient and update — verbatim the
        // single-device Trainer tail, on bit-identical inputs.
        let stats = EnergyStats::from_local_energies(local);
        energy_gradient_into(&self.wf, &sample_out.batch, local, stats.mean, ws, weights, grad);
        let update: &Vector = match self.config.optimizer {
            OptimizerChoice::SgdSr { sr: sr_cfg, .. } => {
                self.wf
                    .per_sample_grads_into(&sample_out.batch, ws, o_rows);
                StochasticReconfiguration::new(sr_cfg)
                    .precondition_into(o_rows, grad, sr, direction);
                direction
            }
            _ => grad,
        };
        self.wf.params_into(params);
        opt.step(params, update);
        self.wf.set_params(params);

        Ok(IterationRecord {
            energy: stats.mean,
            std_dev: stats.std_dev,
            min_energy: stats.min,
            wall_secs: start.elapsed().as_secs_f64(),
            sample_stats: sample_out.stats,
        })
    }

    /// Runs the configured number of iterations.  Stops at the first
    /// collective failure with no partial update applied.
    pub fn run(
        &mut self,
        h: &dyn SparseRowHamiltonian,
        coll: &mut dyn Collective,
    ) -> Result<TrainingTrace, CollectiveError> {
        let mut opt = self.make_optimizer();
        let start = Instant::now();
        let mut records = Vec::with_capacity(self.config.iterations);
        for _ in 0..self.config.iterations {
            records.push(self.step(h, coll, opt.as_mut())?);
        }
        Ok(TrainingTrace {
            records,
            total_secs: start.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{SoloCollective, ThreadMesh};
    use crate::trainer::Trainer;
    use std::time::Duration;
    use vqmc_hamiltonian::{LocalEnergyConfig, TransverseFieldIsing};
    use vqmc_nn::Made;
    use vqmc_sampler::IncrementalAutoSampler;

    fn config(iters: usize, bs: usize, seed: u64) -> TrainerConfig {
        TrainerConfig {
            iterations: iters,
            batch_size: bs,
            optimizer: OptimizerChoice::paper_default(),
            local_energy: LocalEnergyConfig::default(),
            seed,
        }
    }

    #[test]
    fn shard_bounds_tile_the_batch() {
        for &(total, world) in &[(128usize, 1usize), (128, 2), (128, 3), (7, 4), (3, 5), (0, 2)] {
            let mut next = 0;
            for rank in 0..world {
                let (lo, hi) = shard_bounds(total, world, rank);
                assert_eq!(lo, next, "total {total}, world {world}, rank {rank}");
                assert!(hi >= lo);
                next = hi;
            }
            assert_eq!(next, total, "shards must cover the batch exactly");
            // Balanced: sizes differ by at most one row.
            let sizes: Vec<usize> = (0..world)
                .map(|r| {
                    let (lo, hi) = shard_bounds(total, world, r);
                    hi - lo
                })
                .collect();
            let (min, max) = (
                *sizes.iter().min().unwrap(),
                *sizes.iter().max().unwrap(),
            );
            assert!(max - min <= 1, "{sizes:?}");
        }
    }

    /// The design-carrying property: per-sample local energies are
    /// invariant to batch composition, so a shard's result equals the
    /// same slice of the full-batch result, bit for bit.
    #[test]
    fn shard_slices_match_full_batch() {
        let n = 8;
        let bs = 37;
        let h = TransverseFieldIsing::random(n, 5);
        let wf = Made::new(n, 12, 9);
        let mut rng = StdRng::seed_from_u64(1234);
        let mut sampler = IncrementalAutoSampler::new();
        let mut out = SampleOutput::default();
        sampler.sample_into(&wf, bs, &mut rng, &mut out);

        let mut ws = Workspace::default();
        let mut le = LocalEnergyScratch::default();
        let mut full = Vector::default();
        let mut eval = |b: &SpinBatch, dst: &mut Vector| wf.log_psi_into(b, &mut ws, dst);
        local_energies_into(
            &h,
            &out.batch,
            &out.log_psi,
            &mut eval,
            LocalEnergyConfig::default(),
            &mut le,
            &mut full,
        );

        for world in [2usize, 3, 5] {
            for rank in 0..world {
                let (lo, hi) = shard_bounds(bs, world, rank);
                let mut shard_batch = SpinBatch::default();
                out.batch.copy_rows_into(lo..hi, &mut shard_batch);
                let mut shard_lp = Vector::default();
                shard_lp.resize(hi - lo);
                shard_lp
                    .as_mut_slice()
                    .copy_from_slice(&out.log_psi.as_slice()[lo..hi]);
                let mut ws2 = Workspace::default();
                let mut le2 = LocalEnergyScratch::default();
                let mut shard = Vector::default();
                let mut eval2 =
                    |b: &SpinBatch, dst: &mut Vector| wf.log_psi_into(b, &mut ws2, dst);
                local_energies_into(
                    &h,
                    &shard_batch,
                    &shard_lp,
                    &mut eval2,
                    LocalEnergyConfig::default(),
                    &mut le2,
                    &mut shard,
                );
                assert_eq!(
                    shard.as_slice(),
                    &full.as_slice()[lo..hi],
                    "world {world}, rank {rank}: shard not bit-identical to full-batch slice"
                );
            }
        }
    }

    #[test]
    fn solo_matches_plain_trainer_bitwise() {
        let n = 7;
        let h = TransverseFieldIsing::random(n, 17);
        let cfg = config(10, 48, 3);

        let mut plain = Trainer::new(Made::new(n, 10, 4), IncrementalAutoSampler::new(), cfg);
        let reference = plain.run(&h);

        let mut sharded =
            ShardedTrainer::new(Made::new(n, 10, 4), IncrementalAutoSampler::new(), cfg);
        let trace = sharded.run(&h, &mut SoloCollective).unwrap();

        for (i, (a, b)) in reference.records.iter().zip(&trace.records).enumerate() {
            assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "iter {i} energy");
            assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits(), "iter {i} std");
            assert_eq!(a.min_energy.to_bits(), b.min_energy.to_bits(), "iter {i} min");
        }
        assert_eq!(
            plain.into_wavefunction().params().as_slice(),
            sharded.into_wavefunction().params().as_slice(),
            "final parameters diverged"
        );
    }

    #[test]
    fn thread_mesh_matches_plain_trainer_bitwise_any_world() {
        let n = 7;
        let h = TransverseFieldIsing::random(n, 17);
        let cfg = config(6, 50, 3);

        let mut plain = Trainer::new(Made::new(n, 10, 4), IncrementalAutoSampler::new(), cfg);
        let reference = plain.run(&h);
        let ref_params = plain.into_wavefunction().params();

        // 3 ranks exercises the non-power-of-two tree and a ragged
        // shard split (50 = 17 + 17 + 16).
        for world in [2usize, 3, 4] {
            let meshes = ThreadMesh::split(world, Duration::from_secs(30));
            let h = h.clone();
            let handles: Vec<_> = meshes
                .into_iter()
                .map(|mut mesh| {
                    let h = h.clone();
                    std::thread::spawn(move || {
                        let mut t = ShardedTrainer::new(
                            Made::new(n, 10, 4),
                            IncrementalAutoSampler::new(),
                            cfg,
                        );
                        let trace = t.run(&h, &mut mesh).unwrap();
                        (trace, t.into_wavefunction().params())
                    })
                })
                .collect();
            for (rank, handle) in handles.into_iter().enumerate() {
                let (trace, params) = handle.join().unwrap();
                for (i, (a, b)) in reference.records.iter().zip(&trace.records).enumerate()
                {
                    assert_eq!(
                        a.energy.to_bits(),
                        b.energy.to_bits(),
                        "world {world}, rank {rank}, iter {i}"
                    );
                }
                assert_eq!(
                    ref_params.as_slice(),
                    params.as_slice(),
                    "world {world}, rank {rank}: parameters diverged"
                );
            }
        }
    }
}
