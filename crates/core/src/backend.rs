//! The collective-communication seam behind multi-rank training.
//!
//! Everything distributed in this workspace reduces to two collectives:
//! an **allreduce-mean** (gradients, scalar energy statistics) and an
//! **allgather** (local-energy shards, replica-consistency probes).
//! [`Collective`] abstracts over *where the other ranks live*:
//!
//! * [`SoloCollective`] — world size 1; the degenerate case, exact by
//!   construction (it literally runs the one-vector tree).
//! * [`ThreadMesh`] — ranks are threads in this process meeting at a
//!   mutex+condvar rendezvous; the combine is a verbatim call to
//!   [`vqmc_cluster::allreduce_mean_tree`], making this backend the
//!   **oracle** the socket mesh (`vqmc-dist`) is property-tested
//!   against.
//! * `vqmc_dist::Mesh` — ranks are OS processes joined by TCP sockets;
//!   it re-implements the same binomial-tree schedule over the wire and
//!   must (and is tested to) produce bit-identical results.
//!
//! The contract every implementation upholds: for rank-ordered inputs
//! `v_0 … v_{L-1}`, `allreduce_mean` returns **exactly**
//! `allreduce_mean_tree(vec![v_0, …, v_{L-1}], topo).0` — same pairwise
//! combination order, true division by `L` — so replicas updated from
//! the result stay bit-for-bit equal, whatever the transport.

use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use vqmc_cluster::{allreduce_mean_tree, Topology};
use vqmc_tensor::Vector;

/// Why a collective failed.  All errors are sticky: once a mesh
/// returns one, every later collective on it fails the same way, so a
/// caller can never apply a half-reduced gradient.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CollectiveError {
    /// A peer hung up (EOF / reset) while the run still needed it.
    RankLost {
        /// The rank that disappeared.
        rank: usize,
    },
    /// The per-collective deadline expired while waiting on a peer.
    Timeout {
        /// The rank being waited on, when known.
        rank: Option<usize>,
    },
    /// Mesh formation failed (connect backoff exhausted, bad hello…).
    Handshake(String),
    /// The peer spoke, but not the expected frame (desync, bad tag).
    Protocol(String),
    /// An I/O error outside the cases above.
    Io(String),
}

impl fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveError::RankLost { rank } => write!(f, "rank {rank} lost mid-collective"),
            CollectiveError::Timeout { rank: Some(r) } => {
                write!(f, "collective timed out waiting on rank {r}")
            }
            CollectiveError::Timeout { rank: None } => write!(f, "collective timed out"),
            CollectiveError::Handshake(m) => write!(f, "mesh handshake failed: {m}"),
            CollectiveError::Protocol(m) => write!(f, "mesh protocol violation: {m}"),
            CollectiveError::Io(m) => write!(f, "mesh i/o error: {m}"),
        }
    }
}

impl std::error::Error for CollectiveError {}

/// A rank's handle on its communicator.
pub trait Collective: Send {
    /// This rank's index in `0..world()`.
    fn rank(&self) -> usize;

    /// Number of participating ranks `L`.
    fn world(&self) -> usize;

    /// Tree allreduce-mean: every rank contributes one vector, every
    /// rank receives the bitwise-identical mean, combined in the exact
    /// pairwise order of [`vqmc_cluster::allreduce_mean_tree`].
    fn allreduce_mean(&mut self, v: Vector) -> Result<Vector, CollectiveError>;

    /// Allgather: every rank contributes one vector (lengths may differ
    /// across ranks), every rank receives all `L` vectors in rank order.
    fn allgather(&mut self, v: &Vector) -> Result<Vec<Vector>, CollectiveError>;
}

/// World-size-1 communicator: both collectives are identities (the
/// allreduce still runs the one-vector tree so that the `x / 1.0`
/// division happens exactly as it would on any other backend).
#[derive(Debug, Default)]
pub struct SoloCollective;

impl Collective for SoloCollective {
    fn rank(&self) -> usize {
        0
    }

    fn world(&self) -> usize {
        1
    }

    fn allreduce_mean(&mut self, v: Vector) -> Result<Vector, CollectiveError> {
        Ok(allreduce_mean_tree(vec![v], &Topology::new(1, 1)).0)
    }

    fn allgather(&mut self, v: &Vector) -> Result<Vec<Vector>, CollectiveError> {
        Ok(vec![v.clone()])
    }
}

/// What one rendezvous round computed, shared to every waiting rank.
enum RoundOutput {
    Mean(Vector),
    Gathered(Vec<Vector>),
}

struct RoundState {
    /// Index of the round currently accepting deposits.
    depositing_round: u64,
    /// One slot per rank; `Some` once that rank has deposited.
    slots: Vec<Option<Vector>>,
    deposited: usize,
    /// Op tag (0 = allreduce, 1 = allgather) of the first depositor —
    /// later depositors must match or the program is not SPMD.
    op: u8,
    /// Finished round's output, keyed by its round index.
    result: Option<(u64, Arc<RoundOutput>)>,
    taken: usize,
    /// Sticky failure: set once, fails every current and future waiter.
    failed: Option<CollectiveError>,
}

struct MeshInner {
    world: usize,
    timeout: Duration,
    state: Mutex<RoundState>,
    cv: Condvar,
}

/// In-process rendezvous communicator: `world` threads each hold one
/// [`ThreadMesh`]; each collective blocks until every rank has
/// deposited, then the **last depositor** combines all inputs with a
/// single verbatim [`allreduce_mean_tree`] call (unit topology — the
/// cost model is irrelevant here, the combination order is everything)
/// and every rank picks up the shared result.
///
/// This is the oracle backend: it *is* the PR 3 tree, just fed from
/// threads, so any transport claiming bit-identity can be diffed
/// against it directly.
pub struct ThreadMesh {
    rank: usize,
    inner: Arc<MeshInner>,
}

impl ThreadMesh {
    /// Creates the `world` rank handles for one communicator.  Hand one
    /// to each participating thread.
    pub fn split(world: usize, timeout: Duration) -> Vec<ThreadMesh> {
        assert!(world >= 1, "empty mesh");
        let inner = Arc::new(MeshInner {
            world,
            timeout,
            state: Mutex::new(RoundState {
                depositing_round: 0,
                slots: (0..world).map(|_| None).collect(),
                deposited: 0,
                op: 0,
                result: None,
                taken: 0,
                failed: None,
            }),
            cv: Condvar::new(),
        });
        (0..world)
            .map(|rank| ThreadMesh {
                rank,
                inner: Arc::clone(&inner),
            })
            .collect()
    }

    fn round(&self, op: u8, v: Vector) -> Result<Arc<RoundOutput>, CollectiveError> {
        let inner = &*self.inner;
        let deadline = Instant::now() + inner.timeout;
        let mut st = inner.state.lock().expect("mesh lock poisoned");
        if let Some(e) = &st.failed {
            return Err(e.clone());
        }
        debug_assert!(st.slots[self.rank].is_none(), "rank deposited twice");
        let my_round = st.depositing_round;
        if st.deposited == 0 {
            st.op = op;
        } else if st.op != op {
            let e = CollectiveError::Protocol(format!(
                "rank {} started op {} while round ran op {}",
                self.rank, op, st.op
            ));
            st.failed = Some(e.clone());
            inner.cv.notify_all();
            return Err(e);
        }
        st.slots[self.rank] = Some(v);
        st.deposited += 1;
        if st.deposited == inner.world {
            // Last depositor combines; everyone else is (or will be)
            // waiting on the result.
            let vectors: Vec<Vector> = st
                .slots
                .iter_mut()
                .map(|s| s.take().expect("missing deposit"))
                .collect();
            let output = match op {
                0 => RoundOutput::Mean(
                    allreduce_mean_tree(vectors, &Topology::new(1, inner.world)).0,
                ),
                _ => RoundOutput::Gathered(vectors),
            };
            st.deposited = 0;
            st.depositing_round += 1;
            st.result = Some((my_round, Arc::new(output)));
            st.taken = 0;
            inner.cv.notify_all();
        }
        // Wait for this round's result.
        loop {
            if let Some(e) = &st.failed {
                return Err(e.clone());
            }
            if let Some((round, out)) = &st.result {
                if *round == my_round {
                    let out = Arc::clone(out);
                    st.taken += 1;
                    if st.taken == inner.world {
                        st.result = None;
                    }
                    inner.cv.notify_all();
                    return Ok(out);
                }
            }
            let now = Instant::now();
            if now >= deadline {
                let e = CollectiveError::Timeout { rank: None };
                st.failed = Some(e.clone());
                inner.cv.notify_all();
                return Err(e);
            }
            let (guard, _) = inner
                .cv
                .wait_timeout(st, deadline - now)
                .expect("mesh lock poisoned");
            st = guard;
        }
    }
}

impl Collective for ThreadMesh {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world(&self) -> usize {
        self.inner.world
    }

    fn allreduce_mean(&mut self, v: Vector) -> Result<Vector, CollectiveError> {
        match &*self.round(0, v)? {
            RoundOutput::Mean(m) => Ok(m.clone()),
            RoundOutput::Gathered(_) => {
                Err(CollectiveError::Protocol("allreduce got gather result".into()))
            }
        }
    }

    fn allgather(&mut self, v: &Vector) -> Result<Vec<Vector>, CollectiveError> {
        match &*self.round(1, v.clone())? {
            RoundOutput::Gathered(g) => Ok(g.clone()),
            RoundOutput::Mean(_) => {
                Err(CollectiveError::Protocol("allgather got reduce result".into()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_world<F, T>(world: usize, f: F) -> Vec<T>
    where
        F: Fn(ThreadMesh) -> T + Send + Sync + Clone + 'static,
        T: Send + 'static,
    {
        let meshes = ThreadMesh::split(world, Duration::from_secs(5));
        let handles: Vec<_> = meshes
            .into_iter()
            .map(|m| {
                let f = f.clone();
                thread::spawn(move || f(m))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn solo_allreduce_matches_tree() {
        let v = Vector(vec![1.0, -3.5, 7.0]);
        let expect = allreduce_mean_tree(vec![v.clone()], &Topology::new(1, 1)).0;
        let got = SoloCollective.allreduce_mean(v).unwrap();
        assert_eq!(got.as_slice(), expect.as_slice());
    }

    #[test]
    fn thread_mesh_allreduce_matches_oracle_all_world_sizes() {
        for world in 1..=5usize {
            let inputs: Vec<Vector> = (0..world)
                .map(|r| Vector::from_fn(9, |i| ((r * 31 + i) as f64).sin()))
                .collect();
            let expect =
                allreduce_mean_tree(inputs.clone(), &Topology::new(1, world)).0;
            let results = run_world(world, move |mut mesh| {
                let v = inputs[mesh.rank()].clone();
                mesh.allreduce_mean(v).unwrap()
            });
            for (r, got) in results.iter().enumerate() {
                assert_eq!(
                    got.as_slice(),
                    expect.as_slice(),
                    "world {world}, rank {r} not bit-identical to the tree"
                );
            }
        }
    }

    #[test]
    fn thread_mesh_allgather_rank_order_and_ragged_lengths() {
        let world = 3;
        let results = run_world(world, |mut mesh| {
            let r = mesh.rank();
            let v = Vector::from_fn(r + 1, |i| (r * 10 + i) as f64);
            mesh.allgather(&v).unwrap()
        });
        for gathered in results {
            assert_eq!(gathered.len(), world);
            for (r, v) in gathered.iter().enumerate() {
                assert_eq!(v.len(), r + 1);
                assert_eq!(v[0], (r * 10) as f64);
            }
        }
    }

    #[test]
    fn thread_mesh_back_to_back_rounds_do_not_cross() {
        let world = 4;
        let results = run_world(world, |mut mesh| {
            let mut out = Vec::new();
            for round in 0..20u64 {
                let v = Vector(vec![(mesh.rank() as f64) + round as f64]);
                out.push(mesh.allreduce_mean(v).unwrap()[0]);
            }
            out
        });
        for r in &results {
            assert_eq!(r, &results[0]);
        }
        for (round, &x) in results[0].iter().enumerate() {
            // mean of rank + round over ranks 0..4 = 1.5 + round
            assert_eq!(x, 1.5 + round as f64);
        }
    }

    #[test]
    fn missing_rank_times_out_not_hangs() {
        let mut meshes = ThreadMesh::split(2, Duration::from_millis(100));
        let mut rank0 = meshes.remove(0);
        // Rank 1 never deposits; keep its handle alive so the mesh
        // cannot tell it is gone — only the deadline saves us.
        let start = Instant::now();
        let err = rank0.allreduce_mean(Vector(vec![1.0])).unwrap_err();
        assert!(matches!(err, CollectiveError::Timeout { .. }), "{err}");
        assert!(start.elapsed() < Duration::from_secs(2), "hung");
        // Sticky: the next call fails immediately.
        let err2 = rank0.allreduce_mean(Vector(vec![1.0])).unwrap_err();
        assert!(matches!(err2, CollectiveError::Timeout { .. }));
    }

    #[test]
    fn mismatched_ops_detected() {
        let meshes = ThreadMesh::split(2, Duration::from_secs(2));
        let handles: Vec<_> = meshes
            .into_iter()
            .map(|mut m| {
                thread::spawn(move || {
                    if m.rank() == 0 {
                        m.allreduce_mean(Vector(vec![0.0])).map(|_| ())
                    } else {
                        m.allgather(&Vector(vec![0.0])).map(|_| ())
                    }
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(
            results
                .iter()
                .any(|r| matches!(r, Err(CollectiveError::Protocol(_)))),
            "{results:?}"
        );
    }
}
