//! Data-parallel VQMC on the virtual cluster (paper §4, "Sampling
//! Parallelization").
//!
//! Every device holds an identical model replica, draws its own
//! `mbs` samples from its own RNG stream, measures local energies, and
//! computes a *partial* energy gradient against the **global** energy
//! baseline; the partials are combined by the deterministic tree
//! allreduce and every device applies the identical averaged gradient —
//! so the replicas stay bit-for-bit equal, which
//! [`DistributedTrainer::assert_replicas_consistent`] checks after every
//! iteration in debug builds (and tests check explicitly).
//!
//! Two collectives per iteration:
//!
//! 1. scalar energy statistics (Σl, Σl², min — 3 doubles) to form the
//!    global baseline `L̄` (an exact-global-batch refinement of the
//!    paper's "average the local gradients"; both are unbiased, the
//!    global baseline just removes an `O(1/mbs)` baseline-noise term,
//!    which matters at `mbs = 4`);
//! 2. the `d`-double gradient — the `O(h·n)` communication of Eq. 15.
//!
//! Timing: compute is charged to the modelled clock from the flop
//! counts in [`crate::cost`]; the allreduce charges per tree hop.  See
//! `vqmc-cluster` docs for why modelled time carries the weak-scaling
//! claims.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vqmc_cluster::Cluster;
use vqmc_hamiltonian::{local_energies_into, LocalEnergyConfig, LocalEnergyScratch, SparseRowHamiltonian};
use vqmc_nn::WaveFunction;
use vqmc_optim::Optimizer;
use vqmc_sampler::{SampleOutput, Sampler};
use vqmc_tensor::{SpinBatch, Vector, Workspace};

use crate::cost;
use crate::trainer::{IterationRecord, OptimizerChoice, TrainingTrace};

/// Configuration for a distributed run.
#[derive(Clone, Copy, Debug)]
pub struct DistributedConfig {
    /// Training iterations.
    pub iterations: usize,
    /// Per-device minibatch `mbs` (effective batch = `mbs × L`).
    pub minibatch_per_device: usize,
    /// Optimiser (the paper's scaling experiments use Adam).
    pub optimizer: OptimizerChoice,
    /// Local-energy chunking.
    pub local_energy: LocalEnergyConfig,
    /// Master seed; device `r` streams from `derive_seed(seed, r, ·)`.
    pub seed: u64,
    /// Hidden width `h` used for flop accounting.
    pub cost_hidden: usize,
    /// Off-diagonal connections per row for flop accounting (TIM: `n`,
    /// Max-Cut: 0).
    pub cost_offdiag: usize,
}

/// Everything one device owns: its model replica, RNG stream, optimiser
/// state, its **own sampler instance** (samplers carry mutable scratch —
/// activation workspaces, cached weight transposes — so they cannot be
/// shared across device threads), and the per-device buffers that make
/// the steady-state iteration allocation-free on every device.
struct DeviceState<W, S> {
    wf: W,
    rng: StdRng,
    opt: Box<dyn Optimizer>,
    sampler: S,
    /// Sampled batch + logψ, reused across iterations.
    out: SampleOutput,
    /// Local energies `l(x)` per sample.
    local: Vector,
    /// Local-energy engine scratch.
    le: LocalEnergyScratch,
    /// Scratch pool for wavefunction forward/backward passes.
    ws: Workspace,
    /// Baseline-subtracted per-sample weights.
    weights: Vector,
    /// Parameter vector round-tripped through the optimiser.
    params: Vector,
}

/// Data-parallel trainer over a [`Cluster`].
pub struct DistributedTrainer<W, S> {
    cluster: Cluster,
    states: Vec<DeviceState<W, S>>,
    config: DistributedConfig,
}

impl<W, S> DistributedTrainer<W, S>
where
    W: WaveFunction + Clone,
    S: Sampler<W> + Clone,
{
    /// Builds the trainer: `wf` is replicated onto every device; each
    /// device gets an independent RNG stream, its own optimiser
    /// instance and its own sampler clone (identical construction ⇒
    /// identical trajectories; sampler scratch is per-device).
    pub fn new(cluster: Cluster, wf: W, sampler: S, config: DistributedConfig) -> Self {
        let l = cluster.num_devices();
        let states = (0..l)
            .map(|rank| DeviceState {
                wf: wf.clone(),
                rng: StdRng::seed_from_u64(crate::derive_seed(config.seed, rank as u64, 1)),
                opt: make_optimizer(config.optimizer),
                sampler: sampler.clone(),
                out: SampleOutput::default(),
                local: Vector::default(),
                le: LocalEnergyScratch::default(),
                ws: Workspace::default(),
                weights: Vector::default(),
                params: Vector::default(),
            })
            .collect();
        DistributedTrainer {
            cluster,
            states,
            config,
        }
    }

    /// Number of devices `L`.
    pub fn num_devices(&self) -> usize {
        self.cluster.num_devices()
    }

    /// Effective global batch size `mbs × L`.
    pub fn effective_batch_size(&self) -> usize {
        self.config.minibatch_per_device * self.num_devices()
    }

    /// The cluster (for clock readout).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Asserts every replica holds bit-identical parameters.
    pub fn assert_replicas_consistent(&self) {
        let reference = self.states[0].wf.params();
        for (rank, st) in self.states.iter().enumerate().skip(1) {
            let p = st.wf.params();
            assert_eq!(
                reference.as_slice(),
                p.as_slice(),
                "replica {rank} diverged from rank 0"
            );
        }
    }

    /// One distributed training iteration.
    pub fn step(&mut self, h: &dyn SparseRowHamiltonian) -> IterationRecord {
        let start = std::time::Instant::now();
        let mbs = self.config.minibatch_per_device;
        let le_cfg = self.config.local_energy;
        let n = h.num_spins();
        let hid = self.config.cost_hidden;
        let offd = self.config.cost_offdiag;

        // Phase 1 (parallel): sample + measure; keep batch on-device.
        let stats: Vec<(f64, f64, f64, vqmc_sampler::SampleStats)> =
            self.cluster.run_round_mut(&mut self.states, |_rank, st| {
                let DeviceState {
                    wf,
                    rng,
                    sampler,
                    out,
                    local,
                    le,
                    ws,
                    ..
                } = st;
                sampler.sample_into(wf, mbs, rng, out);
                let wf_ref: &W = wf;
                let mut eval = |b: &SpinBatch, dst: &mut Vector| wf_ref.log_psi_into(b, ws, dst);
                local_energies_into(h, &out.batch, &out.log_psi, &mut eval, le_cfg, le, local);
                let sum: f64 = local.sum();
                let sum_sq: f64 = local.iter().map(|l| l * l).sum();
                let min = local.min();
                (sum, sum_sq, min, out.stats)
            });
        // Charge the per-device compute for phase 1: streamed flops plus
        // the launch overhead of every batched pass (sampling passes as
        // reported by the sampler, +2 for the measurement's own-batch
        // and neighbour evaluations).
        let phase1_flops = cost::auto_sampling_flops(mbs, n, hid)
            + cost::measurement_flops(mbs, n, hid, offd);
        self.cluster.charge_flops_all(phase1_flops);
        self.cluster
            .charge_passes_all(stats[0].3.forward_passes + 2);

        // Collective 1: scalar statistics (3 doubles — negligible bytes,
        // still a tree traversal's worth of latency).
        let scalar_vectors: Vec<Vector> = stats
            .iter()
            .map(|&(sum, sum_sq, min, _)| Vector(vec![sum, sum_sq, min]))
            .collect();
        let scalar_mean = self.cluster.allreduce_mean(scalar_vectors);
        let bs_global = (mbs * self.num_devices()) as f64;
        let energy = scalar_mean[0] * self.num_devices() as f64 / bs_global;
        let mean_sq = scalar_mean[1] * self.num_devices() as f64 / bs_global;
        let variance = (mean_sq - energy * energy).max(0.0);
        let min_energy = stats
            .iter()
            .map(|s| s.2)
            .fold(f64::INFINITY, f64::min);

        // Phase 2 (parallel): partial gradients against the global
        // baseline, normalised so that the allreduce MEAN of partials is
        // the global gradient.
        let grads: Vec<Vector> = self.cluster.run_round_mut(&mut self.states, |_rank, st| {
            let DeviceState {
                wf,
                out,
                local,
                ws,
                weights,
                ..
            } = st;
            weights.resize(mbs);
            for (w, &l) in weights.iter_mut().zip(local.iter()) {
                *w = 2.0 * (l - energy) / mbs as f64;
            }
            let mut grad = Vector::default();
            wf.weighted_log_psi_grad_into(&out.batch, weights, ws, &mut grad);
            grad
        });
        self.cluster
            .charge_flops_all(cost::backward_flops(mbs, n, hid));
        self.cluster.charge_passes_all(1);

        // Collective 2: the gradient allreduce (the O(h·n) of Eq. 15).
        let avg_grad = self.cluster.allreduce_mean(grads);

        // Phase 3 (parallel): identical local updates.
        let grad_ref = &avg_grad;
        self.cluster.run_round_mut(&mut self.states, |_rank, st| {
            let DeviceState { wf, opt, params, .. } = st;
            wf.params_into(params);
            opt.step(params, grad_ref);
            wf.set_params(params);
        });
        self.cluster.sync();

        if cfg!(debug_assertions) {
            self.assert_replicas_consistent();
        }

        let agg_stats = stats.iter().fold(
            vqmc_sampler::SampleStats::default(),
            |mut acc, &(_, _, _, s)| {
                acc.forward_passes += s.forward_passes;
                acc.configurations_evaluated += s.configurations_evaluated;
                acc.proposals += s.proposals;
                acc.accepted += s.accepted;
                acc
            },
        );
        IterationRecord {
            energy,
            std_dev: variance.sqrt(),
            min_energy,
            wall_secs: start.elapsed().as_secs_f64(),
            sample_stats: agg_stats,
        }
    }

    /// Runs the configured number of iterations.
    pub fn run(&mut self, h: &dyn SparseRowHamiltonian) -> TrainingTrace {
        let start = std::time::Instant::now();
        let mut records = Vec::with_capacity(self.config.iterations);
        for _ in 0..self.config.iterations {
            records.push(self.step(h));
        }
        TrainingTrace {
            records,
            total_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// A sampling-only round (the measurement of the paper's Figure 3):
    /// every device draws `mbs` samples; only sampling flops are
    /// charged.  Returns the modelled seconds the round took.
    pub fn sampling_round(&mut self) -> f64 {
        let before = self.cluster.elapsed_modelled();
        let mbs = self.config.minibatch_per_device;
        let hid = self.config.cost_hidden;
        let stats: Vec<(usize, usize)> =
            self.cluster.run_round_mut(&mut self.states, |_rank, st| {
                let DeviceState {
                    wf, rng, sampler, out, ..
                } = st;
                sampler.sample_into(wf, mbs, rng, out);
                (out.batch.num_spins(), out.stats.forward_passes)
            });
        let (n, passes) = stats[0];
        self.cluster
            .charge_flops_all(cost::auto_sampling_flops(mbs, n, hid));
        self.cluster.charge_passes_all(passes);
        self.cluster.sync();
        self.cluster.elapsed_modelled() - before
    }

    /// Total modelled seconds elapsed on the cluster.
    pub fn elapsed_modelled(&self) -> f64 {
        self.cluster.elapsed_modelled()
    }
}

fn make_optimizer(choice: OptimizerChoice) -> Box<dyn Optimizer> {
    match choice {
        OptimizerChoice::Sgd { lr } => Box::new(vqmc_optim::Sgd::new(lr)),
        OptimizerChoice::Adam { lr } => Box::new(vqmc_optim::Adam::new(lr)),
        // SR in the distributed path would need the per-sample rows of
        // the *global* batch; the paper's scaling experiments use Adam,
        // and SR stays a single-device feature (Table 2).
        OptimizerChoice::SgdSr { lr, .. } => Box::new(vqmc_optim::Sgd::new(lr)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_cluster::{DeviceSpec, Topology};
    use vqmc_hamiltonian::TransverseFieldIsing;
    use vqmc_nn::Made;
    use vqmc_sampler::AutoSampler;

    fn config(iters: usize, mbs: usize, seed: u64, h: usize, n: usize) -> DistributedConfig {
        DistributedConfig {
            iterations: iters,
            minibatch_per_device: mbs,
            optimizer: OptimizerChoice::paper_default(),
            local_energy: LocalEnergyConfig::default(),
            seed,
            cost_hidden: h,
            cost_offdiag: n,
        }
    }

    fn trainer(l1: usize, l2: usize, n: usize, mbs: usize) -> DistributedTrainer<Made, AutoSampler> {
        let cluster = Cluster::new(Topology::new(l1, l2), DeviceSpec::v100());
        let wf = Made::new(n, 10, 42);
        DistributedTrainer::new(cluster, wf, AutoSampler::new(), config(3, mbs, 7, 10, n))
    }

    #[test]
    fn replicas_stay_bit_identical() {
        let n = 6;
        let h = TransverseFieldIsing::random(n, 13);
        let mut t = trainer(2, 2, n, 8);
        for _ in 0..4 {
            t.step(&h);
            t.assert_replicas_consistent();
        }
    }

    #[test]
    fn single_device_matches_plain_trainer_energy_scale() {
        // A 1×1 distributed run must behave like the plain trainer (same
        // estimator; RNG streams differ so exact equality is not
        // expected, but the energies must be in the same regime and
        // finite).
        let n = 5;
        let h = TransverseFieldIsing::random(n, 3);
        let mut t = trainer(1, 1, n, 64);
        let rec = t.step(&h);
        assert!(rec.energy.is_finite());
        assert!(rec.std_dev >= 0.0);
    }

    #[test]
    fn more_devices_increase_effective_batch() {
        let t1 = trainer(1, 2, 6, 4);
        let t2 = trainer(2, 4, 6, 4);
        assert_eq!(t1.effective_batch_size(), 8);
        assert_eq!(t2.effective_batch_size(), 32);
    }

    #[test]
    fn modelled_time_nearly_constant_in_device_count() {
        // Weak scaling: same mbs per device, more devices — the modelled
        // round time must stay within a few percent (only the log-depth
        // allreduce grows).
        let n = 8;
        let mut times = Vec::new();
        for (l1, l2) in [(1, 1), (1, 4), (4, 4)] {
            let mut t = trainer(l1, l2, n, 16);
            let secs = t.sampling_round();
            times.push(secs);
        }
        let t0 = times[0];
        for (i, &t) in times.iter().enumerate() {
            assert!(
                (t / t0 - 1.0).abs() < 0.05,
                "config {i}: {t} vs baseline {t0} breaks weak scaling"
            );
        }
    }

    #[test]
    fn distributed_energy_improves_with_training() {
        let n = 6;
        let h = TransverseFieldIsing::random(n, 8);
        let cluster = Cluster::new(Topology::new(1, 2), DeviceSpec::v100());
        let wf = Made::new(n, 12, 5);
        let mut t = DistributedTrainer::new(
            cluster,
            wf,
            AutoSampler::new(),
            config(40, 64, 3, 12, n),
        );
        let trace = t.run(&h);
        assert!(
            trace.final_energy() < trace.records[0].energy,
            "training must lower the energy"
        );
    }
}
