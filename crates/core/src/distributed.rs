//! Data-parallel VQMC on the virtual cluster (paper §4, "Sampling
//! Parallelization").
//!
//! Every device holds an identical model replica, draws its own
//! `mbs` samples from its own RNG stream, measures local energies, and
//! computes a *partial* energy gradient against the **global** energy
//! baseline; the partials are combined by the deterministic tree
//! allreduce and every device applies the identical averaged gradient —
//! so the replicas stay bit-for-bit equal, which
//! [`DistributedTrainer::assert_replicas_consistent`] checks after every
//! iteration in debug builds (and tests check explicitly).
//!
//! Two collectives per iteration:
//!
//! 1. scalar energy statistics (Σl, Σl², min — 3 doubles) to form the
//!    global baseline `L̄` (an exact-global-batch refinement of the
//!    paper's "average the local gradients"; both are unbiased, the
//!    global baseline just removes an `O(1/mbs)` baseline-noise term,
//!    which matters at `mbs = 4`);
//! 2. the `d`-double gradient — the `O(h·n)` communication of Eq. 15.
//!
//! **Backends.**  The trainer runs the same algorithm over two kinds of
//! communicator, selected at construction:
//!
//! * [`DistributedTrainer::new`] — the in-process [`Cluster`]: one
//!   process owns all `L` replica states, devices are threads, and
//!   communication is the synthetic-cost tree of `vqmc-cluster` (the
//!   modelled clock carries the weak-scaling figures).
//! * [`DistributedTrainer::over_mesh`] — one rank of a real
//!   multi-process mesh ([`Collective`], e.g. `vqmc_dist::Mesh` over
//!   TCP): this process owns exactly *its* replica; the scalar stats
//!   travel by allgather + a local tree pass (same
//!   [`allreduce_mean_tree`] call ⇒ same bits as the cluster arm) and
//!   the gradient by the wire allreduce.  Because per-rank RNG streams,
//!   reduction order and update order are identical across backends,
//!   an `L`-rank socket run is **bit-identical** to an `L`-device
//!   cluster run — property-tested in `vqmc-dist`.
//!
//! Timing: compute is charged to the modelled clock from the flop
//! counts in [`crate::cost`] (cluster backend only); the allreduce
//! charges per tree hop.  See `vqmc-cluster` docs for why modelled time
//! carries the weak-scaling claims.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vqmc_cluster::{allreduce_mean_tree, Cluster, Topology};
use vqmc_hamiltonian::{local_energies_into, LocalEnergyConfig, LocalEnergyScratch, SparseRowHamiltonian};
use vqmc_nn::WaveFunction;
use vqmc_optim::Optimizer;
use vqmc_sampler::{SampleOutput, SampleStats, Sampler};
use vqmc_tensor::{SpinBatch, Vector, Workspace};

use crate::backend::{Collective, CollectiveError};
use crate::cost;
use crate::trainer::{IterationRecord, OptimizerChoice, TrainingTrace};

/// Configuration for a distributed run.
#[derive(Clone, Copy, Debug)]
pub struct DistributedConfig {
    /// Training iterations.
    pub iterations: usize,
    /// Per-device minibatch `mbs` (effective batch = `mbs × L`).
    pub minibatch_per_device: usize,
    /// Optimiser (the paper's scaling experiments use Adam).
    pub optimizer: OptimizerChoice,
    /// Local-energy chunking.
    pub local_energy: LocalEnergyConfig,
    /// Master seed; device `r` streams from `derive_seed(seed, r, ·)`.
    pub seed: u64,
    /// Hidden width `h` used for flop accounting.
    pub cost_hidden: usize,
    /// Off-diagonal connections per row for flop accounting (TIM: `n`,
    /// Max-Cut: 0).
    pub cost_offdiag: usize,
}

/// Everything one device owns: its model replica, RNG stream, optimiser
/// state, its **own sampler instance** (samplers carry mutable scratch —
/// activation workspaces, cached weight transposes — so they cannot be
/// shared across device threads), and the per-device buffers that make
/// the steady-state iteration allocation-free on every device.
struct DeviceState<W, S> {
    wf: W,
    rng: StdRng,
    opt: Box<dyn Optimizer>,
    sampler: S,
    /// Sampled batch + logψ, reused across iterations.
    out: SampleOutput,
    /// Local energies `l(x)` per sample.
    local: Vector,
    /// Local-energy engine scratch.
    le: LocalEnergyScratch,
    /// Scratch pool for wavefunction forward/backward passes.
    ws: Workspace,
    /// Baseline-subtracted per-sample weights.
    weights: Vector,
    /// Parameter vector round-tripped through the optimiser.
    params: Vector,
}

impl<W, S> DeviceState<W, S>
where
    W: WaveFunction + Clone,
    S: Sampler<W> + Clone,
{
    fn new(rank: usize, wf: &W, sampler: &S, config: &DistributedConfig) -> Self {
        DeviceState {
            wf: wf.clone(),
            rng: StdRng::seed_from_u64(crate::derive_seed(config.seed, rank as u64, 1)),
            opt: make_optimizer(config.optimizer),
            sampler: sampler.clone(),
            out: SampleOutput::default(),
            local: Vector::default(),
            le: LocalEnergyScratch::default(),
            ws: Workspace::default(),
            weights: Vector::default(),
            params: Vector::default(),
        }
    }
}

/// Where the other replicas live.
enum Backend {
    /// In-process: this trainer owns all `L` device states and the
    /// synthetic-cost cluster.
    Cluster(Cluster),
    /// One rank of a real multi-process communicator; this trainer owns
    /// exactly one device state.
    Mesh(Box<dyn Collective>),
}

/// Data-parallel trainer over a [`Cluster`] or a rank mesh.
pub struct DistributedTrainer<W, S> {
    backend: Backend,
    states: Vec<DeviceState<W, S>>,
    config: DistributedConfig,
}

impl<W, S> DistributedTrainer<W, S>
where
    W: WaveFunction + Clone,
    S: Sampler<W> + Clone,
{
    /// Builds the in-process trainer: `wf` is replicated onto every
    /// device; each device gets an independent RNG stream, its own
    /// optimiser instance and its own sampler clone (identical
    /// construction ⇒ identical trajectories; sampler scratch is
    /// per-device).
    pub fn new(cluster: Cluster, wf: W, sampler: S, config: DistributedConfig) -> Self {
        let l = cluster.num_devices();
        let states = (0..l)
            .map(|rank| DeviceState::new(rank, &wf, &sampler, &config))
            .collect();
        DistributedTrainer {
            backend: Backend::Cluster(cluster),
            states,
            config,
        }
    }

    /// Builds one rank's trainer over a real communicator: this process
    /// owns the replica for `mesh.rank()` and nothing else.  All ranks
    /// must construct with identical `(wf, sampler, config)`; the
    /// per-rank RNG stream is derived exactly as in the cluster
    /// backend, so an `L`-rank mesh run is bit-identical to an
    /// `L`-device cluster run.
    pub fn over_mesh(mesh: Box<dyn Collective>, wf: W, sampler: S, config: DistributedConfig) -> Self {
        let state = DeviceState::new(mesh.rank(), &wf, &sampler, &config);
        DistributedTrainer {
            backend: Backend::Mesh(mesh),
            states: vec![state],
            config,
        }
    }

    /// Number of devices `L` (all ranks, whatever the backend).
    pub fn num_devices(&self) -> usize {
        match &self.backend {
            Backend::Cluster(c) => c.num_devices(),
            Backend::Mesh(m) => m.world(),
        }
    }

    /// Effective global batch size `mbs × L`.
    pub fn effective_batch_size(&self) -> usize {
        self.config.minibatch_per_device * self.num_devices()
    }

    /// The cluster (for clock readout).
    ///
    /// # Panics
    /// On a mesh-backed trainer, which has no modelled clock.
    pub fn cluster(&self) -> &Cluster {
        match &self.backend {
            Backend::Cluster(c) => c,
            Backend::Mesh(_) => panic!("cluster(): trainer runs on a socket mesh"),
        }
    }

    /// Asserts every replica held *by this process* is bit-identical.
    /// On the cluster backend that is all `L` replicas; on a mesh rank
    /// it is trivially true (cross-process consistency is asserted by
    /// the `vqmc-dist` oracle tests instead).
    pub fn assert_replicas_consistent(&self) {
        let reference = self.states[0].wf.params();
        for (rank, st) in self.states.iter().enumerate().skip(1) {
            let p = st.wf.params();
            assert_eq!(
                reference.as_slice(),
                p.as_slice(),
                "replica {rank} diverged from rank 0"
            );
        }
    }

    /// Final parameters of the (rank-0 or local) replica.
    pub fn params(&self) -> Vector {
        self.states[0].wf.params()
    }

    /// One distributed training iteration.
    ///
    /// # Panics
    /// On a collective failure (mesh backend only) — use
    /// [`DistributedTrainer::try_step`] where rank loss must be
    /// handled.
    pub fn step(&mut self, h: &dyn SparseRowHamiltonian) -> IterationRecord {
        self.try_step(h).expect("collective failed")
    }

    /// One distributed training iteration, surfacing collective
    /// failures.  On `Err` no partial update has been applied: every
    /// communication round completes before the optimiser step runs.
    pub fn try_step(
        &mut self,
        h: &dyn SparseRowHamiltonian,
    ) -> Result<IterationRecord, CollectiveError> {
        let config = self.config;
        match &mut self.backend {
            Backend::Cluster(cluster) => {
                let rec = step_cluster(cluster, &mut self.states, &config, h);
                if cfg!(debug_assertions) {
                    self.assert_replicas_consistent();
                }
                Ok(rec)
            }
            Backend::Mesh(mesh) => step_mesh(mesh.as_mut(), &mut self.states[0], &config, h),
        }
    }

    /// Runs the configured number of iterations.
    ///
    /// # Panics
    /// On a collective failure — see [`DistributedTrainer::try_run`].
    pub fn run(&mut self, h: &dyn SparseRowHamiltonian) -> TrainingTrace {
        self.try_run(h).expect("collective failed")
    }

    /// Runs the configured number of iterations, stopping cleanly at
    /// the first collective failure.
    pub fn try_run(
        &mut self,
        h: &dyn SparseRowHamiltonian,
    ) -> Result<TrainingTrace, CollectiveError> {
        let start = std::time::Instant::now();
        let mut records = Vec::with_capacity(self.config.iterations);
        for _ in 0..self.config.iterations {
            records.push(self.try_step(h)?);
        }
        Ok(TrainingTrace {
            records,
            total_secs: start.elapsed().as_secs_f64(),
        })
    }

    /// A sampling-only round (the measurement of the paper's Figure 3):
    /// every device draws `mbs` samples; only sampling flops are
    /// charged.  Returns the modelled seconds the round took.
    ///
    /// # Panics
    /// On a mesh-backed trainer (no modelled clock).
    pub fn sampling_round(&mut self) -> f64 {
        let cluster = match &mut self.backend {
            Backend::Cluster(c) => c,
            Backend::Mesh(_) => panic!("sampling_round(): trainer runs on a socket mesh"),
        };
        let before = cluster.elapsed_modelled();
        let mbs = self.config.minibatch_per_device;
        let hid = self.config.cost_hidden;
        let stats: Vec<(usize, usize)> = cluster.run_round_mut(&mut self.states, |_rank, st| {
            let DeviceState {
                wf, rng, sampler, out, ..
            } = st;
            sampler.sample_into(wf, mbs, rng, out);
            (out.batch.num_spins(), out.stats.forward_passes)
        });
        let (n, passes) = stats[0];
        cluster.charge_flops_all(cost::auto_sampling_flops(mbs, n, hid));
        cluster.charge_passes_all(passes);
        cluster.sync();
        cluster.elapsed_modelled() - before
    }

    /// Total modelled seconds elapsed on the cluster (0 on a mesh rank,
    /// which has wall-clock time only).
    pub fn elapsed_modelled(&self) -> f64 {
        match &self.backend {
            Backend::Cluster(c) => c.elapsed_modelled(),
            Backend::Mesh(_) => 0.0,
        }
    }
}

/// Phase 1 per-device work: sample `mbs` configurations, measure local
/// energies, return (Σl, Σl², min, sampler stats).  Identical between
/// backends by construction — it is the same closure body.
fn measure_device<W, S>(
    st: &mut DeviceState<W, S>,
    h: &dyn SparseRowHamiltonian,
    mbs: usize,
    le_cfg: LocalEnergyConfig,
) -> (f64, f64, f64, SampleStats)
where
    W: WaveFunction,
    S: Sampler<W>,
{
    let DeviceState {
        wf,
        rng,
        sampler,
        out,
        local,
        le,
        ws,
        ..
    } = st;
    sampler.sample_into(wf, mbs, rng, out);
    let wf_ref: &W = wf;
    let mut eval = |b: &SpinBatch, dst: &mut Vector| wf_ref.log_psi_into(b, ws, dst);
    local_energies_into(h, &out.batch, &out.log_psi, &mut eval, le_cfg, le, local);
    let sum: f64 = local.sum();
    let sum_sq: f64 = local.iter().map(|l| l * l).sum();
    let min = local.min();
    (sum, sum_sq, min, out.stats)
}

/// Phase 2 per-device work: the partial gradient against the global
/// baseline, normalised so the allreduce MEAN of partials is the global
/// gradient.
fn partial_gradient<W, S>(st: &mut DeviceState<W, S>, mbs: usize, energy: f64, grad: &mut Vector)
where
    W: WaveFunction,
    S: Sampler<W>,
{
    let DeviceState {
        wf,
        out,
        local,
        ws,
        weights,
        ..
    } = st;
    weights.resize(mbs);
    for (w, &l) in weights.iter_mut().zip(local.iter()) {
        *w = 2.0 * (l - energy) / mbs as f64;
    }
    wf.weighted_log_psi_grad_into(&out.batch, weights, ws, grad);
}

/// Phase 3 per-device work: the identical local update.
fn apply_update<W, S>(st: &mut DeviceState<W, S>, avg_grad: &Vector)
where
    W: WaveFunction,
    S: Sampler<W>,
{
    let DeviceState { wf, opt, params, .. } = st;
    wf.params_into(params);
    opt.step(params, avg_grad);
    wf.set_params(params);
}

/// Derives the iteration record scalars from the tree-reduced stats.
fn energy_from_scalar_mean(scalar_mean: &Vector, l: usize, mbs: usize) -> (f64, f64) {
    let bs_global = (mbs * l) as f64;
    let energy = scalar_mean[0] * l as f64 / bs_global;
    let mean_sq = scalar_mean[1] * l as f64 / bs_global;
    let variance = (mean_sq - energy * energy).max(0.0);
    (energy, variance)
}

fn step_cluster<W, S>(
    cluster: &mut Cluster,
    states: &mut [DeviceState<W, S>],
    config: &DistributedConfig,
    h: &dyn SparseRowHamiltonian,
) -> IterationRecord
where
    W: WaveFunction + Clone,
    S: Sampler<W> + Clone,
{
    let start = std::time::Instant::now();
    let mbs = config.minibatch_per_device;
    let le_cfg = config.local_energy;
    let n = h.num_spins();
    let hid = config.cost_hidden;
    let offd = config.cost_offdiag;
    let l = cluster.num_devices();

    // Phase 1 (parallel): sample + measure; keep batch on-device.
    let stats: Vec<(f64, f64, f64, SampleStats)> =
        cluster.run_round_mut(states, |_rank, st| measure_device(st, h, mbs, le_cfg));
    // Charge the per-device compute for phase 1: streamed flops plus
    // the launch overhead of every batched pass (sampling passes as
    // reported by the sampler, +2 for the measurement's own-batch
    // and neighbour evaluations).
    let phase1_flops =
        cost::auto_sampling_flops(mbs, n, hid) + cost::measurement_flops(mbs, n, hid, offd);
    cluster.charge_flops_all(phase1_flops);
    cluster.charge_passes_all(stats[0].3.forward_passes + 2);

    // Collective 1: scalar statistics (3 doubles — negligible bytes,
    // still a tree traversal's worth of latency).
    let scalar_vectors: Vec<Vector> = stats
        .iter()
        .map(|&(sum, sum_sq, min, _)| Vector(vec![sum, sum_sq, min]))
        .collect();
    let scalar_mean = cluster.allreduce_mean(scalar_vectors);
    let (energy, variance) = energy_from_scalar_mean(&scalar_mean, l, mbs);
    let min_energy = stats.iter().map(|s| s.2).fold(f64::INFINITY, f64::min);

    // Phase 2 (parallel): partial gradients against the global baseline.
    let grads: Vec<Vector> = cluster.run_round_mut(states, |_rank, st| {
        let mut grad = Vector::default();
        partial_gradient(st, mbs, energy, &mut grad);
        grad
    });
    cluster.charge_flops_all(cost::backward_flops(mbs, n, hid));
    cluster.charge_passes_all(1);

    // Collective 2: the gradient allreduce (the O(h·n) of Eq. 15).
    let avg_grad = cluster.allreduce_mean(grads);

    // Phase 3 (parallel): identical local updates.
    let grad_ref = &avg_grad;
    cluster.run_round_mut(states, |_rank, st| apply_update(st, grad_ref));
    cluster.sync();

    let agg_stats = stats
        .iter()
        .fold(SampleStats::default(), |mut acc, &(_, _, _, s)| {
            acc.forward_passes += s.forward_passes;
            acc.configurations_evaluated += s.configurations_evaluated;
            acc.proposals += s.proposals;
            acc.accepted += s.accepted;
            acc
        });
    IterationRecord {
        energy,
        std_dev: variance.sqrt(),
        min_energy,
        wall_secs: start.elapsed().as_secs_f64(),
        sample_stats: agg_stats,
    }
}

/// The mesh arm of one iteration: identical phase bodies, but this
/// process computes only its own rank's share and the collectives run
/// over the wire.
///
/// Bit-identity with [`step_cluster`]: the scalar statistics are
/// **allgathered** (7 doubles: Σl, Σl², min + 4 sampler counters) and
/// every rank then runs the *same local* [`allreduce_mean_tree`] call
/// over the rank-ordered triples the cluster arm feeds it — same
/// function, same inputs, same bits.  The gradient takes the wire
/// allreduce, whose pairwise schedule mirrors the same tree (tested in
/// `vqmc-dist` against this very function).
fn step_mesh<W, S>(
    mesh: &mut dyn Collective,
    st: &mut DeviceState<W, S>,
    config: &DistributedConfig,
    h: &dyn SparseRowHamiltonian,
) -> Result<IterationRecord, CollectiveError>
where
    W: WaveFunction + Clone,
    S: Sampler<W> + Clone,
{
    let start = std::time::Instant::now();
    let mbs = config.minibatch_per_device;
    let l = mesh.world();

    // Phase 1: this rank's sample + measure.
    let (sum, sum_sq, min, sstats) = measure_device(st, h, mbs, config.local_energy);

    // Collective 1: allgather the scalar stats, then reduce the
    // rank-ordered triples through the *local* tree — the identical
    // computation the cluster backend performs centrally.  The sampler
    // counters ride along as exact small integers in f64.
    let packed = Vector(vec![
        sum,
        sum_sq,
        min,
        sstats.forward_passes as f64,
        sstats.configurations_evaluated as f64,
        sstats.proposals as f64,
        sstats.accepted as f64,
    ]);
    let gathered = mesh.allgather(&packed)?;
    if gathered.len() != l || gathered.iter().any(|g| g.len() != 7) {
        return Err(CollectiveError::Protocol(
            "scalar-stats allgather returned wrong shape".into(),
        ));
    }
    let scalar_vectors: Vec<Vector> = gathered
        .iter()
        .map(|g| Vector(vec![g[0], g[1], g[2]]))
        .collect();
    let scalar_mean = allreduce_mean_tree(scalar_vectors, &Topology::new(1, l)).0;
    let (energy, variance) = energy_from_scalar_mean(&scalar_mean, l, mbs);
    let min_energy = gathered.iter().map(|g| g[2]).fold(f64::INFINITY, f64::min);

    // Phase 2: this rank's partial gradient; collective 2 on the wire.
    let mut grad = Vector::default();
    partial_gradient(st, mbs, energy, &mut grad);
    let avg_grad = mesh.allreduce_mean(grad)?;

    // Phase 3: the identical local update (only after every collective
    // of this iteration has succeeded — no partial state on error).
    apply_update(st, &avg_grad);

    let agg_stats = gathered
        .iter()
        .fold(SampleStats::default(), |mut acc, g| {
            acc.forward_passes += g[3] as usize;
            acc.configurations_evaluated += g[4] as usize;
            acc.proposals += g[5] as usize;
            acc.accepted += g[6] as usize;
            acc
        });
    Ok(IterationRecord {
        energy,
        std_dev: variance.sqrt(),
        min_energy,
        wall_secs: start.elapsed().as_secs_f64(),
        sample_stats: agg_stats,
    })
}

fn make_optimizer(choice: OptimizerChoice) -> Box<dyn Optimizer> {
    match choice {
        OptimizerChoice::Sgd { lr } => Box::new(vqmc_optim::Sgd::new(lr)),
        OptimizerChoice::Adam { lr } => Box::new(vqmc_optim::Adam::new(lr)),
        // SR in the distributed path would need the per-sample rows of
        // the *global* batch; the paper's scaling experiments use Adam,
        // and SR stays a single-device feature (Table 2).
        OptimizerChoice::SgdSr { lr, .. } => Box::new(vqmc_optim::Sgd::new(lr)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ThreadMesh;
    use std::time::Duration;
    use vqmc_cluster::{DeviceSpec, Topology};
    use vqmc_hamiltonian::TransverseFieldIsing;
    use vqmc_nn::Made;
    use vqmc_sampler::AutoSampler;

    fn config(iters: usize, mbs: usize, seed: u64, h: usize, n: usize) -> DistributedConfig {
        DistributedConfig {
            iterations: iters,
            minibatch_per_device: mbs,
            optimizer: OptimizerChoice::paper_default(),
            local_energy: LocalEnergyConfig::default(),
            seed,
            cost_hidden: h,
            cost_offdiag: n,
        }
    }

    fn trainer(l1: usize, l2: usize, n: usize, mbs: usize) -> DistributedTrainer<Made, AutoSampler> {
        let cluster = Cluster::new(Topology::new(l1, l2), DeviceSpec::v100());
        let wf = Made::new(n, 10, 42);
        DistributedTrainer::new(cluster, wf, AutoSampler::new(), config(3, mbs, 7, 10, n))
    }

    #[test]
    fn replicas_stay_bit_identical() {
        let n = 6;
        let h = TransverseFieldIsing::random(n, 13);
        let mut t = trainer(2, 2, n, 8);
        for _ in 0..4 {
            t.step(&h);
            t.assert_replicas_consistent();
        }
    }

    #[test]
    fn single_device_matches_plain_trainer_energy_scale() {
        // A 1×1 distributed run must behave like the plain trainer (same
        // estimator; RNG streams differ so exact equality is not
        // expected, but the energies must be in the same regime and
        // finite).
        let n = 5;
        let h = TransverseFieldIsing::random(n, 3);
        let mut t = trainer(1, 1, n, 64);
        let rec = t.step(&h);
        assert!(rec.energy.is_finite());
        assert!(rec.std_dev >= 0.0);
    }

    #[test]
    fn more_devices_increase_effective_batch() {
        let t1 = trainer(1, 2, 6, 4);
        let t2 = trainer(2, 4, 6, 4);
        assert_eq!(t1.effective_batch_size(), 8);
        assert_eq!(t2.effective_batch_size(), 32);
    }

    #[test]
    fn modelled_time_nearly_constant_in_device_count() {
        // Weak scaling: same mbs per device, more devices — the modelled
        // round time must stay within a few percent (only the log-depth
        // allreduce grows).
        let n = 8;
        let mut times = Vec::new();
        for (l1, l2) in [(1, 1), (1, 4), (4, 4)] {
            let mut t = trainer(l1, l2, n, 16);
            let secs = t.sampling_round();
            times.push(secs);
        }
        let t0 = times[0];
        for (i, &t) in times.iter().enumerate() {
            assert!(
                (t / t0 - 1.0).abs() < 0.05,
                "config {i}: {t} vs baseline {t0} breaks weak scaling"
            );
        }
    }

    #[test]
    fn distributed_energy_improves_with_training() {
        let n = 6;
        let h = TransverseFieldIsing::random(n, 8);
        let cluster = Cluster::new(Topology::new(1, 2), DeviceSpec::v100());
        let wf = Made::new(n, 12, 5);
        let mut t = DistributedTrainer::new(
            cluster,
            wf,
            AutoSampler::new(),
            config(40, 64, 3, 12, n),
        );
        let trace = t.run(&h);
        assert!(
            trace.final_energy() < trace.records[0].energy,
            "training must lower the energy"
        );
    }

    /// The seam contract: an `L`-rank mesh run (here over the in-process
    /// [`ThreadMesh`] oracle) is bit-identical to the `L`-device cluster
    /// run — every iteration's energy/std/min and the final parameters.
    #[test]
    fn mesh_backend_bit_identical_to_cluster_backend() {
        let n = 6;
        let h = TransverseFieldIsing::random(n, 13);
        for world in [2usize, 3, 4] {
            let cfg = config(4, 8, 7, 10, n);
            let cluster = Cluster::new(Topology::new(1, world), DeviceSpec::v100());
            let mut reference =
                DistributedTrainer::new(cluster, Made::new(n, 10, 42), AutoSampler::new(), cfg);
            let ref_trace = reference.run(&h);
            let ref_params = reference.params();

            let meshes = ThreadMesh::split(world, Duration::from_secs(30));
            let handles: Vec<_> = meshes
                .into_iter()
                .map(|mesh| {
                    let h = h.clone();
                    std::thread::spawn(move || {
                        let mut t = DistributedTrainer::over_mesh(
                            Box::new(mesh),
                            Made::new(n, 10, 42),
                            AutoSampler::new(),
                            cfg,
                        );
                        let trace = t.try_run(&h).unwrap();
                        (trace, t.params())
                    })
                })
                .collect();
            for (rank, handle) in handles.into_iter().enumerate() {
                let (trace, params) = handle.join().unwrap();
                for (i, (a, b)) in ref_trace.records.iter().zip(&trace.records).enumerate() {
                    assert_eq!(
                        a.energy.to_bits(),
                        b.energy.to_bits(),
                        "world {world}, rank {rank}, iter {i}: energy"
                    );
                    assert_eq!(
                        a.std_dev.to_bits(),
                        b.std_dev.to_bits(),
                        "world {world}, rank {rank}, iter {i}: std_dev"
                    );
                    assert_eq!(
                        a.min_energy.to_bits(),
                        b.min_energy.to_bits(),
                        "world {world}, rank {rank}, iter {i}: min"
                    );
                    assert_eq!(a.sample_stats.forward_passes, b.sample_stats.forward_passes);
                }
                assert_eq!(
                    ref_params.as_slice(),
                    params.as_slice(),
                    "world {world}, rank {rank}: parameters diverged from cluster run"
                );
            }
        }
    }
}
