//! Physical observables beyond the energy.
//!
//! VQMC is not only an eigenvalue solver: once `πθ = |ψθ|²` can be
//! sampled, any diagonal observable is a sample average, and overlaps
//! with explicit states are computable by enumeration at oracle sizes.
//! These are the quantities a physics user of the library reaches for
//! first (magnetisations, correlators, fidelity against the exact
//! ground state), and the fidelity is the sharpest convergence metric
//! the test-suite has.

use vqmc_nn::{Autoregressive, WaveFunction};
use vqmc_tensor::batch::enumerate_configs;
use vqmc_tensor::{Matrix, SpinBatch, Vector};

/// Per-spin magnetisation `⟨σᵢ⟩ = ⟨1 − 2xᵢ⟩` estimated from a sample
/// batch.
pub fn magnetization(batch: &SpinBatch) -> Vector {
    let bs = batch.batch_size() as f64;
    let n = batch.num_spins();
    let mut acc = Vector::zeros(n);
    for sample in batch.samples() {
        for (i, &b) in sample.iter().enumerate() {
            acc[i] += 1.0 - 2.0 * b as f64;
        }
    }
    acc.scale(1.0 / bs);
    acc
}

/// Mean total magnetisation per spin, `⟨Σᵢ σᵢ⟩ / n`.
pub fn mean_magnetization(batch: &SpinBatch) -> f64 {
    magnetization(batch).sum() / batch.num_spins() as f64
}

/// Full spin-spin correlation matrix `C_ij = ⟨σᵢσⱼ⟩` (diagonal = 1),
/// estimated from the batch with one GEMM.
pub fn correlation_matrix(batch: &SpinBatch) -> Matrix {
    let sigma = batch.to_ising_matrix();
    let mut c = sigma.matmul_tn(&sigma);
    c.scale(1.0 / batch.batch_size() as f64);
    c
}

/// Connected correlator `⟨σᵢσⱼ⟩ − ⟨σᵢ⟩⟨σⱼ⟩` for a list of pairs.
pub fn connected_correlations(batch: &SpinBatch, pairs: &[(usize, usize)]) -> Vector {
    let m = magnetization(batch);
    let c = correlation_matrix(batch);
    Vector::from_fn(pairs.len(), |k| {
        let (i, j) = pairs[k];
        c.get(i, j) - m[i] * m[j]
    })
}

/// Exact fidelity `|⟨φ|ψθ⟩|² / (⟨φ|φ⟩⟨ψθ|ψθ⟩)` between the model and an
/// explicit state vector over the full `2ⁿ` basis (oracle sizes only;
/// panics for `n > 20`).
///
/// This is the convergence metric that exposes what the energy alone
/// can hide: two states can have similar Rayleigh quotients yet low
/// overlap.
pub fn fidelity(wf: &dyn WaveFunction, phi: &Vector) -> f64 {
    let n = wf.num_spins();
    assert!(n <= 20, "fidelity: basis too large to enumerate");
    let dim = 1usize << n;
    assert_eq!(phi.len(), dim, "fidelity: state dimension mismatch");
    let all = enumerate_configs(n);
    let log_psi = wf.log_psi(&all);
    // Stabilise: shift by the max log-amplitude before exponentiating.
    let shift = vqmc_tensor::reduce::max(&log_psi);
    let psi = Vector::from_fn(dim, |x| (log_psi[x] - shift).exp());
    let overlap = psi.dot(phi);
    let norm_psi = psi.dot(&psi);
    let norm_phi = phi.dot(phi);
    assert!(norm_psi > 0.0 && norm_phi > 0.0, "fidelity: zero state");
    overlap * overlap / (norm_psi * norm_phi)
}

/// Empirical entropy (in nats) of the *model distribution* estimated
/// from its own exact samples: `−E[log πθ(x)]`.  Only meaningful for
/// normalised (autoregressive) models, hence the trait bound.
pub fn sample_entropy<W: Autoregressive + ?Sized>(wf: &W, batch: &SpinBatch) -> f64 {
    let lp = wf.log_prob(batch);
    -lp.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_hamiltonian::ground_state;
    use vqmc_nn::Made;

    #[test]
    fn magnetization_of_explicit_batches() {
        // All-zero batch: every σ = +1.
        let zeros = SpinBatch::zeros(10, 4);
        assert!(magnetization(&zeros).iter().all(|&m| m == 1.0));
        assert_eq!(mean_magnetization(&zeros), 1.0);
        // Half up, half down on spin 0.
        let mixed = SpinBatch::from_fn(4, 2, |s, i| ((s % 2 == 0) && i == 0) as u8);
        let m = magnetization(&mixed);
        assert_eq!(m[0], 0.0);
        assert_eq!(m[1], 1.0);
    }

    #[test]
    fn correlation_matrix_diagonal_is_one() {
        let batch = SpinBatch::from_fn(8, 5, |s, i| (((s + 1) * (i + 2)) % 2) as u8);
        let c = correlation_matrix(&batch);
        for i in 0..5 {
            assert!((c.get(i, i) - 1.0).abs() < 1e-12);
        }
        // Symmetry.
        for i in 0..5 {
            for j in 0..5 {
                assert!((c.get(i, j) - c.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn perfectly_aligned_spins_have_unit_correlation() {
        // Samples where spins 0 and 1 always agree, 0 and 2 always differ.
        let batch = SpinBatch::from_fn(6, 3, |s, i| match i {
            0 | 1 => (s % 2) as u8,
            _ => 1 - (s % 2) as u8,
        });
        let c = connected_correlations(&batch, &[(0, 1), (0, 2)]);
        assert!((c[0] - 1.0).abs() < 1e-12);
        assert!((c[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_state_with_itself_is_one() {
        let wf = Made::new(5, 8, 3);
        let all = enumerate_configs(5);
        let lp = wf.log_psi(&all);
        let psi = Vector::from_fn(32, |x| lp[x].exp());
        let f = fidelity(&wf, &psi);
        assert!((f - 1.0).abs() < 1e-10, "self-fidelity {f}");
    }

    #[test]
    fn fidelity_with_orthogonal_state_is_zero() {
        let wf = Made::new(3, 5, 1);
        // ψ > 0 everywhere, so an antisymmetric sign pattern that sums
        // against ψ to ~0 isn't trivially available; instead use a basis
        // state minus its ψ-weighted projection.
        let all = enumerate_configs(3);
        let lp = wf.log_psi(&all);
        let psi = Vector::from_fn(8, |x| lp[x].exp());
        let mut phi = Vector::zeros(8);
        phi[3] = 1.0;
        let proj = psi.dot(&phi) / psi.dot(&psi);
        phi.axpy(-proj, &psi);
        let f = fidelity(&wf, &phi);
        assert!(f < 1e-20, "orthogonalised fidelity {f}");
    }

    #[test]
    fn trained_model_gains_fidelity_with_ground_state() {
        use crate::trainer::{OptimizerChoice, Trainer, TrainerConfig};
        use vqmc_sampler::AutoSampler;
        let n = 5;
        let h = vqmc_hamiltonian::TransverseFieldIsing::random(n, 8);
        let gs = ground_state(&h, 200, 1e-12);
        // Init seed matters: seed 2 lands this disorder instance in an
        // excited-state basin (E → −4.81 vs λ_min = −5.015, fidelity
        // stalls at 0.48); seeds 5/7 train past 0.98.
        let wf = Made::new(n, 10, 5);
        let before = fidelity(&wf, &gs.vector);
        let config = TrainerConfig {
            iterations: 300,
            batch_size: 256,
            optimizer: OptimizerChoice::paper_default(),
            ..TrainerConfig::paper_default(4)
        };
        let mut trainer = Trainer::new(wf, AutoSampler::new(), config);
        trainer.run(&h);
        let after = fidelity(trainer.wavefunction(), &gs.vector);
        assert!(
            after > before && after > 0.85,
            "fidelity {before} -> {after}"
        );
    }

    #[test]
    fn entropy_nonnegative_and_below_n_ln2() {
        use rand::SeedableRng;
        use vqmc_sampler::{AutoSampler, Sampler};
        let n = 6;
        let wf = Made::new(n, 10, 7);
        let out = AutoSampler::new().sample(&wf, 512, &mut rand::rngs::StdRng::seed_from_u64(1));
        let s = sample_entropy(&wf, &out.batch);
        assert!(s >= -1e-9, "entropy {s}");
        // Never above the uniform-distribution entropy n·ln2 by more
        // than sampling noise.
        assert!(s <= n as f64 * std::f64::consts::LN_2 + 0.5, "entropy {s}");
    }
}
