//! Time-to-target harness (the paper's Table 5).
//!
//! Trains with evaluation-after-update: each iteration, after the
//! parameter step, a fresh evaluation batch is drawn and scored; the run
//! stops as soon as the score reaches the target.  Per the paper,
//! evaluation time is excluded from the reported hitting time.

use std::time::Instant;

use vqmc_hamiltonian::SparseRowHamiltonian;
use vqmc_nn::WaveFunction;
use vqmc_sampler::Sampler;

use crate::trainer::Trainer;

/// Configuration of a hitting-time run.
#[derive(Clone, Copy, Debug)]
pub struct HittingConfig {
    /// Target score (for Max-Cut: the cut number to reach; the score of
    /// a batch is the *mean* `−energy`, matching the paper's evaluation
    /// protocol of reporting the mean over a fresh test batch).
    pub target_score: f64,
    /// Evaluation batch size.
    pub eval_batch_size: usize,
    /// Give up after this many iterations.
    pub max_iterations: usize,
}

/// Result of a hitting-time run.
#[derive(Clone, Debug)]
pub struct HittingResult {
    /// Whether the target was reached.
    pub hit: bool,
    /// Iterations executed (training steps).
    pub iterations: usize,
    /// Training seconds elapsed (evaluation excluded, per the paper).
    pub train_secs: f64,
    /// The best score observed.
    pub best_score: f64,
}

/// Runs training until the evaluation score (mean `−energy` of a fresh
/// batch) reaches `config.target_score`.
pub fn hitting_time<W, S>(
    trainer: &mut Trainer<W, S>,
    h: &dyn SparseRowHamiltonian,
    config: HittingConfig,
) -> HittingResult
where
    W: WaveFunction,
    S: Sampler<W>,
{
    let mut opt = trainer.make_optimizer();
    let mut train_secs = 0.0;
    let mut best_score = f64::NEG_INFINITY;
    for it in 0..config.max_iterations {
        let t0 = Instant::now();
        trainer.step(h, opt.as_mut());
        train_secs += t0.elapsed().as_secs_f64();

        // Evaluation pass (excluded from the clock).
        let eval = trainer.evaluate(h, config.eval_batch_size);
        let score = -eval.stats.mean;
        best_score = best_score.max(score);
        if score >= config.target_score {
            return HittingResult {
                hit: true,
                iterations: it + 1,
                train_secs,
                best_score,
            };
        }
    }
    HittingResult {
        hit: false,
        iterations: config.max_iterations,
        train_secs,
        best_score,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{OptimizerChoice, TrainerConfig};
    use vqmc_hamiltonian::{LocalEnergyConfig, MaxCut};
    use vqmc_nn::Made;
    use vqmc_sampler::AutoSampler;

    fn trainer(n: usize) -> Trainer<Made, AutoSampler> {
        let cfg = TrainerConfig {
            iterations: 0,
            batch_size: 128,
            optimizer: OptimizerChoice::paper_default(),
            local_energy: LocalEnergyConfig::default(),
            seed: 3,
        };
        Trainer::new(Made::new(n, 12, 5), AutoSampler::new(), cfg)
    }

    #[test]
    fn reaches_easy_target_quickly() {
        let n = 10;
        let mc = MaxCut::random(n, 7);
        // Half the edges is the random-cut expectation: trivially easy.
        let target = mc.graph().num_edges() as f64 * 0.45;
        let mut t = trainer(n);
        let result = hitting_time(
            &mut t,
            &mc,
            HittingConfig {
                target_score: target,
                eval_batch_size: 64,
                max_iterations: 100,
            },
        );
        assert!(result.hit, "easy target missed: best {}", result.best_score);
        assert!(result.iterations <= 100);
        assert!(result.best_score >= target);
    }

    #[test]
    fn impossible_target_reports_miss() {
        let n = 8;
        let mc = MaxCut::random(n, 9);
        let impossible = mc.graph().num_edges() as f64 + 10.0;
        let mut t = trainer(n);
        let result = hitting_time(
            &mut t,
            &mc,
            HittingConfig {
                target_score: impossible,
                eval_batch_size: 32,
                max_iterations: 5,
            },
        );
        assert!(!result.hit);
        assert_eq!(result.iterations, 5);
        assert!(result.best_score < impossible);
    }
}
