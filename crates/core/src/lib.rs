//! # vqmc-core
//!
//! The VQMC driver — the paper's primary contribution assembled from the
//! workspace's substrates:
//!
//! * [`estimator`] — the Monte-Carlo estimators of the paper's Eqs. 3–5:
//!   local-energy statistics (mean, the zero-variance diagnostic) and
//!   the baseline-subtracted energy gradient;
//! * [`trainer`] — the single-device training loop (sample → measure →
//!   gradient → update), producing the per-iteration
//!   [`trainer::TrainingTrace`] behind Figure 2 and Tables 1–5;
//! * [`distributed`] — data-parallel training on the
//!   [`vqmc_cluster::Cluster`]: per-device replicas, local sampling,
//!   deterministic gradient allreduce, bit-identical replica updates
//!   (asserted, not assumed) — the engine of Figures 3–4 and
//!   Tables 6–7;
//! * [`hitting`] — the time-to-target harness of Table 5;
//! * [`cost`] — the flop/byte accounting that drives the modelled
//!   cluster clock (see `vqmc-cluster` for why modelled time, not
//!   wall-clock, carries the weak-scaling results on this host).

#![warn(missing_docs)]

pub mod cost;
pub mod distributed;
pub mod estimator;
pub mod hitting;
pub mod model_parallel;
pub mod observables;
pub mod trainer;

pub use distributed::{DistributedConfig, DistributedTrainer};
pub use estimator::{energy_gradient, EnergyStats};
pub use hitting::{hitting_time, HittingConfig, HittingResult};
pub use trainer::{
    EvalResult, IterationRecord, OptimizerChoice, Trainer, TrainerConfig, TrainingTrace,
};

/// Derives a per-(device, purpose) RNG seed from a master seed.
///
/// The constants are arbitrary odd multipliers; what matters is that
/// distinct `(master, rank, stream)` triples map to distinct,
/// well-separated seeds so device streams never collide.
pub fn derive_seed(master: u64, rank: u64, stream: u64) -> u64 {
    master
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(rank.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(stream.wrapping_mul(0x94D0_49BB_1331_11EB))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_distinct() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..4u64 {
            for rank in 0..8u64 {
                for stream in 0..4u64 {
                    assert!(seen.insert(derive_seed(master, rank, stream)));
                }
            }
        }
    }

    #[test]
    fn derived_seed_deterministic() {
        assert_eq!(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
    }
}
