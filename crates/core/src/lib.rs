//! # vqmc-core
//!
//! The VQMC driver — the paper's primary contribution assembled from the
//! workspace's substrates:
//!
//! * [`estimator`] — the Monte-Carlo estimators of the paper's Eqs. 3–5:
//!   local-energy statistics (mean, the zero-variance diagnostic) and
//!   the baseline-subtracted energy gradient;
//! * [`trainer`] — the single-device training loop (sample → measure →
//!   gradient → update), producing the per-iteration
//!   [`trainer::TrainingTrace`] behind Figure 2 and Tables 1–5;
//! * [`distributed`] — data-parallel training on the
//!   [`vqmc_cluster::Cluster`]: per-device replicas, local sampling,
//!   deterministic gradient allreduce, bit-identical replica updates
//!   (asserted, not assumed) — the engine of Figures 3–4 and
//!   Tables 6–7;
//! * [`hitting`] — the time-to-target harness of Table 5;
//! * [`cost`] — the flop/byte accounting that drives the modelled
//!   cluster clock (see `vqmc-cluster` for why modelled time, not
//!   wall-clock, carries the weak-scaling results on this host).

#![warn(missing_docs)]

pub mod cost;
pub mod distributed;
pub mod estimator;
pub mod hitting;
pub mod model_parallel;
pub mod observables;
pub mod trainer;

pub use distributed::{DistributedConfig, DistributedTrainer};
pub use estimator::{energy_gradient, EnergyStats};
pub use hitting::{hitting_time, HittingConfig, HittingResult};
pub use trainer::{
    EvalResult, IterationRecord, OptimizerChoice, Trainer, TrainerConfig, TrainingTrace,
};

/// Derives a per-(device, purpose) RNG seed from a master seed.
///
/// The constants are arbitrary odd multipliers; what matters is that
/// distinct `(master, rank, stream)` triples map to distinct,
/// well-separated seeds so device streams never collide.
pub fn derive_seed(master: u64, rank: u64, stream: u64) -> u64 {
    master
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(rank.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(stream.wrapping_mul(0x94D0_49BB_1331_11EB))
}

/// A heap-allocation counter installed as the global allocator in this
/// crate's test build only.  Counts are **per thread**, so concurrent
/// tests do not pollute each other's readings: the steady-state
/// zero-allocation test in [`alloc_test`] measures only the allocations
/// its own thread performs (the vendored rayon shim is sequential, so
/// every kernel runs on the calling thread).
#[cfg(test)]
pub(crate) mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        // `const` init: reading/writing never allocates, so the counter
        // is safe to touch from inside the allocator itself.
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    /// Forwards to [`System`], counting `alloc`/`alloc_zeroed`/`realloc`
    /// calls made by the current thread.
    pub struct CountingAllocator;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.with(|c| c.set(c.get() + 1));
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.with(|c| c.set(c.get() + 1));
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.with(|c| c.set(c.get() + 1));
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static COUNTER: CountingAllocator = CountingAllocator;

    /// Heap allocations made by the calling thread so far.
    pub fn current_thread_allocs() -> u64 {
        ALLOCS.with(|c| c.get())
    }
}

/// The acceptance test for the zero-allocation training hot path: after
/// a two-iteration warm-up, a [`Trainer::step`] performs **zero** heap
/// allocations — sampling, local energies, backprop and the optimiser
/// update all run out of reused buffers.
#[cfg(test)]
mod alloc_test {
    use crate::alloc_counter::current_thread_allocs;
    use crate::trainer::{OptimizerChoice, Trainer, TrainerConfig};
    use vqmc_hamiltonian::{LocalEnergyConfig, TransverseFieldIsing};
    use vqmc_nn::Made;
    use vqmc_sampler::{AutoSampler, IncrementalAutoSampler};

    fn config(opt: OptimizerChoice) -> TrainerConfig {
        TrainerConfig {
            iterations: 8,
            batch_size: 64,
            optimizer: opt,
            local_energy: LocalEnergyConfig::default(),
            seed: 11,
        }
    }

    fn assert_steady_state_alloc_free(
        mut t: Trainer<Made, impl vqmc_sampler::Sampler<Made>>,
        h: &TransverseFieldIsing,
        label: &str,
    ) {
        let mut opt = t.make_optimizer();
        // Warm-up: the first iteration sizes every buffer; the second
        // catches anything sized lazily off the first iteration's data.
        for _ in 0..2 {
            t.step(h, opt.as_mut());
        }
        let before = current_thread_allocs();
        for _ in 0..4 {
            t.step(h, opt.as_mut());
        }
        let after = current_thread_allocs();
        assert_eq!(
            after - before,
            0,
            "{label}: {} heap allocations in 4 steady-state iterations",
            after - before
        );
    }

    #[test]
    fn trainer_step_is_allocation_free_at_steady_state() {
        let n = 6;
        let h = TransverseFieldIsing::random(n, 3);
        let t = Trainer::new(
            Made::new(n, 12, 7),
            AutoSampler::new(),
            config(OptimizerChoice::paper_default()),
        );
        assert_steady_state_alloc_free(t, &h, "AUTO + Adam");
    }

    #[test]
    fn incremental_sampler_step_is_allocation_free_at_steady_state() {
        let n = 6;
        let h = TransverseFieldIsing::random(n, 3);
        let t = Trainer::new(
            Made::new(n, 12, 7),
            IncrementalAutoSampler::new(),
            config(OptimizerChoice::paper_default()),
        );
        assert_steady_state_alloc_free(t, &h, "AUTO-incremental + Adam");
    }

    #[test]
    fn sr_step_is_allocation_free_at_steady_state() {
        let n = 6;
        let h = TransverseFieldIsing::random(n, 3);
        let t = Trainer::new(
            Made::new(n, 12, 7),
            AutoSampler::new(),
            config(OptimizerChoice::paper_sr()),
        );
        assert_steady_state_alloc_free(t, &h, "AUTO + SGD+SR");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_distinct() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..4u64 {
            for rank in 0..8u64 {
                for stream in 0..4u64 {
                    assert!(seen.insert(derive_seed(master, rank, stream)));
                }
            }
        }
    }

    #[test]
    fn derived_seed_deterministic() {
        assert_eq!(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
    }
}
