//! # vqmc-core
//!
//! The VQMC driver — the paper's primary contribution assembled from the
//! workspace's substrates:
//!
//! * [`estimator`] — the Monte-Carlo estimators of the paper's Eqs. 3–5:
//!   local-energy statistics (mean, the zero-variance diagnostic) and
//!   the baseline-subtracted energy gradient;
//! * [`trainer`] — the single-device training loop (sample → measure →
//!   gradient → update), producing the per-iteration
//!   [`trainer::TrainingTrace`] behind Figure 2 and Tables 1–5;
//! * [`distributed`] — data-parallel training on the
//!   [`vqmc_cluster::Cluster`]: per-device replicas, local sampling,
//!   deterministic gradient allreduce, bit-identical replica updates
//!   (asserted, not assumed) — the engine of Figures 3–4 and
//!   Tables 6–7;
//! * [`backend`] — the [`backend::Collective`] seam the distributed
//!   trainers communicate through: world-size-1, in-process thread
//!   rendezvous (the oracle), or the real-socket mesh of `vqmc-dist`;
//! * [`sharded`] — rank-count-invariant multi-process training
//!   (replicated sampling, sharded measurement): the mode that
//!   reproduces the single-process golden trace at any `--ranks`;
//! * [`hitting`] — the time-to-target harness of Table 5;
//! * [`cost`] — the flop/byte accounting that drives the modelled
//!   cluster clock (see `vqmc-cluster` for why modelled time, not
//!   wall-clock, carries the weak-scaling results on this host).

#![warn(missing_docs)]

pub mod backend;
pub mod cost;
pub mod distributed;
pub mod estimator;
pub mod hitting;
pub mod model_parallel;
pub mod observables;
pub mod sharded;
pub mod trainer;

pub use backend::{Collective, CollectiveError, SoloCollective, ThreadMesh};
pub use distributed::{DistributedConfig, DistributedTrainer};
pub use sharded::{shard_bounds, ShardedTrainer};
pub use estimator::{energy_gradient, EnergyStats};
pub use hitting::{hitting_time, HittingConfig, HittingResult};
pub use trainer::{
    EvalResult, IterationRecord, OptimizerChoice, Trainer, TrainerConfig, TrainingTrace,
};

/// Derives a per-(device, purpose) RNG seed from a master seed.
///
/// The constants are arbitrary odd multipliers; what matters is that
/// distinct `(master, rank, stream)` triples map to distinct,
/// well-separated seeds so device streams never collide.
pub fn derive_seed(master: u64, rank: u64, stream: u64) -> u64 {
    master
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(rank.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(stream.wrapping_mul(0x94D0_49BB_1331_11EB))
}

/// A heap-allocation counter installed as the global allocator in this
/// crate's test build only.  Two counters are maintained: a **per
/// thread** count (concurrent tests do not pollute each other's
/// readings — used by the single-thread steady-state tests in
/// [`alloc_test`]) and a **process-wide** count (catches allocations
/// made by the `vqmc_tensor::par` pool workers, which a per-thread
/// counter on the test thread is blind to — used by the pool-active
/// steady-state test).
#[cfg(test)]
pub(crate) mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    thread_local! {
        // `const` init: reading/writing never allocates, so the counter
        // is safe to touch from inside the allocator itself.
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

    #[inline]
    fn count() {
        ALLOCS.with(|c| c.set(c.get() + 1));
        GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }

    /// Forwards to [`System`], counting `alloc`/`alloc_zeroed`/`realloc`
    /// calls made by the current thread and by the whole process.
    pub struct CountingAllocator;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            count();
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            count();
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            count();
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static COUNTER: CountingAllocator = CountingAllocator;

    /// Heap allocations made by the calling thread so far.
    pub fn current_thread_allocs() -> u64 {
        ALLOCS.with(|c| c.get())
    }

    /// Heap allocations made by the whole process so far (every thread,
    /// pool workers included).
    pub fn global_allocs() -> u64 {
        GLOBAL_ALLOCS.load(Ordering::Relaxed)
    }
}

/// The acceptance test for the zero-allocation training hot path: after
/// a two-iteration warm-up, a [`Trainer::step`] performs **zero** heap
/// allocations — sampling, local energies, backprop and the optimiser
/// update all run out of reused buffers.
#[cfg(test)]
mod alloc_test {
    use crate::alloc_counter::current_thread_allocs;
    use crate::trainer::{OptimizerChoice, Trainer, TrainerConfig};
    use vqmc_hamiltonian::{LocalEnergyConfig, TransverseFieldIsing};
    use vqmc_nn::Made;
    use vqmc_sampler::{AutoSampler, IncrementalAutoSampler};

    fn config(opt: OptimizerChoice) -> TrainerConfig {
        TrainerConfig {
            iterations: 8,
            batch_size: 64,
            optimizer: opt,
            local_energy: LocalEnergyConfig::default(),
            seed: 11,
        }
    }

    fn assert_steady_state_alloc_free(
        mut t: Trainer<Made, impl vqmc_sampler::Sampler<Made>>,
        h: &TransverseFieldIsing,
        label: &str,
    ) {
        let mut opt = t.make_optimizer();
        // Warm-up: the first iteration sizes every buffer; the second
        // catches anything sized lazily off the first iteration's data.
        for _ in 0..2 {
            t.step(h, opt.as_mut());
        }
        let before = current_thread_allocs();
        for _ in 0..4 {
            t.step(h, opt.as_mut());
        }
        let after = current_thread_allocs();
        assert_eq!(
            after - before,
            0,
            "{label}: {} heap allocations in 4 steady-state iterations",
            after - before
        );
    }

    #[test]
    fn trainer_step_is_allocation_free_at_steady_state() {
        let n = 6;
        let h = TransverseFieldIsing::random(n, 3);
        let t = Trainer::new(
            Made::new(n, 12, 7),
            AutoSampler::new(),
            config(OptimizerChoice::paper_default()),
        );
        assert_steady_state_alloc_free(t, &h, "AUTO + Adam");
    }

    #[test]
    fn incremental_sampler_step_is_allocation_free_at_steady_state() {
        let n = 6;
        let h = TransverseFieldIsing::random(n, 3);
        let t = Trainer::new(
            Made::new(n, 12, 7),
            IncrementalAutoSampler::new(),
            config(OptimizerChoice::paper_default()),
        );
        assert_steady_state_alloc_free(t, &h, "AUTO-incremental + Adam");
    }

    #[test]
    fn sr_step_is_allocation_free_at_steady_state() {
        let n = 6;
        let h = TransverseFieldIsing::random(n, 3);
        let t = Trainer::new(
            Made::new(n, 12, 7),
            AutoSampler::new(),
            config(OptimizerChoice::paper_sr()),
        );
        assert_steady_state_alloc_free(t, &h, "AUTO + SGD+SR");
    }

    /// A depth-2 stack changes the buffer story — per-layer activations,
    /// per-layer gradients, the deep sampling panels — but not the
    /// invariant: after warm-up, `Trainer::step` performs **zero** heap
    /// allocations at depth 2 as well.
    #[test]
    fn deep_trainer_step_is_allocation_free_at_steady_state() {
        let n = 6;
        let h = TransverseFieldIsing::random(n, 3);
        let t = Trainer::new(
            Made::with_hidden(n, &[12, 8], 7),
            AutoSampler::new(),
            config(OptimizerChoice::paper_default()),
        );
        assert_steady_state_alloc_free(t, &h, "depth-2 AUTO + Adam");
    }

    /// Same invariant through the incremental sampler, which at depth ≥ 2
    /// runs the deep panel pipeline with its retained stripe buffers.
    #[test]
    fn deep_incremental_sampler_step_is_allocation_free_at_steady_state() {
        let n = 6;
        let h = TransverseFieldIsing::random(n, 3);
        let t = Trainer::new(
            Made::with_hidden(n, &[12, 8], 7),
            IncrementalAutoSampler::new(),
            config(OptimizerChoice::paper_default()),
        );
        assert_steady_state_alloc_free(t, &h, "depth-2 AUTO-incremental + Adam");
    }

    /// With the worker pool active (4 threads, batch big enough that the
    /// sampler panels and slice kernels actually dispatch to workers),
    /// steady-state `Trainer::step` still performs **zero** heap
    /// allocations — measured with the *process-wide* counter, so worker
    /// threads are in scope.  Pool dispatch borrows the caller's job
    /// closure (no boxing), workers are spawned during warm-up, and
    /// every kernel runs out of buffers sized on the first iterations.
    ///
    /// Other tests in this binary run concurrently and also allocate, so
    /// a single global-delta reading can be polluted.  A step that
    /// itself allocates does so on *every* round; we therefore require
    /// at least one clean round out of several, which is immune to
    /// transient pollution but still fails reliably on a real
    /// regression.
    #[test]
    fn pool_active_trainer_step_is_allocation_free_at_steady_state() {
        use crate::alloc_counter::global_allocs;
        let n = 16;
        let h = TransverseFieldIsing::random(n, 5);
        let mut t = Trainer::new(
            Made::new(n, 32, 9),
            AutoSampler::new(),
            TrainerConfig {
                iterations: 8,
                batch_size: 256,
                optimizer: OptimizerChoice::paper_default(),
                local_energy: LocalEnergyConfig::default(),
                seed: 13,
            },
        );
        vqmc_tensor::par::with_threads(4, || {
            let mut opt = t.make_optimizer();
            // Warm-up: sizes every buffer *and* spawns the pool workers
            // (their stacks and TLS are one-time costs, not steady state).
            for _ in 0..2 {
                t.step(&h, opt.as_mut());
            }
            let mut best = u64::MAX;
            for _ in 0..8 {
                let before = global_allocs();
                t.step(&h, opt.as_mut());
                let after = global_allocs();
                best = best.min(after - before);
                if best == 0 {
                    break;
                }
            }
            assert_eq!(
                best, 0,
                "pool-active steady state: best round still made {best} heap allocations"
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_distinct() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..4u64 {
            for rank in 0..8u64 {
                for stream in 0..4u64 {
                    assert!(seen.insert(derive_seed(master, rank, stream)));
                }
            }
        }
    }

    #[test]
    fn derived_seed_deterministic() {
        assert_eq!(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
    }
}
