//! Flop and byte accounting for VQMC iterations — the inputs to the
//! virtual cluster's modelled clock (paper §4's complexity analysis,
//! made executable).
//!
//! All counts are *dense-kernel* flops (multiply-adds counted as 2).
//! The constants match the paper's `O(h·n)` -per-forward-pass analysis;
//! absolute values only shift modelled times by a constant that cancels
//! in every normalised figure.

/// Flops of one MADE/RBM forward pass over `bs` samples: two dense
/// `n×h` layers, `2·n·h` multiply-adds each.
pub fn forward_flops(bs: usize, n: usize, h: usize) -> f64 {
    4.0 * (bs * n * h) as f64
}

/// Flops of one backward pass (canonical 2× the forward).
pub fn backward_flops(bs: usize, n: usize, h: usize) -> f64 {
    2.0 * forward_flops(bs, n, h)
}

/// Flops of AUTO sampling a batch: Algorithm 1's `n` sequential forward
/// passes (the naive paper-accounted cost).
pub fn auto_sampling_flops(bs: usize, n: usize, h: usize) -> f64 {
    n as f64 * forward_flops(bs, n, h)
}

/// Flops of AUTO sampling with the incremental hidden-state cache:
/// `O(h)` per revealed bit per sample, i.e. one forward pass total.
pub fn auto_sampling_flops_incremental(bs: usize, n: usize, h: usize) -> f64 {
    forward_flops(bs, n, h)
}

/// Flops of MCMC sampling: `steps` lock-step sweeps of `chains` chains,
/// each sweep one batched forward pass of `chains` configurations.
pub fn mcmc_sampling_flops(chains: usize, steps: usize, n: usize, h: usize) -> f64 {
    steps as f64 * forward_flops(chains, n, h)
}

/// Sweeps an MCMC run needs to deliver `bs` samples with `chains`
/// chains, burn-in `k` and thinning `j` (the paper's `k + bs·j/c`).
pub fn mcmc_steps(bs: usize, chains: usize, k: usize, j: usize) -> usize {
    k + bs.div_ceil(chains) * j
}

/// Flops of the local-energy measurement for a Hamiltonian with
/// `offdiag` single-flip connections per row (TIM: `n`; Max-Cut: 0):
/// one forward pass over the batch plus one over all neighbours, plus
/// the `O(n²)`-per-sample dense-coupling diagonal.
pub fn measurement_flops(bs: usize, n: usize, h: usize, offdiag: usize) -> f64 {
    let neighbour = forward_flops(bs * offdiag, n, h);
    let own = forward_flops(bs, n, h);
    let diagonal = 2.0 * (bs * n * n) as f64;
    neighbour + own + diagonal
}

/// Modelled device time for a phase of `passes` batched forward/backward
/// passes moving `flops` total flops: every pass pays the fixed launch
/// overhead, and the flops stream at the device's sustained rate.
///
/// This two-term model is what reproduces the paper's Table 1: at its
/// problem sizes the per-pass flops are far too small to hide the launch
/// overhead, so time ≈ `passes × overhead` — hence MCMC's `k + bs/c`
/// passes cost an order of magnitude more than AUTO's `n`, even though
/// AUTO moves more flops in total.
pub fn modelled_pass_time(passes: usize, flops: f64, spec: &vqmc_cluster::DeviceSpec) -> f64 {
    passes as f64 * spec.pass_overhead_secs + flops / spec.flops_per_sec
}

/// Bytes moved per device by the gradient allreduce (`d` doubles).
pub fn allreduce_bytes(num_params: usize) -> usize {
    num_params * std::mem::size_of::<f64>()
}

/// Total flops of one AUTO training iteration on one device (sampling +
/// measurement + backward) — the paper's per-GPU `O(h·n²·mbs)`.
pub fn auto_iteration_flops(mbs: usize, n: usize, h: usize, offdiag: usize) -> f64 {
    auto_sampling_flops(mbs, n, h)
        + measurement_flops(mbs, n, h, offdiag)
        + backward_flops(mbs, n, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_scaling() {
        assert_eq!(forward_flops(2, 10, 5), 400.0);
        // Linear in each factor.
        assert_eq!(forward_flops(4, 10, 5), 2.0 * forward_flops(2, 10, 5));
    }

    #[test]
    fn auto_iteration_is_order_h_n2_mbs() {
        // Doubling n should roughly quadruple the AUTO iteration cost
        // (the n² of the paper's Eq. 15 numerator).
        let base = auto_iteration_flops(16, 100, 50, 100);
        let doubled = auto_iteration_flops(16, 200, 50, 200);
        let ratio = doubled / base;
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mcmc_step_model_matches_figure1() {
        // k + (bs/c)·j.
        assert_eq!(mcmc_steps(1024, 2, 400, 1), 400 + 512);
        assert_eq!(mcmc_steps(10, 3, 5, 2), 5 + 4 * 2);
    }

    #[test]
    fn incremental_auto_saves_factor_n() {
        let naive = auto_sampling_flops(8, 256, 32);
        let incr = auto_sampling_flops_incremental(8, 256, 32);
        assert_eq!(naive / incr, 256.0);
    }

    #[test]
    fn maxcut_measurement_has_no_neighbour_term() {
        let with = measurement_flops(10, 50, 20, 50);
        let without = measurement_flops(10, 50, 20, 0);
        assert!(with > 10.0 * without);
    }

    #[test]
    fn allreduce_bytes_is_8d() {
        assert_eq!(allreduce_bytes(1000), 8000);
    }
}
