//! Model parallelisation of MADE — the paper's §4 avenue (1), which it
//! describes but leaves unexplored ("we restrict our attention to only
//! parallelizing the sampling step").  Implemented here as the natural
//! follow-up study.
//!
//! ## Sharding scheme
//!
//! The hidden layer is split across `L` devices: device `r` owns a
//! contiguous block of hidden units — the corresponding **rows** of
//! `W₁` (and of `b₁`) and **columns** of `W₂`.  With the input batch
//! replicated, the forward pass becomes
//!
//! ```text
//! Z₁⁽ʳ⁾ = X W₁⁽ʳ⁾ᵀ + b₁⁽ʳ⁾           (local)
//! H₁⁽ʳ⁾ = relu(Z₁⁽ʳ⁾)                 (local)
//! A     = Σᵣ H₁⁽ʳ⁾ W₂⁽ʳ⁾ᵀ  + b₂      (ONE allreduce of bs×n partials)
//! ```
//!
//! and — the interesting part — backprop needs **no further
//! communication**: once every device holds the summed logits `A`, the
//! output delta `δA` is computable redundantly everywhere, and every
//! sharded weight gradient (`dW₂⁽ʳ⁾ = δAᵀH₁⁽ʳ⁾`, `dW₁⁽ʳ⁾ = δZ₁⁽ʳ⁾ᵀX`)
//! is a purely local contraction.  The communication pattern is
//! therefore *one `bs×n` allreduce per forward pass* instead of data
//! parallelism's one `d`-vector allreduce per iteration — exactly the
//! "intimately linked with the choice of the autoregressive network"
//! coupling the paper predicted.  The [`comm_comparison`] helper
//! quantifies the crossover; the `model_parallel` bench sweeps it.
//!
//! Memory per device drops from `O(h·n)` to `O(h·n/L)`, which is the
//! avenue's whole point: it lifts the hidden-size ceiling the paper's
//! §4 memory discussion derives (h ≤ 500 at n = 10⁴ on one 32 GB card).

use vqmc_cluster::Cluster;
use vqmc_nn::{Made, WaveFunction};
use vqmc_tensor::{ops, Matrix, SpinBatch, Vector};

/// One device's slice of a MADE model (a block of hidden units).
#[derive(Clone, Debug)]
pub struct MadeShard {
    /// Shard index.
    pub rank: usize,
    /// Rows `[lo, hi)` of the hidden layer this shard owns.
    pub hidden_range: (usize, usize),
    /// `W₁` rows (hᵣ × n), pre-masked.
    pub w1_rows: Matrix,
    /// `b₁` slice (hᵣ).
    pub b1: Vector,
    /// `W₂` columns as an `n × hᵣ` matrix, pre-masked.
    pub w2_cols: Matrix,
    /// Mask rows matching `w1_rows` (gradients must stay masked).
    pub mask1_rows: Matrix,
    /// Mask columns matching `w2_cols`.
    pub mask2_cols: Matrix,
}

/// The shared (replicated) remainder of the model: the output bias.
#[derive(Clone, Debug)]
pub struct MadeSharedParams {
    /// Output bias `b₂` (n), replicated on every device.
    pub b2: Vector,
}

/// A MADE split into `L` hidden-axis shards.
#[derive(Clone, Debug)]
pub struct ShardedMade {
    shards: Vec<MadeShard>,
    shared: MadeSharedParams,
    n: usize,
    h: usize,
}

impl ShardedMade {
    /// Splits a dense [`Made`] into `num_shards` contiguous hidden
    /// blocks (block sizes differ by at most one).
    pub fn from_made(made: &Made, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "ShardedMade: zero shards");
        let h = made.hidden_size();
        let n = made.num_spins();
        assert!(
            num_shards <= h,
            "ShardedMade: more shards ({num_shards}) than hidden units ({h})"
        );
        let mut shards = Vec::with_capacity(num_shards);
        let base = h / num_shards;
        let extra = h % num_shards;
        let mut lo = 0;
        for rank in 0..num_shards {
            let size = base + usize::from(rank < extra);
            let hi = lo + size;
            let w1_rows = Matrix::from_fn(size, n, |k, d| made.w1().get(lo + k, d));
            let b1 = Vector::from_fn(size, |k| made.b1()[lo + k]);
            let w2_cols = Matrix::from_fn(n, size, |i, k| made.w2().get(i, lo + k));
            let mask1_rows = Matrix::from_fn(size, n, |k, d| made.mask1().get(lo + k, d));
            let mask2_cols = Matrix::from_fn(n, size, |i, k| made.mask2().get(i, lo + k));
            shards.push(MadeShard {
                rank,
                hidden_range: (lo, hi),
                w1_rows,
                b1,
                w2_cols,
                mask1_rows,
                mask2_cols,
            });
            lo = hi;
        }
        ShardedMade {
            shards,
            shared: MadeSharedParams {
                b2: made.b2().clone(),
            },
            n,
            h,
        }
    }

    /// Number of shards `L`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Spin count.
    pub fn num_spins(&self) -> usize {
        self.n
    }

    /// Total hidden width.
    pub fn hidden_size(&self) -> usize {
        self.h
    }

    /// The shards (read access).
    pub fn shards(&self) -> &[MadeShard] {
        &self.shards
    }

    /// Parameter bytes held by the largest shard — the per-device
    /// memory the sharding is meant to shrink.
    pub fn max_shard_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                (s.w1_rows.as_slice().len() + s.b1.len() + s.w2_cols.as_slice().len())
                    * std::mem::size_of::<f64>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Distributed forward pass on the cluster: every device computes
    /// its partial logits in a real thread, the partials are combined by
    /// the tree allreduce (cost charged to the modelled clock), and the
    /// shared bias is added.  Returns the full logit matrix.
    pub fn logits_distributed(&self, cluster: &mut Cluster, batch: &SpinBatch) -> Matrix {
        assert_eq!(
            cluster.num_devices(),
            self.num_shards(),
            "cluster size must match shard count"
        );
        let x = batch.to_matrix();
        let bs = batch.batch_size();
        let partials: Vec<Vector> = cluster.run_round(|rank| {
            let shard = &self.shards[rank];
            let mut z1 = x.matmul_nt(&shard.w1_rows);
            z1.add_row_bias(&shard.b1);
            z1.map_inplace(ops::relu);
            let partial = z1.matmul_nt(&shard.w2_cols); // bs × n
            Vector(partial.into_vec())
        });
        // The allreduce returns the MEAN; rescale to the sum.
        let l = self.num_shards() as f64;
        let mut summed = cluster.allreduce_mean(partials);
        summed.scale(l);
        let mut logits = Matrix::from_vec(bs, self.n, summed.into_vec());
        logits.add_row_bias(&self.shared.b2);
        logits
    }

    /// Distributed `logψ` (forward + the per-sample Bernoulli
    /// log-likelihood, which is local once the logits are replicated).
    pub fn log_psi_distributed(&self, cluster: &mut Cluster, batch: &SpinBatch) -> Vector {
        let logits = self.logits_distributed(cluster, batch);
        Vector::from_fn(batch.batch_size(), |s| {
            let a_row = logits.row(s);
            0.5 * batch
                .sample(s)
                .iter()
                .zip(a_row)
                .map(|(&bit, &a)| {
                    if bit == 1 {
                        ops::log_sigmoid(a)
                    } else {
                        ops::log_one_minus_sigmoid(a)
                    }
                })
                .sum::<f64>()
        })
    }

    /// Distributed weighted gradient: after one forward allreduce, every
    /// shard computes its own weight gradients with **zero further
    /// communication**.  Returns per-shard `(dW₁ rows, db₁, dW₂ cols)`
    /// plus the replicated `db₂`.
    #[allow(clippy::type_complexity)]
    pub fn weighted_grad_distributed(
        &self,
        cluster: &mut Cluster,
        batch: &SpinBatch,
        weights: &Vector,
    ) -> (Vec<(Matrix, Vector, Matrix)>, Vector) {
        let bs = batch.batch_size();
        assert_eq!(weights.len(), bs);
        let logits = self.logits_distributed(cluster, batch);
        // δA — identical on every device (computed once here; each real
        // device would compute it redundantly from the replicated
        // logits).
        let mut delta_a = Matrix::zeros(bs, self.n);
        for s in 0..bs {
            let w = weights[s];
            let a_row = logits.row(s);
            let x_row = batch.sample(s);
            let out = delta_a.row_mut(s);
            for i in 0..self.n {
                out[i] = w * 0.5 * (x_row[i] as f64 - ops::sigmoid(a_row[i]));
            }
        }
        let db2 = {
            let mut acc = Vector::zeros(self.n);
            for row in delta_a.rows_iter() {
                vqmc_tensor::vector::axpy(&mut acc, 1.0, row);
            }
            acc
        };
        let x = batch.to_matrix();
        let delta_a_ref = &delta_a;
        let x_ref = &x;
        let shard_grads: Vec<(Matrix, Vector, Matrix)> = cluster.run_round(|rank| {
            let shard = &self.shards[rank];
            // Recompute the local activations (cheaper than shipping
            // them; real model-parallel frameworks cache them locally).
            let mut z1 = x_ref.matmul_nt(&shard.w1_rows);
            z1.add_row_bias(&shard.b1);
            let h1 = z1.map(ops::relu);
            // dW₂ᵣ = δAᵀ H₁ᵣ  (n × hᵣ), masked like the dense path.
            let mut dw2 = delta_a_ref.matmul_tn(&h1);
            dw2.hadamard_inplace(&shard.mask2_cols);
            // δH₁ᵣ = δA W₂ᵣ  (bs × hᵣ); δZ₁ᵣ = δH₁ᵣ ⊙ relu'(Z₁ᵣ)
            let mut dz1 = delta_a_ref.matmul_nn(&shard.w2_cols);
            for (dz, &z) in dz1.as_mut_slice().iter_mut().zip(z1.as_slice()) {
                *dz *= ops::relu_prime(z);
            }
            let mut dw1 = dz1.matmul_tn(x_ref); // hᵣ × n
            dw1.hadamard_inplace(&shard.mask1_rows);
            let mut db1 = Vector::zeros(shard.b1.len());
            for row in dz1.rows_iter() {
                vqmc_tensor::vector::axpy(&mut db1, 1.0, row);
            }
            (dw1, db1, dw2)
        });
        cluster.sync();
        (shard_grads, db2)
    }
}

/// Communication volumes (bytes per training iteration) of the two
/// parallelisation avenues, for a direct comparison:
///
/// * **data parallel** — one `d = 2hn + h + n` gradient allreduce;
/// * **model parallel** — one `bs × n` logit allreduce per forward
///   pass: `n + 1` passes for sampling (Algorithm 1) plus the
///   measurement's neighbour pass over `bs·offdiag` rows.
///
/// Returns `(data_parallel_bytes, model_parallel_bytes)`.
pub fn comm_comparison(
    n: usize,
    h: usize,
    bs: usize,
    offdiag: usize,
) -> (usize, usize) {
    let f = std::mem::size_of::<f64>();
    let data = (2 * h * n + h + n) * f;
    let sampling_passes = n + 1;
    let model = (sampling_passes * bs * n + bs * offdiag * n) * f;
    (data, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_cluster::{DeviceSpec, Topology};
    use vqmc_nn::Autoregressive;

    fn setup(n: usize, h: usize, shards: usize) -> (Made, ShardedMade, Cluster) {
        let made = Made::new(n, h, 42);
        let sharded = ShardedMade::from_made(&made, shards);
        let l2 = shards.min(4);
        let l1 = shards.div_ceil(l2);
        // Build an exact-size topology.
        let cluster = Cluster::new(Topology::new(l1, l2), DeviceSpec::v100());
        assert_eq!(cluster.num_devices(), shards, "test topology mismatch");
        (made, sharded, cluster)
    }

    #[test]
    fn shard_sizes_partition_hidden_layer() {
        let made = Made::new(6, 11, 1);
        let sharded = ShardedMade::from_made(&made, 4);
        let total: usize = sharded
            .shards()
            .iter()
            .map(|s| s.hidden_range.1 - s.hidden_range.0)
            .sum();
        assert_eq!(total, 11);
        // Contiguity.
        let mut expect = 0;
        for s in sharded.shards() {
            assert_eq!(s.hidden_range.0, expect);
            expect = s.hidden_range.1;
        }
    }

    #[test]
    fn distributed_logits_match_dense_forward() {
        let (made, sharded, mut cluster) = setup(7, 12, 4);
        let batch = SpinBatch::from_fn(5, 7, |s, i| (((s + 1) * (i + 2)) % 2) as u8);
        let dense = made.logits(&batch);
        let dist = sharded.logits_distributed(&mut cluster, &batch);
        assert!(
            dense.max_abs_diff(&dist) < 1e-12,
            "sharded forward diverged: {}",
            dense.max_abs_diff(&dist)
        );
    }

    #[test]
    fn distributed_log_psi_matches_dense() {
        let (made, sharded, mut cluster) = setup(6, 8, 2);
        let batch = SpinBatch::from_fn(4, 6, |s, i| ((s * i) % 2) as u8);
        let dense = made.log_psi(&batch);
        let dist = sharded.log_psi_distributed(&mut cluster, &batch);
        for s in 0..4 {
            assert!((dense[s] - dist[s]).abs() < 1e-12, "sample {s}");
        }
    }

    #[test]
    fn distributed_gradients_reassemble_to_dense_gradient() {
        let (made, sharded, mut cluster) = setup(5, 9, 3);
        let batch = SpinBatch::from_fn(6, 5, |s, i| (((s + 2) * (i + 1)) % 2) as u8);
        let weights = Vector(vec![1.0, -0.5, 0.25, 2.0, -1.0, 0.5]);
        let dense_grad = made.weighted_log_psi_grad(&batch, &weights);

        let (shard_grads, db2) =
            sharded.weighted_grad_distributed(&mut cluster, &batch, &weights);

        // Reassemble into the Made flat layout [W1 | b1 | W2 | b2].
        let (h, n) = (9usize, 5usize);
        let mut dw1 = Matrix::zeros(h, n);
        let mut db1 = Vector::zeros(h);
        let mut dw2 = Matrix::zeros(n, h);
        for (shard, (g_w1, g_b1, g_w2)) in sharded.shards().iter().zip(&shard_grads) {
            let (lo, hi) = shard.hidden_range;
            for (local, global) in (lo..hi).enumerate() {
                dw1.row_mut(global).copy_from_slice(g_w1.row(local));
                db1[global] = g_b1[local];
                for i in 0..n {
                    dw2.set(i, global, g_w2.get(i, local));
                }
            }
        }
        let mut flat = Vec::new();
        flat.extend_from_slice(dw1.as_slice());
        flat.extend_from_slice(&db1);
        flat.extend_from_slice(dw2.as_slice());
        flat.extend_from_slice(&db2);

        // Masked coordinates: the dense gradient is masked, the sharded
        // one may carry (numerically zero) unmasked contractions; the
        // dense path's masks make those entries exactly zero too because
        // the masked weights are zero — compare everything.
        assert_eq!(flat.len(), dense_grad.len());
        for (k, (a, b)) in flat.iter().zip(dense_grad.iter()).enumerate() {
            assert!(
                (a - b).abs() < 1e-10,
                "param {k}: sharded {a} vs dense {b}"
            );
        }
    }

    #[test]
    fn sharding_divides_memory() {
        let made = Made::new(50, 40, 2);
        let whole = ShardedMade::from_made(&made, 1).max_shard_bytes();
        let split = ShardedMade::from_made(&made, 8).max_shard_bytes();
        assert!(
            split * 6 < whole,
            "8-way sharding should cut memory ~8x ({whole} -> {split})"
        );
    }

    #[test]
    fn comm_crossover_favors_data_parallel_at_large_batch() {
        // Model parallelism ships bs×n per pass; data parallelism ships
        // d once. For the paper's single-GPU setup (bs = 1024) data
        // parallelism moves far fewer bytes...
        let (data, model) = comm_comparison(500, 193, 1024, 500);
        assert!(model > 10 * data);
        // ...but at mbs = 4 with a huge model the gap narrows by orders
        // of magnitude (the regime where sharding pays for memory).
        let (data_large, model_large) = comm_comparison(10_000, 424, 4, 10_000);
        let ratio_small = model as f64 / data as f64;
        let ratio_large = model_large as f64 / data_large as f64;
        assert!(ratio_large < ratio_small / 10.0);
    }

    #[test]
    fn forward_allreduce_is_charged_to_the_clock() {
        let (_, sharded, mut cluster) = setup(6, 8, 2);
        let batch = SpinBatch::zeros(16, 6);
        let before = cluster.elapsed_modelled();
        let _ = sharded.logits_distributed(&mut cluster, &batch);
        assert!(cluster.elapsed_modelled() > before);
    }

    #[test]
    fn masked_entries_stay_masked_in_shards() {
        let made = Made::new(8, 10, 3);
        let sharded = ShardedMade::from_made(&made, 2);
        for shard in sharded.shards() {
            let (lo, _) = shard.hidden_range;
            for k in 0..shard.b1.len() {
                for d in 0..8 {
                    if made.mask1().get(lo + k, d) == 0.0 {
                        assert_eq!(shard.w1_rows.get(k, d), 0.0);
                    }
                }
            }
        }
    }

    /// End-to-end: sample with the dense model, compute the energy
    /// gradient through the sharded path, apply it to the dense model —
    /// the physics must match a purely dense step.
    #[test]
    fn sharded_gradient_drives_the_same_training_step() {
        use vqmc_hamiltonian::{local_energies, LocalEnergyConfig, TransverseFieldIsing};
        let n = 6;
        let h = TransverseFieldIsing::random(n, 5);
        let (made, sharded, mut cluster) = setup(n, 10, 2);
        let batch = {
            use rand::SeedableRng;
            use vqmc_sampler::{AutoSampler, Sampler};
            AutoSampler::new()
                .sample(&made, 64, &mut rand::rngs::StdRng::seed_from_u64(3))
                .batch
        };
        let log_psi = made.log_psi(&batch);
        let mut eval = |b: &SpinBatch| made.log_psi(b);
        let local = local_energies(&h, &batch, &log_psi, &mut eval, LocalEnergyConfig::default());
        let mean = local.mean();
        let weights = Vector::from_fn(64, |s| 2.0 * (local[s] - mean) / 64.0);

        let dense_grad = made.weighted_log_psi_grad(&batch, &weights);
        let (shard_grads, db2) =
            sharded.weighted_grad_distributed(&mut cluster, &batch, &weights);
        // Norm of the reassembled sharded gradient equals the dense one.
        let mut sq = db2.dot(&db2);
        for (g_w1, g_b1, g_w2) in &shard_grads {
            sq += vqmc_tensor::vector::dot(g_w1.as_slice(), g_w1.as_slice());
            sq += g_b1.dot(g_b1);
            sq += vqmc_tensor::vector::dot(g_w2.as_slice(), g_w2.as_slice());
        }
        assert!(
            (sq.sqrt() - dense_grad.norm2()).abs() < 1e-9,
            "gradient norms diverge: {} vs {}",
            sq.sqrt(),
            dense_grad.norm2()
        );
        let _ = made.conditionals(&batch); // the model is still intact
    }
}
