//! Monte-Carlo estimators (paper Eqs. 3–5).

use vqmc_nn::WaveFunction;
use vqmc_tensor::{SpinBatch, Vector, Workspace};

/// Summary statistics of a local-energy batch.
#[derive(Clone, Debug)]
pub struct EnergyStats {
    /// Sample mean — the estimate of `L(θ)` (Eq. 3).
    pub mean: f64,
    /// Sample standard deviation of the local energy — the paper's
    /// zero-variance convergence diagnostic (Eq. 4): it vanishes exactly
    /// when `ψθ` is an eigenvector.
    pub std_dev: f64,
    /// Minimum local energy in the batch (the best configuration seen —
    /// the relevant score for combinatorial optimisation).
    pub min: f64,
}

impl EnergyStats {
    /// Computes the statistics of a local-energy vector.
    pub fn from_local_energies(local: &Vector) -> Self {
        EnergyStats {
            mean: local.mean(),
            std_dev: vqmc_tensor::reduce::std_dev(local),
            min: local.min(),
        }
    }
}

/// The baseline-subtracted energy gradient (Eq. 5):
///
/// ```text
/// ∇L(θ) ≈ (2/bs) Σ_s (l(x_s) − L̄) ∇θ logψθ(x_s)
/// ```
///
/// computed as a single weighted backprop pass — `O(d)` memory at any
/// batch size.  The baseline `L̄` does not change the expectation
/// (`E[∇logψ] ∝ ∇ Σπ = 0` for normalised models) but collapses the
/// variance near convergence.
pub fn energy_gradient(
    wf: &dyn WaveFunction,
    batch: &SpinBatch,
    local: &Vector,
    mean_energy: f64,
) -> Vector {
    let mut ws = Workspace::new();
    let mut weights = Vector::default();
    let mut out = Vector::default();
    energy_gradient_into(wf, batch, local, mean_energy, &mut ws, &mut weights, &mut out);
    out
}

/// [`energy_gradient`] with caller-owned weight/output buffers and a
/// scratch pool for the backprop pass — allocation-free at steady state.
pub fn energy_gradient_into(
    wf: &dyn WaveFunction,
    batch: &SpinBatch,
    local: &Vector,
    mean_energy: f64,
    ws: &mut Workspace,
    weights: &mut Vector,
    out: &mut Vector,
) {
    let bs = batch.batch_size();
    assert_eq!(local.len(), bs, "energy_gradient: local-energy length");
    weights.resize(bs);
    for s in 0..bs {
        weights[s] = 2.0 * (local[s] - mean_energy) / bs as f64;
    }
    wf.weighted_log_psi_grad_into(batch, weights, ws, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_hamiltonian::{local_energies, LocalEnergyConfig};
    use vqmc_nn::{Made, WaveFunction};
    use vqmc_tensor::batch::enumerate_configs;

    #[test]
    fn stats_of_constant_batch() {
        let local = Vector(vec![3.0; 10]);
        let s = EnergyStats::from_local_energies(&local);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 3.0);
    }

    #[test]
    fn stats_known_values() {
        let local = Vector(vec![1.0, 3.0]);
        let s = EnergyStats::from_local_energies(&local);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std_dev, 1.0);
        assert_eq!(s.min, 1.0);
    }

    /// The Monte-Carlo gradient over the *full enumerated basis with
    /// exact weights* must match the analytic derivative of the Rayleigh
    /// quotient computed by finite differences.
    #[test]
    fn gradient_matches_rayleigh_quotient_derivative() {
        let n = 4;
        let h = vqmc_hamiltonian::TransverseFieldIsing::random(n, 5);
        let wf = Made::new(n, 7, 3);
        let all = enumerate_configs(n);

        // Exact population quantities: probabilities π(x) and locals.
        let log_psi = wf.log_psi(&all);
        let probs: Vec<f64> = {
            let lw: Vec<f64> = log_psi.iter().map(|lp| 2.0 * lp).collect();
            let z = vqmc_tensor::reduce::log_sum_exp(&lw);
            lw.iter().map(|l| (l - z).exp()).collect()
        };
        let mut eval = |b: &SpinBatch| wf.log_psi(b);
        let local = local_energies(&h, &all, &log_psi, &mut eval, LocalEnergyConfig::default());
        let energy: f64 = probs.iter().zip(local.iter()).map(|(p, l)| p * l).sum();

        // Population gradient: 2 Σ_x π(x)(l(x) − L) ∇logψ(x), expressed
        // through the weighted-backprop API with weights π·2(l−L).
        let weights = Vector::from_fn(all.batch_size(), |s| {
            2.0 * probs[s] * (local[s] - energy)
        });
        let analytic = wf.weighted_log_psi_grad(&all, &weights);

        // Finite-difference of the exact Rayleigh quotient.
        let dense = vqmc_hamiltonian::DenseHamiltonian::from_sparse(&h);
        let p0 = wf.params();
        let f = |p: &[f64]| {
            let mut probe = wf.clone();
            probe.set_params(&Vector(p.to_vec()));
            let lp = probe.log_psi(&all);
            let v = Vector::from_fn(1 << n, |x| lp[x].exp());
            dense.rayleigh_quotient(&v)
        };
        vqmc_autodiff::check_gradient("rayleigh-grad", &f, &p0, &analytic, 2e-4);
    }

    #[test]
    fn baseline_reduces_variance_of_stochastic_gradient() {
        // With finite batches, subtracting L̄ must shrink the gradient
        // norm spread across seeds (sanity of the variance-reduction
        // claim, not a theorem-grade test).
        use rand::SeedableRng;
        use vqmc_sampler::{AutoSampler, Sampler};
        let n = 6;
        let h = vqmc_hamiltonian::TransverseFieldIsing::random(n, 9);
        let wf = Made::new(n, 10, 4);
        let mut with_baseline = Vec::new();
        let mut without_baseline = Vec::new();
        for seed in 0..8u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let out = AutoSampler::new().sample(&wf, 64, &mut rng);
            let mut eval = |b: &SpinBatch| wf.log_psi(b);
            let local = local_energies(
                &h,
                &out.batch,
                &out.log_psi,
                &mut eval,
                LocalEnergyConfig::default(),
            );
            let stats = EnergyStats::from_local_energies(&local);
            let g1 = energy_gradient(&wf, &out.batch, &local, stats.mean);
            let g0 = energy_gradient(&wf, &out.batch, &local, 0.0);
            with_baseline.push(g1.norm2());
            without_baseline.push(g0.norm2());
        }
        let mean_with: f64 = with_baseline.iter().sum::<f64>() / 8.0;
        let mean_without: f64 = without_baseline.iter().sum::<f64>() / 8.0;
        assert!(
            mean_with < mean_without,
            "baseline should shrink the stochastic gradient ({mean_with} vs {mean_without})"
        );
    }
}
