//! The single-device VQMC training loop.
//!
//! One iteration is the paper's Figure 1 right-hand side:
//!
//! 1. **Sample** a batch from `|ψθ|²` (AUTO or MCMC);
//! 2. **Measure** local energies `l(x)` (Eq. 3) and their statistics;
//! 3. **Gradient** via the baseline-subtracted estimator (Eq. 5);
//! 4. **Update** with SGD / Adam, optionally preconditioned by
//!    stochastic reconfiguration (natural gradient).
//!
//! Every iteration is recorded — energy, the zero-variance diagnostic,
//! wall-clock and sampler cost — which is exactly the data behind the
//! paper's Figure 2 training curves and the timing tables.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vqmc_hamiltonian::{
    local_energies_into, LocalEnergyConfig, LocalEnergyScratch, SparseRowHamiltonian,
};
use vqmc_nn::WaveFunction;
use vqmc_optim::{Adam, Optimizer, Sgd, SrConfig, SrScratch, StochasticReconfiguration};
use vqmc_sampler::{SampleOutput, SampleStats, Sampler};
use vqmc_tensor::{Matrix, SpinBatch, Vector, Workspace};

use crate::estimator::{energy_gradient_into, EnergyStats};

/// Which optimiser drives the update (paper §5.1 settings as defaults).
#[derive(Clone, Copy, Debug)]
pub enum OptimizerChoice {
    /// Plain SGD (paper lr 0.1).
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// Adam (paper lr 0.01; the paper's default optimiser).
    Adam {
        /// Learning rate.
        lr: f64,
    },
    /// SGD on the stochastic-reconfiguration (natural-gradient)
    /// direction (paper: lr 0.1, λ = 10⁻³).
    SgdSr {
        /// Learning rate applied to the natural-gradient direction.
        lr: f64,
        /// SR solve configuration.
        sr: SrConfig,
    },
}

impl OptimizerChoice {
    /// The paper's default: Adam at lr 0.01.
    pub fn paper_default() -> Self {
        OptimizerChoice::Adam { lr: 0.01 }
    }

    /// The paper's SGD+SR setting.
    pub fn paper_sr() -> Self {
        OptimizerChoice::SgdSr {
            lr: 0.1,
            sr: SrConfig::default(),
        }
    }

    /// Table label ("SGD", "ADAM", "SGD+SR").
    pub fn label(&self) -> &'static str {
        match self {
            OptimizerChoice::Sgd { .. } => "SGD",
            OptimizerChoice::Adam { .. } => "ADAM",
            OptimizerChoice::SgdSr { .. } => "SGD+SR",
        }
    }
}

/// Trainer configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrainerConfig {
    /// Training iterations (paper: 300).
    pub iterations: usize,
    /// Batch size per iteration (paper single-GPU: 1024).
    pub batch_size: usize,
    /// Optimiser.
    pub optimizer: OptimizerChoice,
    /// Local-energy chunking.
    pub local_energy: LocalEnergyConfig,
    /// Master seed for the sampling RNG stream.
    pub seed: u64,
}

impl TrainerConfig {
    /// The paper's single-GPU setup: 300 iterations, batch 1024, Adam.
    pub fn paper_default(seed: u64) -> Self {
        TrainerConfig {
            iterations: 300,
            batch_size: 1024,
            optimizer: OptimizerChoice::paper_default(),
            local_energy: LocalEnergyConfig::default(),
            seed,
        }
    }
}

/// One training iteration's record.
#[derive(Clone, Debug)]
pub struct IterationRecord {
    /// Mean local energy (the training loss of Figure 2's red curves).
    pub energy: f64,
    /// Std-dev of the local energy (Figure 2's blue curves).
    pub std_dev: f64,
    /// Best (lowest) local energy in the batch.
    pub min_energy: f64,
    /// Wall-clock seconds spent in this iteration.
    pub wall_secs: f64,
    /// Sampler cost accounting.
    pub sample_stats: SampleStats,
}

/// A full training run's trace.
#[derive(Clone, Debug, Default)]
pub struct TrainingTrace {
    /// Per-iteration records, in order.
    pub records: Vec<IterationRecord>,
    /// Total wall-clock seconds.
    pub total_secs: f64,
}

impl TrainingTrace {
    /// Final recorded energy.
    pub fn final_energy(&self) -> f64 {
        self.records.last().expect("empty trace").energy
    }

    /// Minimum mean energy over the run.
    pub fn best_energy(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.energy)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Evaluation result on a fresh test batch (the paper's protocol: draw
/// 1024 fresh samples from the trained model, report their mean).
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// Energy statistics of the evaluation batch.
    pub stats: EnergyStats,
    /// The evaluation batch itself (for cut-value reporting etc.).
    pub batch: SpinBatch,
}

/// Every buffer one training iteration needs, owned across iterations
/// so that [`Trainer::step`] performs **zero heap allocations** once the
/// shapes are warm (two iterations suffice; verified by the
/// allocation-counter test in this crate).
#[derive(Debug, Default)]
struct TrainerScratch {
    /// Scratch pool for wavefunction forward/backward passes.
    ws: Workspace,
    /// The sampled batch and its `logψ`.
    sample_out: SampleOutput,
    /// Local energies `l(x)` per sample.
    local: Vector,
    /// Local-energy engine scratch (work items, neighbour batch).
    le: LocalEnergyScratch,
    /// Baseline-subtracted per-sample weights.
    weights: Vector,
    /// Energy gradient.
    grad: Vector,
    /// Parameter vector (round-tripped through the optimiser).
    params: Vector,
    /// Per-sample log-derivative rows `O` (SR only).
    o_rows: Matrix,
    /// SR solver scratch (mean row, CG vectors).
    sr: SrScratch,
    /// Natural-gradient direction (SR only).
    direction: Vector,
}

/// The single-device VQMC trainer.
pub struct Trainer<W, S> {
    wf: W,
    sampler: S,
    config: TrainerConfig,
    rng: StdRng,
    scratch: TrainerScratch,
}

impl<W, S> Trainer<W, S>
where
    W: WaveFunction,
    S: Sampler<W>,
{
    /// Creates a trainer owning the wavefunction and sampler.
    pub fn new(wf: W, sampler: S, config: TrainerConfig) -> Self {
        let rng = StdRng::seed_from_u64(crate::derive_seed(config.seed, 0, 0));
        Trainer {
            wf,
            sampler,
            config,
            rng,
            scratch: TrainerScratch::default(),
        }
    }

    /// Read access to the (current) wavefunction.
    pub fn wavefunction(&self) -> &W {
        &self.wf
    }

    /// Consumes the trainer, returning the trained wavefunction.
    pub fn into_wavefunction(self) -> W {
        self.wf
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Runs one training iteration, returning its record.
    ///
    /// Every intermediate lives in [`TrainerScratch`]; once buffer shapes
    /// are warm (two iterations) a step performs no heap allocation.
    pub fn step(&mut self, h: &dyn SparseRowHamiltonian, opt: &mut dyn Optimizer) -> IterationRecord {
        let start = Instant::now();
        let TrainerScratch {
            ws,
            sample_out,
            local,
            le,
            weights,
            grad,
            params,
            o_rows,
            sr,
            direction,
        } = &mut self.scratch;
        self.sampler
            .sample_into(&self.wf, self.config.batch_size, &mut self.rng, sample_out);
        let wf = &self.wf;
        let mut eval = |b: &SpinBatch, out: &mut Vector| wf.log_psi_into(b, ws, out);
        local_energies_into(
            h,
            &sample_out.batch,
            &sample_out.log_psi,
            &mut eval,
            self.config.local_energy,
            le,
            local,
        );
        let stats = EnergyStats::from_local_energies(local);
        energy_gradient_into(&self.wf, &sample_out.batch, local, stats.mean, ws, weights, grad);

        let update: &Vector = match self.config.optimizer {
            OptimizerChoice::SgdSr { sr: sr_cfg, .. } => {
                self.wf
                    .per_sample_grads_into(&sample_out.batch, ws, o_rows);
                StochasticReconfiguration::new(sr_cfg)
                    .precondition_into(o_rows, grad, sr, direction);
                direction
            }
            _ => grad,
        };
        self.wf.params_into(params);
        opt.step(params, update);
        self.wf.set_params(params);

        IterationRecord {
            energy: stats.mean,
            std_dev: stats.std_dev,
            min_energy: stats.min,
            wall_secs: start.elapsed().as_secs_f64(),
            sample_stats: sample_out.stats,
        }
    }

    /// Runs the configured number of iterations.
    pub fn run(&mut self, h: &dyn SparseRowHamiltonian) -> TrainingTrace {
        let mut opt = self.make_optimizer();
        let start = Instant::now();
        let mut records = Vec::with_capacity(self.config.iterations);
        for _ in 0..self.config.iterations {
            records.push(self.step(h, opt.as_mut()));
        }
        TrainingTrace {
            records,
            total_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// Builds the configured base optimiser (SR preconditions inside
    /// [`Trainer::step`]; its base step is SGD per the paper).
    pub fn make_optimizer(&self) -> Box<dyn Optimizer> {
        match self.config.optimizer {
            OptimizerChoice::Sgd { lr } => Box::new(Sgd::new(lr)),
            OptimizerChoice::Adam { lr } => Box::new(Adam::new(lr)),
            OptimizerChoice::SgdSr { lr, .. } => Box::new(Sgd::new(lr)),
        }
    }

    /// Draws a fresh evaluation batch from the trained model and
    /// reports its statistics (the paper's test protocol).
    pub fn evaluate(
        &mut self,
        h: &dyn SparseRowHamiltonian,
        eval_batch_size: usize,
    ) -> EvalResult {
        let out = self.sampler.sample(&self.wf, eval_batch_size, &mut self.rng);
        let TrainerScratch { ws, le, local, .. } = &mut self.scratch;
        let wf = &self.wf;
        let mut eval = |b: &SpinBatch, dst: &mut Vector| wf.log_psi_into(b, ws, dst);
        local_energies_into(
            h,
            &out.batch,
            &out.log_psi,
            &mut eval,
            self.config.local_energy,
            le,
            local,
        );
        EvalResult {
            stats: EnergyStats::from_local_energies(local),
            batch: out.batch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_hamiltonian::{ground_state, MaxCut, TransverseFieldIsing};
    use vqmc_nn::{Made, Rbm};
    use vqmc_sampler::{AutoSampler, McmcSampler, RbmFastMcmc};

    fn small_config(iters: usize, bs: usize, opt: OptimizerChoice, seed: u64) -> TrainerConfig {
        TrainerConfig {
            iterations: iters,
            batch_size: bs,
            optimizer: opt,
            local_energy: LocalEnergyConfig::default(),
            seed,
        }
    }

    #[test]
    fn energy_respects_variational_bound() {
        // L(θ) ≥ λ_min at every iteration (Eq. 1's inequality) — up to
        // Monte-Carlo noise, bounded here by 4σ/√bs.
        let n = 6;
        let h = TransverseFieldIsing::random(n, 3);
        let gs = ground_state(&h, 200, 1e-10);
        let cfg = small_config(30, 256, OptimizerChoice::paper_default(), 1);
        let mut t = Trainer::new(Made::new(n, 12, 7), AutoSampler::new(), cfg);
        let trace = t.run(&h);
        for (i, rec) in trace.records.iter().enumerate() {
            let tolerance = 4.0 * rec.std_dev / (256.0f64).sqrt() + 1e-9;
            assert!(
                rec.energy >= gs.energy - tolerance,
                "iter {i}: energy {} below λ_min {}",
                rec.energy,
                gs.energy
            );
        }
    }

    #[test]
    fn made_auto_converges_to_ground_state_small_tim() {
        let n = 5;
        let h = TransverseFieldIsing::random(n, 11);
        let gs = ground_state(&h, 200, 1e-10);
        let cfg = small_config(250, 512, OptimizerChoice::paper_default(), 5);
        let mut t = Trainer::new(Made::new(n, 12, 2), AutoSampler::new(), cfg);
        let trace = t.run(&h);
        let final_e = trace.records.last().unwrap().energy;
        let gap = (final_e - gs.energy) / gs.energy.abs();
        assert!(
            gap.abs() < 0.05,
            "converged to {final_e}, exact {}, relative gap {gap}",
            gs.energy
        );
        // Zero-variance diagnostic must have shrunk substantially.
        let first_std = trace.records[0].std_dev;
        let last_std = trace.records.last().unwrap().std_dev;
        assert!(last_std < first_std * 0.5, "{first_std} -> {last_std}");
    }

    #[test]
    fn sgd_sr_converges_faster_than_sgd_on_small_tim() {
        // The paper's observation: natural gradient reaches lower energy
        // in the same iteration budget.
        let n = 5;
        let h = TransverseFieldIsing::random(n, 21);
        let iters = 60;
        let run = |opt: OptimizerChoice| {
            let cfg = small_config(iters, 256, opt, 9);
            let mut t = Trainer::new(Made::new(n, 10, 9), AutoSampler::new(), cfg);
            t.run(&h).final_energy()
        };
        let sgd = run(OptimizerChoice::Sgd { lr: 0.1 });
        let sr = run(OptimizerChoice::paper_sr());
        assert!(
            sr <= sgd + 1e-6,
            "SR ({sr}) should not be worse than SGD ({sgd}) here"
        );
    }

    #[test]
    fn rbm_mcmc_trains_on_maxcut() {
        let n = 10;
        let mc = MaxCut::random(n, 5);
        let cfg = small_config(60, 128, OptimizerChoice::paper_default(), 2);
        let mut t = Trainer::new(
            Rbm::new(n, n, 4),
            RbmFastMcmc(McmcSampler::default()),
            cfg,
        );
        let trace = t.run(&mc);
        // Energy = −cut must improve over training.
        let first = trace.records[0].energy;
        let last = trace.final_energy();
        assert!(last < first, "no improvement: {first} -> {last}");
        // And the evaluation protocol returns a consistent batch.
        let eval = t.evaluate(&mc, 64);
        assert_eq!(eval.batch.batch_size(), 64);
        assert!(eval.stats.mean <= 0.0, "Max-Cut energies are non-positive");
    }

    #[test]
    fn trace_is_deterministic_given_seed() {
        let n = 5;
        let h = TransverseFieldIsing::random(n, 2);
        let run = || {
            let cfg = small_config(10, 64, OptimizerChoice::paper_default(), 77);
            let mut t = Trainer::new(Made::new(n, 8, 3), AutoSampler::new(), cfg);
            t.run(&h)
        };
        let a = run();
        let b = run();
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.energy, rb.energy);
            assert_eq!(ra.std_dev, rb.std_dev);
        }
    }

    #[test]
    fn optimizer_labels() {
        assert_eq!(OptimizerChoice::paper_default().label(), "ADAM");
        assert_eq!(OptimizerChoice::paper_sr().label(), "SGD+SR");
        assert_eq!(OptimizerChoice::Sgd { lr: 0.1 }.label(), "SGD");
    }
}
