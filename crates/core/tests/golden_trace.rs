//! Golden-trace regression: the reference training run (identical to
//! `vqmc-cli train --problem tim --n 10 --iters 60 --batch 128 --seed 3`)
//! must keep producing the pinned final energy after any refactor of
//! the sampling layer or the SIMD kernels.
//!
//! The pin holds on *both* dispatch arms — the verify skill reruns this
//! test with `VQMC_SIMD=off` / `--features vqmc/force-scalar` — because
//! every kernel implementation is bit-identical by construction
//! (property-tested in `vqmc-tensor` and `vqmc-sampler`).  A drift here
//! means the training numerics changed, not just their speed.

use vqmc_core::{Trainer, TrainerConfig};
use vqmc_hamiltonian::TransverseFieldIsing;
use vqmc_nn::{made_hidden_size, Made};
use vqmc_sampler::IncrementalAutoSampler;
use vqmc_tensor::par;

/// Final energy of the reference run, printed at 6 decimal places by
/// the CLI.  Pinned against the pre-unification training path.
const GOLDEN_FINAL_ENERGY: f64 = -10.555253;

fn reference_run_final_energy() -> f64 {
    let h = TransverseFieldIsing::random(10, 2021);
    // CLI derives the model seed as `seed + 1`.
    let wf = Made::new(10, made_hidden_size(10), 4);
    let config = TrainerConfig {
        iterations: 60,
        batch_size: 128,
        ..TrainerConfig::paper_default(3)
    };
    let mut trainer = Trainer::new(wf, IncrementalAutoSampler::new(), config);
    trainer.run(&h).final_energy()
}

#[test]
fn reference_training_run_reproduces_pinned_energy() {
    let final_energy = reference_run_final_energy();
    assert!(
        (final_energy - GOLDEN_FINAL_ENERGY).abs() < 5e-7,
        "golden trace drifted: got {final_energy:.9}, pinned {GOLDEN_FINAL_ENERGY}"
    );
}

/// The pin must also hold — **bit-for-bit**, not just within tolerance —
/// at every pool width.  Each Bernoulli draw chaotically amplifies any
/// floating-point difference in the conditionals, so agreement of the
/// final energy after 60 iterations at 6 decimals effectively requires
/// the whole training computation to be bit-identical across thread
/// counts (the `vqmc_tensor::par` determinism contract; see
/// `third_party/README.md`).
#[test]
fn reference_training_run_is_bit_identical_at_any_thread_count() {
    let sequential = par::with_threads(1, reference_run_final_energy);
    assert!(
        (sequential - GOLDEN_FINAL_ENERGY).abs() < 5e-7,
        "golden trace drifted at 1 thread: got {sequential:.9}"
    );
    for threads in [2usize, 4, 8] {
        let parallel = par::with_threads(threads, reference_run_final_energy);
        assert_eq!(
            parallel.to_bits(),
            sequential.to_bits(),
            "final energy at {threads} threads ({parallel:.17}) differs from 1 thread ({sequential:.17})"
        );
    }
}
