//! Golden-trace regression: the reference training run (identical to
//! `vqmc-cli train --problem tim --n 10 --iters 60 --batch 128 --seed 3`)
//! must keep producing the pinned final energy after any refactor of
//! the sampling layer or the SIMD kernels.
//!
//! The pin holds on *both* dispatch arms — the verify skill reruns this
//! test with `VQMC_SIMD=off` / `--features vqmc/force-scalar` — because
//! every kernel implementation is bit-identical by construction
//! (property-tested in `vqmc-tensor` and `vqmc-sampler`).  A drift here
//! means the training numerics changed, not just their speed.

use vqmc_core::{Trainer, TrainerConfig};
use vqmc_hamiltonian::TransverseFieldIsing;
use vqmc_nn::{made_hidden_size, Made};
use vqmc_sampler::IncrementalAutoSampler;

/// Final energy of the reference run, printed at 6 decimal places by
/// the CLI.  Pinned against the pre-unification training path.
const GOLDEN_FINAL_ENERGY: f64 = -10.555253;

#[test]
fn reference_training_run_reproduces_pinned_energy() {
    let h = TransverseFieldIsing::random(10, 2021);
    // CLI derives the model seed as `seed + 1`.
    let wf = Made::new(10, made_hidden_size(10), 4);
    let config = TrainerConfig {
        iterations: 60,
        batch_size: 128,
        ..TrainerConfig::paper_default(3)
    };
    let mut trainer = Trainer::new(wf, IncrementalAutoSampler::new(), config);
    let trace = trainer.run(&h);
    let final_energy = trace.final_energy();
    assert!(
        (final_energy - GOLDEN_FINAL_ENERGY).abs() < 5e-7,
        "golden trace drifted: got {final_energy:.9}, pinned {GOLDEN_FINAL_ENERGY}"
    );
}
