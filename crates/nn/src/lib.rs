//! # vqmc-nn
//!
//! Neural quantum states: the two trial-wavefunction architectures the
//! paper evaluates, with hand-derived analytic backprop.
//!
//! * [`Made`] — the masked autoencoder for distribution estimation
//!   (Germain et al. 2015) adapted as an *autoregressive neural quantum
//!   state*: a normalised `πθ(x) = Πᵢ πᵢ(xᵢ|x<ᵢ)` with
//!   `ψθ(x) = √πθ(x)`.  Because `πθ` is exactly normalised, expectation
//!   values can be estimated from **exact** samples — no MCMC.  One
//!   forward pass yields every conditional (the paper's §2.3).
//! * [`Rbm`] — the restricted-Boltzmann-machine log-amplitude of Carleo &
//!   Troyer (2017), §5.1 architecture: unnormalised, so it must be paired
//!   with MCMC sampling.
//!
//! ## Gradient interfaces
//!
//! VQMC needs two different gradient shapes (paper Eq. 5):
//!
//! * the *energy gradient* `2·E[(l(x) − L̄)·∇logψ(x)]` — a **weighted
//!   sum** of per-sample gradients, computed by
//!   [`WaveFunction::weighted_log_psi_grad`] in one backprop pass with
//!   `O(d)` memory at any batch size;
//! * the *Fisher / SR matrix* `S = cov(∇logψ)` — needs the **per-sample
//!   rows** `O(x) = ∇θ logψθ(x)`, provided by
//!   [`WaveFunction::per_sample_grads`] as a `bs × d` matrix (memory
//!   `8·bs·d` bytes; the stochastic-reconfiguration optimiser documents
//!   this bound).
//!
//! Every analytic gradient in this crate is verified in the test-suite
//! against the `vqmc-autodiff` tape *and* central finite differences.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod init;
pub mod made;
pub mod made32;
pub mod masks;
pub mod nade;
pub mod rbm;
pub mod sampling;

use vqmc_tensor::{Matrix, SpinBatch, Vector, Workspace};

pub use made::{Made, MadeWorkspace, MaskedLinear, MAX_LAYERS};
pub use made32::{MadeF32, MadeF32Workspace};
pub use nade::Nade;
pub use rbm::Rbm;
pub use sampling::{BatchedSampling, SamplingEngine};

/// A differentiable trial wavefunction `ψθ : {0,1}ⁿ → ℝ₊`, exposed in
/// log-amplitude form.
pub trait WaveFunction: Send + Sync {
    /// Number of spins `n` the wavefunction is defined over.
    fn num_spins(&self) -> usize;

    /// Total number of variational parameters `d`.
    fn num_params(&self) -> usize;

    /// `logψθ(x)` for every sample in the batch (one forward pass).
    fn log_psi(&self, batch: &SpinBatch) -> Vector;

    /// Weighted gradient `Σ_s w_s ∇θ logψθ(x_s)` — one backprop pass,
    /// `O(d)` memory.  This is the only gradient the plain SGD/Adam
    /// training path needs.
    fn weighted_log_psi_grad(&self, batch: &SpinBatch, weights: &Vector) -> Vector;

    /// Per-sample gradient rows `O_s = ∇θ logψθ(x_s)` as a `bs × d`
    /// matrix.  Required by stochastic reconfiguration; costs
    /// `8·bs·d` bytes.
    fn per_sample_grads(&self, batch: &SpinBatch) -> Matrix;

    /// Flattened copy of the parameters (layout documented per model).
    fn params(&self) -> Vector;

    /// Overwrites the parameters from a flattened vector.
    fn set_params(&mut self, params: &Vector);

    /// In-place parameter update `θ += δ` (the optimiser step).
    fn apply_step(&mut self, delta: &Vector) {
        let mut p = self.params();
        assert_eq!(p.len(), delta.len(), "apply_step: length mismatch");
        p.axpy(1.0, delta);
        self.set_params(&p);
    }

    // ----- allocation-free variants ------------------------------------
    //
    // Each `_into` method writes its result into a caller-owned buffer
    // (resized in place, so a warm buffer is never reallocated) and draws
    // any internal scratch from the caller's [`Workspace`] pool.  The
    // defaults delegate to the allocating methods so every implementor
    // stays correct; [`Made`] and [`Rbm`] override them with genuinely
    // allocation-free passes, which is what makes the training loop in
    // `vqmc-core` heap-quiet at steady state.

    /// [`WaveFunction::log_psi`] into a caller-owned vector.
    fn log_psi_into(&self, batch: &SpinBatch, ws: &mut Workspace, out: &mut Vector) {
        let _ = ws;
        out.copy_from(&self.log_psi(batch));
    }

    /// [`WaveFunction::weighted_log_psi_grad`] into a caller-owned
    /// vector.
    fn weighted_log_psi_grad_into(
        &self,
        batch: &SpinBatch,
        weights: &Vector,
        ws: &mut Workspace,
        out: &mut Vector,
    ) {
        let _ = ws;
        out.copy_from(&self.weighted_log_psi_grad(batch, weights));
    }

    /// [`WaveFunction::per_sample_grads`] into a caller-owned matrix.
    fn per_sample_grads_into(&self, batch: &SpinBatch, ws: &mut Workspace, out: &mut Matrix) {
        let _ = ws;
        out.copy_from(&self.per_sample_grads(batch));
    }

    /// [`WaveFunction::params`] into a caller-owned vector.
    fn params_into(&self, out: &mut Vector) {
        out.copy_from(&self.params());
    }
}

/// A wavefunction whose squared amplitude is an exactly normalised
/// autoregressive distribution — the property that unlocks exact (AUTO)
/// sampling.
pub trait Autoregressive: WaveFunction {
    /// Conditional probabilities `p(xᵢ = 1 | x_{<i})` for every position
    /// and sample, from one forward pass.  Entry `(s, i)` must depend
    /// only on bits `< i` of sample `s` (the autoregressive property,
    /// enforced by MADE's masks and property-tested).
    fn conditionals(&self, batch: &SpinBatch) -> Matrix;

    /// `log πθ(x) = 2·logψθ(x)`: per-sample log-probability under the
    /// normalised model.
    fn log_prob(&self, batch: &SpinBatch) -> Vector {
        let mut lp = self.log_psi(batch);
        lp.scale(2.0);
        lp
    }

    /// [`Autoregressive::conditionals`] into a caller-owned matrix,
    /// drawing scratch from the caller's [`Workspace`].  The default
    /// delegates to the allocating method; [`Made`] overrides it with an
    /// allocation-free pass (the AUTO sampler calls this `n` times per
    /// batch, so it is the hottest entry point in the whole loop).
    fn conditionals_into(&self, batch: &SpinBatch, ws: &mut Workspace, out: &mut Matrix) {
        let _ = ws;
        out.copy_from(&self.conditionals(batch));
    }
}

/// The paper's §5.1 hidden-size policy for MADE: `h = 5(ln n)²`
/// (natural log — the paper's own memory budget at `n = 10⁴`, "hidden
/// layer size 500 at maximum for 10M parameters", pins the base: with
/// `ln`, `5(ln 10⁴)² ≈ 424`; with `log₁₀` it would be 80).
pub fn made_hidden_size(n: usize) -> usize {
    let ln = (n as f64).ln();
    (5.0 * ln * ln).round().max(1.0) as usize
}

/// The paper's §5.1 hidden-size policy for RBM: `h = n`.
pub fn rbm_hidden_size(n: usize) -> usize {
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hidden_size_policies() {
        // Spot values: n = 500 -> 5 (ln 500)^2 ≈ 193.
        let h = made_hidden_size(500);
        assert!((190..=197).contains(&h), "h = {h}");
        // n = 10_000 -> ≈ 424 (the paper's memory-budget anchor).
        let h = made_hidden_size(10_000);
        assert!((420..=428).contains(&h), "h = {h}");
        assert_eq!(rbm_hidden_size(123), 123);
    }

    #[test]
    fn hidden_size_minimum_one() {
        assert!(made_hidden_size(1) >= 1);
        assert!(made_hidden_size(2) >= 1);
    }
}
