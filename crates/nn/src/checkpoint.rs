//! Model checkpointing: save / restore trained wavefunctions.
//!
//! A deliberately tiny self-describing binary format (magic + version +
//! model kind + precision tag + shape + little-endian parameters) so
//! the crate needs no serialisation-format dependency.  Checkpoints are
//! portable across platforms (explicit endianness) and validated on
//! load (magic, version, kind, precision, shape, length).
//!
//! ## Versions
//!
//! * **v1** — `magic | version | kind | n | h | count | f64 params`.
//!   Still accepted on load (treated as f64 storage).
//! * **v2** — inserts one precision byte ([`Precision::tag`]) between
//!   the kind tag and the shape: `0` = f64 storage (8-byte params),
//!   `1` = f32 storage (4-byte params, widened to f64 on load).
//!   Unknown tags are rejected with `InvalidData`.  [`Checkpoint::save`]
//!   writes v2/f64; [`Checkpoint::save_with_precision`] selects the
//!   storage width (an f32 checkpoint of a MADE at `n = 65536, h = 256`
//!   is ~134 MB instead of ~268 MB).
//!
//! Loading always materialises f64 parameters (models train and serve
//! from the same struct); the checkpoint's *storage* precision is
//! surfaced by [`load_any`] so the serving CLI can default its
//! execution precision to match.
//!
//! ```no_run
//! use vqmc_nn::{checkpoint::Checkpoint, Made};
//! let model = Made::new(20, 45, 1);
//! model.save("made.ckpt").unwrap();
//! let restored = Made::load("made.ckpt").unwrap();
//! ```

use std::io::{self, Read, Write};
use std::path::Path;

use vqmc_tensor::{Precision, Vector};

use crate::{Made, Nade, Rbm, WaveFunction};

const MAGIC: &[u8; 4] = b"VQMC";
const VERSION: u32 = 2;
/// Oldest version still accepted on load.
const MIN_VERSION: u32 = 1;

/// A wavefunction that can be persisted and restored.
pub trait Checkpoint: WaveFunction + Sized {
    /// Kind tag written into the file (guards against loading an RBM
    /// checkpoint into a MADE, etc.).
    const KIND: &'static str;

    /// Hidden width (the second shape coordinate of every model here).
    fn hidden(&self) -> usize;

    /// Constructs an uninitialised model of the given shape; its
    /// parameters are immediately overwritten by the loader.
    fn with_shape(n: usize, h: usize) -> Self;

    /// Writes the checkpoint (v2, f64 parameter storage).
    fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.save_with_precision(path, Precision::F64)
    }

    /// Writes the checkpoint with the given parameter storage width.
    /// `F32` narrows each parameter once at save time (half the file
    /// size); loading widens back, so a save→load round trip through
    /// f32 costs one rounding per parameter.
    fn save_with_precision(&self, path: impl AsRef<Path>, precision: Precision) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(MAGIC)?;
        f.write_all(&VERSION.to_le_bytes())?;
        let kind = Self::KIND.as_bytes();
        f.write_all(&(kind.len() as u32).to_le_bytes())?;
        f.write_all(kind)?;
        f.write_all(&[precision.tag()])?;
        f.write_all(&(self.num_spins() as u64).to_le_bytes())?;
        f.write_all(&(self.hidden() as u64).to_le_bytes())?;
        let params = self.params();
        f.write_all(&(params.len() as u64).to_le_bytes())?;
        match precision {
            Precision::F64 => {
                for v in params.iter() {
                    f.write_all(&v.to_le_bytes())?;
                }
            }
            Precision::F32 => {
                for v in params.iter() {
                    f.write_all(&(*v as f32).to_le_bytes())?;
                }
            }
        }
        Ok(())
    }

    /// Reads a checkpoint, validating the header.
    fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = std::fs::File::open(path)?;
        let header = Header::read(&mut f)?;
        if header.kind != Self::KIND {
            return Err(bad(&format!(
                "checkpoint holds a {:?} model, expected {:?}",
                header.kind,
                Self::KIND
            )));
        }
        load_body::<Self>(&mut f, &header)
    }
}

/// The parsed checkpoint header (everything before the parameter block).
struct Header {
    kind: String,
    /// Parameter *storage* width in the file (v1 files are f64).
    precision: Precision,
    n: usize,
    h: usize,
    count: usize,
}

impl Header {
    fn read(f: &mut impl Read) -> io::Result<Header> {
        let mut magic = [0u8; 4];
        f.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a vqmc checkpoint (bad magic)"));
        }
        let version = read_u32(f)?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(bad(&format!("unsupported checkpoint version {version}")));
        }
        let kind_len = read_u32(f)? as usize;
        if kind_len > 64 {
            return Err(bad("implausible kind-tag length"));
        }
        let mut kind = vec![0u8; kind_len];
        f.read_exact(&mut kind)?;
        let kind = String::from_utf8(kind).map_err(|_| bad("kind tag is not UTF-8"))?;
        // v1 has no precision byte: storage is always f64.
        let precision = if version >= 2 {
            let mut tag = [0u8; 1];
            f.read_exact(&mut tag)?;
            Precision::from_tag(tag[0])
                .ok_or_else(|| bad(&format!("unknown precision tag {}", tag[0])))?
        } else {
            Precision::F64
        };
        let n = read_u64(f)? as usize;
        let h = read_u64(f)? as usize;
        let count = read_u64(f)? as usize;
        Ok(Header {
            kind,
            precision,
            n,
            h,
            count,
        })
    }
}

/// Reads the parameter block that follows a validated [`Header`],
/// widening f32 storage to the in-memory f64 parameters.
fn load_body<M: Checkpoint>(f: &mut impl Read, header: &Header) -> io::Result<M> {
    let (n, h, count) = (header.n, header.h, header.count);
    let mut model = M::with_shape(n, h);
    if count != model.num_params() {
        return Err(bad(&format!(
            "parameter count mismatch: file has {count}, shape ({n},{h}) wants {}",
            model.num_params()
        )));
    }
    let width = match header.precision {
        Precision::F64 => 8,
        Precision::F32 => 4,
    };
    let mut buf = vec![0u8; count * width];
    f.read_exact(&mut buf)?;
    let params = Vector(match header.precision {
        Precision::F64 => buf
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect(),
        Precision::F32 => buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")) as f64)
            .collect(),
    });
    if !params.all_finite() {
        return Err(bad("checkpoint contains non-finite parameters"));
    }
    model.set_params(&params);
    Ok(model)
}

/// A checkpointed model of any supported kind, resolved from the file's
/// own kind tag — the load hook servers and CLI tools use when the
/// model architecture is not known ahead of time.
#[derive(Debug)]
pub enum AnyModel {
    /// A MADE autoregressive wavefunction.
    Made(Made),
    /// An RBM wavefunction.
    Rbm(Rbm),
    /// A NADE autoregressive wavefunction.
    Nade(Nade),
}

impl AnyModel {
    /// The kind tag of the wrapped model.
    pub fn kind(&self) -> &'static str {
        match self {
            AnyModel::Made(_) => Made::KIND,
            AnyModel::Rbm(_) => Rbm::KIND,
            AnyModel::Nade(_) => Nade::KIND,
        }
    }

    /// The wrapped model as a [`WaveFunction`] trait object.
    pub fn as_wavefunction(&self) -> &dyn WaveFunction {
        match self {
            AnyModel::Made(m) => m,
            AnyModel::Rbm(m) => m,
            AnyModel::Nade(m) => m,
        }
    }

    /// The wrapped model as a [`BatchedSampling`] trait object — the
    /// unified sampling surface, so callers never match on the
    /// architecture to draw configurations.
    pub fn as_batched_sampling(&self) -> &dyn crate::sampling::BatchedSampling {
        match self {
            AnyModel::Made(m) => m,
            AnyModel::Rbm(m) => m,
            AnyModel::Nade(m) => m,
        }
    }

    /// Number of spins of the wrapped model.
    pub fn num_spins(&self) -> usize {
        self.as_wavefunction().num_spins()
    }
}

/// Loads a checkpoint of *any* supported kind, dispatching on the kind
/// tag in the file header (single header read — no try-each-kind
/// guessing, and error messages name the actual problem).  Also returns
/// the file's parameter *storage* precision, so serving callers can
/// default their execution precision to match the checkpoint.
pub fn load_any(path: impl AsRef<Path>) -> io::Result<(AnyModel, Precision)> {
    let mut f = std::fs::File::open(path)?;
    let header = Header::read(&mut f)?;
    let model = match header.kind.as_str() {
        "made" => AnyModel::Made(load_body(&mut f, &header)?),
        "rbm" => AnyModel::Rbm(load_body(&mut f, &header)?),
        "nade" => AnyModel::Nade(load_body(&mut f, &header)?),
        other => return Err(bad(&format!("unknown model kind {other:?} in checkpoint"))),
    };
    Ok((model, header.precision))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_u32(f: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    f.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(f: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    f.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

impl Checkpoint for Made {
    const KIND: &'static str = "made";
    fn hidden(&self) -> usize {
        self.hidden_size()
    }
    fn with_shape(n: usize, h: usize) -> Self {
        Made::new(n, h, 0)
    }
}

impl Checkpoint for Rbm {
    const KIND: &'static str = "rbm";
    fn hidden(&self) -> usize {
        self.hidden_size()
    }
    fn with_shape(n: usize, h: usize) -> Self {
        Rbm::new(n, h, 0)
    }
}

impl Checkpoint for Nade {
    const KIND: &'static str = "nade";
    fn hidden(&self) -> usize {
        self.hidden_size()
    }
    fn with_shape(n: usize, h: usize) -> Self {
        Nade::new(n, h, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_tensor::batch::enumerate_configs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vqmc-ckpt-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn made_round_trip_preserves_amplitudes() {
        let path = tmp("made");
        let model = Made::new(6, 9, 17);
        model.save(&path).unwrap();
        let restored = Made::load(&path).unwrap();
        let batch = enumerate_configs(6);
        let a = model.log_psi(&batch);
        let b = restored.log_psi(&batch);
        for s in 0..batch.batch_size() {
            assert_eq!(a[s], b[s], "sample {s}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rbm_and_nade_round_trip() {
        let p1 = tmp("rbm");
        let rbm = Rbm::new(5, 7, 3);
        rbm.save(&p1).unwrap();
        let r2 = Rbm::load(&p1).unwrap();
        assert_eq!(rbm.params().as_slice(), r2.params().as_slice());
        std::fs::remove_file(&p1).ok();

        let p2 = tmp("nade");
        let nade = Nade::new(5, 6, 4);
        nade.save(&p2).unwrap();
        let n2 = Nade::load(&p2).unwrap();
        assert_eq!(nade.params().as_slice(), n2.params().as_slice());
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn load_any_dispatches_on_kind_tag() {
        let path = tmp("any");
        let savers: Vec<(Box<dyn Fn(&std::path::Path)>, &str)> = vec![
            (
                Box::new(|p: &std::path::Path| Made::new(5, 8, 2).save(p).unwrap()),
                "made",
            ),
            (
                Box::new(|p: &std::path::Path| Rbm::new(5, 5, 2).save(p).unwrap()),
                "rbm",
            ),
            (
                Box::new(|p: &std::path::Path| Nade::new(5, 4, 2).save(p).unwrap()),
                "nade",
            ),
        ];
        for (save, expect) in savers {
            save(&path);
            let (any, precision) = load_any(&path).unwrap();
            assert_eq!(any.kind(), expect);
            assert_eq!(any.num_spins(), 5);
            assert_eq!(precision, Precision::F64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_any_round_trips_parameters() {
        let path = tmp("any-params");
        let model = Made::new(6, 9, 42);
        model.save(&path).unwrap();
        match load_any(&path).unwrap() {
            (AnyModel::Made(m), Precision::F64) => {
                assert_eq!(m.params().as_slice(), model.params().as_slice())
            }
            (other, p) => panic!("expected made/f64, got {}/{p:?}", other.kind()),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn f32_storage_round_trips_within_one_rounding() {
        let path = tmp("f32-storage");
        let model = Made::new(6, 9, 23);
        model.save_with_precision(&path, Precision::F32).unwrap();
        // File is ~half the f64 size (header + 4-byte params).
        let f32_len = std::fs::metadata(&path).unwrap().len();
        let (any, precision) = load_any(&path).unwrap();
        assert_eq!(precision, Precision::F32);
        let restored = match any {
            AnyModel::Made(m) => m,
            other => panic!("expected made, got {}", other.kind()),
        };
        // Widened params equal the narrowed originals exactly (one
        // rounding at save, exact widening at load).
        for (a, b) in model.params().iter().zip(restored.params().iter()) {
            assert_eq!(*a as f32, *b as f32);
            assert_eq!(*b, (*a as f32) as f64);
        }
        model.save(&path).unwrap();
        let f64_len = std::fs::metadata(&path).unwrap().len();
        assert!(f32_len < f64_len * 2 / 3, "{f32_len} vs {f64_len}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn f32_save_then_typed_load_works() {
        let path = tmp("f32-typed");
        let model = Made::new(5, 7, 9);
        model.save_with_precision(&path, Precision::F32).unwrap();
        let restored = Made::load(&path).unwrap();
        assert_eq!(restored.num_spins(), 5);
        assert_eq!(restored.hidden_size(), 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_precision_tag_rejected() {
        let path = tmp("bad-precision");
        Made::new(4, 5, 1).save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The precision byte sits right after magic(4) + version(4) +
        // kind_len(4) + kind("made" = 4).
        let off = 4 + 4 + 4 + 4;
        assert_eq!(bytes[off], Precision::F64.tag());
        bytes[off] = 7;
        std::fs::write(&path, &bytes).unwrap();
        let err = Made::load(&path).unwrap_err();
        assert!(err.to_string().contains("precision tag"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_checkpoints_still_load_as_f64() {
        // Hand-assemble a v1 file (no precision byte) and check both the
        // typed and any-kind loaders accept it.
        let path = tmp("v1-compat");
        let model = Made::new(4, 6, 11);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"VQMC");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(b"made");
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&6u64.to_le_bytes());
        let params = model.params();
        bytes.extend_from_slice(&(params.len() as u64).to_le_bytes());
        for v in params.iter() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let restored = Made::load(&path).unwrap();
        assert_eq!(restored.params().as_slice(), params.as_slice());
        let (_, precision) = load_any(&path).unwrap();
        assert_eq!(precision, Precision::F64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kind_mismatch_rejected() {
        let path = tmp("kind-mismatch");
        Made::new(4, 5, 1).save(&path).unwrap();
        let err = Rbm::load(&path).unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_magic_rejected() {
        let path = tmp("bad-magic");
        std::fs::write(&path, b"NOPE-this-is-not-a-checkpoint").unwrap();
        let err = Made::load(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let path = tmp("truncated");
        Made::new(4, 5, 1).save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(Made::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
