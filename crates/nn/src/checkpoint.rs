//! Model checkpointing: save / restore trained wavefunctions.
//!
//! A deliberately tiny self-describing binary format (magic + version +
//! model kind + shape + little-endian `f64` parameters) so the crate
//! needs no serialisation-format dependency.  Checkpoints are portable
//! across platforms (explicit endianness) and validated on load (magic,
//! version, kind, shape, length).
//!
//! ```no_run
//! use vqmc_nn::{checkpoint::Checkpoint, Made};
//! let model = Made::new(20, 45, 1);
//! model.save("made.ckpt").unwrap();
//! let restored = Made::load("made.ckpt").unwrap();
//! ```

use std::io::{self, Read, Write};
use std::path::Path;

use vqmc_tensor::Vector;

use crate::{Made, Nade, Rbm, WaveFunction};

const MAGIC: &[u8; 4] = b"VQMC";
const VERSION: u32 = 1;

/// A wavefunction that can be persisted and restored.
pub trait Checkpoint: WaveFunction + Sized {
    /// Kind tag written into the file (guards against loading an RBM
    /// checkpoint into a MADE, etc.).
    const KIND: &'static str;

    /// Hidden width (the second shape coordinate of every model here).
    fn hidden(&self) -> usize;

    /// Constructs an uninitialised model of the given shape; its
    /// parameters are immediately overwritten by the loader.
    fn with_shape(n: usize, h: usize) -> Self;

    /// Writes the checkpoint.
    fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(MAGIC)?;
        f.write_all(&VERSION.to_le_bytes())?;
        let kind = Self::KIND.as_bytes();
        f.write_all(&(kind.len() as u32).to_le_bytes())?;
        f.write_all(kind)?;
        f.write_all(&(self.num_spins() as u64).to_le_bytes())?;
        f.write_all(&(self.hidden() as u64).to_le_bytes())?;
        let params = self.params();
        f.write_all(&(params.len() as u64).to_le_bytes())?;
        for v in params.iter() {
            f.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }

    /// Reads a checkpoint, validating the header.
    fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = std::fs::File::open(path)?;
        let header = Header::read(&mut f)?;
        if header.kind != Self::KIND {
            return Err(bad(&format!(
                "checkpoint holds a {:?} model, expected {:?}",
                header.kind,
                Self::KIND
            )));
        }
        load_body::<Self>(&mut f, &header)
    }
}

/// The parsed checkpoint header (everything before the parameter block).
struct Header {
    kind: String,
    n: usize,
    h: usize,
    count: usize,
}

impl Header {
    fn read(f: &mut impl Read) -> io::Result<Header> {
        let mut magic = [0u8; 4];
        f.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a vqmc checkpoint (bad magic)"));
        }
        let version = read_u32(f)?;
        if version != VERSION {
            return Err(bad(&format!("unsupported checkpoint version {version}")));
        }
        let kind_len = read_u32(f)? as usize;
        if kind_len > 64 {
            return Err(bad("implausible kind-tag length"));
        }
        let mut kind = vec![0u8; kind_len];
        f.read_exact(&mut kind)?;
        let kind = String::from_utf8(kind).map_err(|_| bad("kind tag is not UTF-8"))?;
        let n = read_u64(f)? as usize;
        let h = read_u64(f)? as usize;
        let count = read_u64(f)? as usize;
        Ok(Header { kind, n, h, count })
    }
}

/// Reads the parameter block that follows a validated [`Header`].
fn load_body<M: Checkpoint>(f: &mut impl Read, header: &Header) -> io::Result<M> {
    let (n, h, count) = (header.n, header.h, header.count);
    let mut model = M::with_shape(n, h);
    if count != model.num_params() {
        return Err(bad(&format!(
            "parameter count mismatch: file has {count}, shape ({n},{h}) wants {}",
            model.num_params()
        )));
    }
    let mut buf = vec![0u8; count * 8];
    f.read_exact(&mut buf)?;
    let params = Vector(
        buf.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect(),
    );
    if !params.all_finite() {
        return Err(bad("checkpoint contains non-finite parameters"));
    }
    model.set_params(&params);
    Ok(model)
}

/// A checkpointed model of any supported kind, resolved from the file's
/// own kind tag — the load hook servers and CLI tools use when the
/// model architecture is not known ahead of time.
#[derive(Debug)]
pub enum AnyModel {
    /// A MADE autoregressive wavefunction.
    Made(Made),
    /// An RBM wavefunction.
    Rbm(Rbm),
    /// A NADE autoregressive wavefunction.
    Nade(Nade),
}

impl AnyModel {
    /// The kind tag of the wrapped model.
    pub fn kind(&self) -> &'static str {
        match self {
            AnyModel::Made(_) => Made::KIND,
            AnyModel::Rbm(_) => Rbm::KIND,
            AnyModel::Nade(_) => Nade::KIND,
        }
    }

    /// The wrapped model as a [`WaveFunction`] trait object.
    pub fn as_wavefunction(&self) -> &dyn WaveFunction {
        match self {
            AnyModel::Made(m) => m,
            AnyModel::Rbm(m) => m,
            AnyModel::Nade(m) => m,
        }
    }

    /// The wrapped model as a [`BatchedSampling`] trait object — the
    /// unified sampling surface, so callers never match on the
    /// architecture to draw configurations.
    pub fn as_batched_sampling(&self) -> &dyn crate::sampling::BatchedSampling {
        match self {
            AnyModel::Made(m) => m,
            AnyModel::Rbm(m) => m,
            AnyModel::Nade(m) => m,
        }
    }

    /// Number of spins of the wrapped model.
    pub fn num_spins(&self) -> usize {
        self.as_wavefunction().num_spins()
    }
}

/// Loads a checkpoint of *any* supported kind, dispatching on the kind
/// tag in the file header (single header read — no try-each-kind
/// guessing, and error messages name the actual problem).
pub fn load_any(path: impl AsRef<Path>) -> io::Result<AnyModel> {
    let mut f = std::fs::File::open(path)?;
    let header = Header::read(&mut f)?;
    match header.kind.as_str() {
        "made" => Ok(AnyModel::Made(load_body(&mut f, &header)?)),
        "rbm" => Ok(AnyModel::Rbm(load_body(&mut f, &header)?)),
        "nade" => Ok(AnyModel::Nade(load_body(&mut f, &header)?)),
        other => Err(bad(&format!("unknown model kind {other:?} in checkpoint"))),
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_u32(f: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    f.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(f: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    f.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

impl Checkpoint for Made {
    const KIND: &'static str = "made";
    fn hidden(&self) -> usize {
        self.hidden_size()
    }
    fn with_shape(n: usize, h: usize) -> Self {
        Made::new(n, h, 0)
    }
}

impl Checkpoint for Rbm {
    const KIND: &'static str = "rbm";
    fn hidden(&self) -> usize {
        self.hidden_size()
    }
    fn with_shape(n: usize, h: usize) -> Self {
        Rbm::new(n, h, 0)
    }
}

impl Checkpoint for Nade {
    const KIND: &'static str = "nade";
    fn hidden(&self) -> usize {
        self.hidden_size()
    }
    fn with_shape(n: usize, h: usize) -> Self {
        Nade::new(n, h, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_tensor::batch::enumerate_configs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vqmc-ckpt-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn made_round_trip_preserves_amplitudes() {
        let path = tmp("made");
        let model = Made::new(6, 9, 17);
        model.save(&path).unwrap();
        let restored = Made::load(&path).unwrap();
        let batch = enumerate_configs(6);
        let a = model.log_psi(&batch);
        let b = restored.log_psi(&batch);
        for s in 0..batch.batch_size() {
            assert_eq!(a[s], b[s], "sample {s}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rbm_and_nade_round_trip() {
        let p1 = tmp("rbm");
        let rbm = Rbm::new(5, 7, 3);
        rbm.save(&p1).unwrap();
        let r2 = Rbm::load(&p1).unwrap();
        assert_eq!(rbm.params().as_slice(), r2.params().as_slice());
        std::fs::remove_file(&p1).ok();

        let p2 = tmp("nade");
        let nade = Nade::new(5, 6, 4);
        nade.save(&p2).unwrap();
        let n2 = Nade::load(&p2).unwrap();
        assert_eq!(nade.params().as_slice(), n2.params().as_slice());
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn load_any_dispatches_on_kind_tag() {
        let path = tmp("any");
        let savers: Vec<(Box<dyn Fn(&std::path::Path)>, &str)> = vec![
            (
                Box::new(|p: &std::path::Path| Made::new(5, 8, 2).save(p).unwrap()),
                "made",
            ),
            (
                Box::new(|p: &std::path::Path| Rbm::new(5, 5, 2).save(p).unwrap()),
                "rbm",
            ),
            (
                Box::new(|p: &std::path::Path| Nade::new(5, 4, 2).save(p).unwrap()),
                "nade",
            ),
        ];
        for (save, expect) in savers {
            save(&path);
            let any = load_any(&path).unwrap();
            assert_eq!(any.kind(), expect);
            assert_eq!(any.num_spins(), 5);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_any_round_trips_parameters() {
        let path = tmp("any-params");
        let model = Made::new(6, 9, 42);
        model.save(&path).unwrap();
        match load_any(&path).unwrap() {
            AnyModel::Made(m) => {
                assert_eq!(m.params().as_slice(), model.params().as_slice())
            }
            other => panic!("expected made, got {}", other.kind()),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kind_mismatch_rejected() {
        let path = tmp("kind-mismatch");
        Made::new(4, 5, 1).save(&path).unwrap();
        let err = Rbm::load(&path).unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_magic_rejected() {
        let path = tmp("bad-magic");
        std::fs::write(&path, b"NOPE-this-is-not-a-checkpoint").unwrap();
        let err = Made::load(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let path = tmp("truncated");
        Made::new(4, 5, 1).save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(Made::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
