//! Model checkpointing: save / restore trained wavefunctions.
//!
//! A deliberately tiny self-describing binary format (magic + version +
//! model kind + precision tag + shape + little-endian parameters) so
//! the crate needs no serialisation-format dependency.  Checkpoints are
//! portable across platforms (explicit endianness) and validated on
//! load (magic, version, kind, precision, shape, length).  Loading is
//! panic-free: truncated, corrupted or adversarially-shaped files come
//! back as `InvalidData`/`UnexpectedEof` errors, and every allocation
//! is bounded by validated shape arithmetic *before* it happens — a
//! serve `Reload` of a bad file answers an error frame instead of
//! taking the server down.
//!
//! ## Versions
//!
//! * **v1** — `magic | version | kind | n | h | count | f64 params`.
//!   Still accepted on load (treated as f64 storage, depth 1).
//! * **v2** — inserts one precision byte ([`Precision::tag`]) between
//!   the kind tag and the shape: `0` = f64 storage (8-byte params),
//!   `1` = f32 storage (4-byte params, widened to f64 on load).
//!   Unknown tags are rejected with `InvalidData`.
//! * **v3** — deep stacks: the single hidden width becomes a layer
//!   list, `… | n | L | h₁ … h_L | count | params`.  Saves only use v3
//!   when `L > 1`: a depth-1 model keeps writing v2, byte-identical to
//!   the previous release, and v1/v2 files load as depth-1 stacks.
//!
//! [`Checkpoint::save`] writes f64 storage;
//! [`Checkpoint::save_with_precision`] selects the storage width (an
//! f32 checkpoint of a MADE at `n = 65536, h = 256` is ~134 MB instead
//! of ~268 MB).  Loading always materialises f64 parameters (models
//! train and serve from the same struct); the checkpoint's *storage*
//! precision is surfaced by [`load_any`] so the serving CLI can default
//! its execution precision to match.
//!
//! ```no_run
//! use vqmc_nn::{checkpoint::Checkpoint, Made};
//! let model = Made::with_hidden(20, &[45, 30], 1);
//! model.save("made.ckpt").unwrap();
//! let restored = Made::load("made.ckpt").unwrap();
//! ```

use std::io::{self, Read, Write};
use std::path::Path;

use vqmc_tensor::{Precision, Vector};

use crate::{Made, Nade, Rbm, WaveFunction};

const MAGIC: &[u8; 4] = b"VQMC";
/// Newest version the loader accepts; the writer emits v2 for depth-1
/// models (byte compatibility) and v3 for deep stacks.
const VERSION: u32 = 3;
/// Oldest version still accepted on load.
const MIN_VERSION: u32 = 1;

/// Plausibility bounds enforced *before* any shape-derived allocation:
/// a malformed header cannot make the loader construct a huge model or
/// parameter buffer.
const MAX_SPINS: usize = 1 << 24;
const MAX_HIDDEN: usize = 1 << 24;
const MAX_PARAM_COUNT: usize = 1 << 28;

/// A wavefunction that can be persisted and restored.
pub trait Checkpoint: WaveFunction + Sized {
    /// Kind tag written into the file (guards against loading an RBM
    /// checkpoint into a MADE, etc.).
    const KIND: &'static str;

    /// Hidden widths, input to output (single-layer models report one).
    fn hidden_layers(&self) -> Vec<usize>;

    /// The parameter count a model of this shape would have, with
    /// checked arithmetic — `None` on overflow.  Called on *untrusted*
    /// header values before the model is constructed, so it must not
    /// allocate proportionally to the shape.
    fn param_count(n: usize, hidden: &[usize]) -> Option<usize>;

    /// Constructs an uninitialised model of the given shape; its
    /// parameters are immediately overwritten by the loader.  Errors if
    /// the kind does not support the shape (e.g. a multi-layer hidden
    /// list for a single-layer architecture).
    fn with_shape(n: usize, hidden: &[usize]) -> io::Result<Self>;

    /// Writes the checkpoint (f64 parameter storage).
    fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.save_with_precision(path, Precision::F64)
    }

    /// Writes the checkpoint with the given parameter storage width.
    /// `F32` narrows each parameter once at save time (half the file
    /// size); loading widens back, so a save→load round trip through
    /// f32 costs one rounding per parameter.
    fn save_with_precision(&self, path: impl AsRef<Path>, precision: Precision) -> io::Result<()> {
        let hidden = self.hidden_layers();
        let version = if hidden.len() == 1 { 2u32 } else { 3u32 };
        let mut f = std::fs::File::create(path)?;
        f.write_all(MAGIC)?;
        f.write_all(&version.to_le_bytes())?;
        let kind = Self::KIND.as_bytes();
        f.write_all(&(kind.len() as u32).to_le_bytes())?;
        f.write_all(kind)?;
        f.write_all(&[precision.tag()])?;
        f.write_all(&(self.num_spins() as u64).to_le_bytes())?;
        match version {
            2 => f.write_all(&(hidden[0] as u64).to_le_bytes())?,
            _ => {
                f.write_all(&(hidden.len() as u64).to_le_bytes())?;
                for &h in &hidden {
                    f.write_all(&(h as u64).to_le_bytes())?;
                }
            }
        }
        let params = self.params();
        f.write_all(&(params.len() as u64).to_le_bytes())?;
        match precision {
            Precision::F64 => {
                for v in params.iter() {
                    f.write_all(&v.to_le_bytes())?;
                }
            }
            Precision::F32 => {
                for v in params.iter() {
                    f.write_all(&(*v as f32).to_le_bytes())?;
                }
            }
        }
        Ok(())
    }

    /// Reads a checkpoint, validating the header.
    fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = std::fs::File::open(path)?;
        let header = Header::read(&mut f)?;
        if header.kind != Self::KIND {
            return Err(bad(&format!(
                "checkpoint holds a {:?} model, expected {:?}",
                header.kind,
                Self::KIND
            )));
        }
        load_body::<Self>(&mut f, &header)
    }
}

/// The parsed checkpoint header (everything before the parameter block).
struct Header {
    kind: String,
    /// Parameter *storage* width in the file (v1 files are f64).
    precision: Precision,
    n: usize,
    /// Hidden widths, input to output (v1/v2 files carry exactly one).
    hidden: Vec<usize>,
    count: usize,
}

impl Header {
    fn read(f: &mut impl Read) -> io::Result<Header> {
        let mut magic = [0u8; 4];
        f.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a vqmc checkpoint (bad magic)"));
        }
        let version = read_u32(f)?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(bad(&format!("unsupported checkpoint version {version}")));
        }
        let kind_len = read_u32(f)? as usize;
        if kind_len > 64 {
            return Err(bad("implausible kind-tag length"));
        }
        let mut kind = vec![0u8; kind_len];
        f.read_exact(&mut kind)?;
        let kind = String::from_utf8(kind).map_err(|_| bad("kind tag is not UTF-8"))?;
        // v1 has no precision byte: storage is always f64.
        let precision = if version >= 2 {
            let mut tag = [0u8; 1];
            f.read_exact(&mut tag)?;
            Precision::from_tag(tag[0])
                .ok_or_else(|| bad(&format!("unknown precision tag {}", tag[0])))?
        } else {
            Precision::F64
        };
        let n = read_u64(f)? as usize;
        if n == 0 || n > MAX_SPINS {
            return Err(bad(&format!("implausible spin count {n}")));
        }
        // v1/v2 carry one hidden width; v3 a layer count + list.
        let hidden = if version >= 3 {
            let layers = read_u64(f)? as usize;
            if layers == 0 || layers >= crate::MAX_LAYERS {
                return Err(bad(&format!("implausible hidden-layer count {layers}")));
            }
            let mut hidden = Vec::with_capacity(layers);
            for _ in 0..layers {
                hidden.push(read_hidden(f)?);
            }
            hidden
        } else {
            vec![read_hidden(f)?]
        };
        let count = read_u64(f)? as usize;
        if count > MAX_PARAM_COUNT {
            return Err(bad(&format!("implausible parameter count {count}")));
        }
        Ok(Header {
            kind,
            precision,
            n,
            hidden,
            count,
        })
    }
}

fn read_hidden(f: &mut impl Read) -> io::Result<usize> {
    let h = read_u64(f)? as usize;
    if h == 0 || h > MAX_HIDDEN {
        return Err(bad(&format!("implausible hidden width {h}")));
    }
    Ok(h)
}

/// Reads the parameter block that follows a validated [`Header`],
/// widening f32 storage to the in-memory f64 parameters.
///
/// The declared count is checked against the shape's expected parameter
/// count (checked arithmetic, no allocation) *before* the model or the
/// read buffer is built, so a malformed header cannot trigger an
/// oversized allocation, and every byte-level conversion is fallible
/// rather than panicking.
fn load_body<M: Checkpoint>(f: &mut impl Read, header: &Header) -> io::Result<M> {
    let (n, count) = (header.n, header.count);
    let hidden = &header.hidden;
    let expected = M::param_count(n, hidden)
        .ok_or_else(|| bad(&format!("parameter count overflows for shape ({n},{hidden:?})")))?;
    if count != expected {
        return Err(bad(&format!(
            "parameter count mismatch: file has {count}, shape ({n},{hidden:?}) wants {expected}"
        )));
    }
    if expected > MAX_PARAM_COUNT {
        return Err(bad(&format!("implausible parameter count {expected}")));
    }
    let width = match header.precision {
        Precision::F64 => 8,
        Precision::F32 => 4,
    };
    let mut buf = vec![0u8; count * width];
    f.read_exact(&mut buf)?;
    let mut vals = Vec::with_capacity(count);
    match header.precision {
        Precision::F64 => {
            for c in buf.chunks_exact(8) {
                let arr: [u8; 8] =
                    c.try_into().map_err(|_| bad("malformed parameter chunk"))?;
                vals.push(f64::from_le_bytes(arr));
            }
        }
        Precision::F32 => {
            for c in buf.chunks_exact(4) {
                let arr: [u8; 4] =
                    c.try_into().map_err(|_| bad("malformed parameter chunk"))?;
                vals.push(f32::from_le_bytes(arr) as f64);
            }
        }
    }
    if vals.len() != count {
        return Err(bad("parameter block does not match declared count"));
    }
    let params = Vector(vals);
    if !params.all_finite() {
        return Err(bad("checkpoint contains non-finite parameters"));
    }
    let mut model = M::with_shape(n, hidden)?;
    model.set_params(&params);
    Ok(model)
}

/// A checkpointed model of any supported kind, resolved from the file's
/// own kind tag — the load hook servers and CLI tools use when the
/// model architecture is not known ahead of time.
#[derive(Debug)]
pub enum AnyModel {
    /// A MADE autoregressive wavefunction.
    Made(Made),
    /// An RBM wavefunction.
    Rbm(Rbm),
    /// A NADE autoregressive wavefunction.
    Nade(Nade),
}

impl AnyModel {
    /// The kind tag of the wrapped model.
    pub fn kind(&self) -> &'static str {
        match self {
            AnyModel::Made(_) => Made::KIND,
            AnyModel::Rbm(_) => Rbm::KIND,
            AnyModel::Nade(_) => Nade::KIND,
        }
    }

    /// The wrapped model as a [`WaveFunction`] trait object.
    pub fn as_wavefunction(&self) -> &dyn WaveFunction {
        match self {
            AnyModel::Made(m) => m,
            AnyModel::Rbm(m) => m,
            AnyModel::Nade(m) => m,
        }
    }

    /// The wrapped model as a [`BatchedSampling`] trait object — the
    /// unified sampling surface, so callers never match on the
    /// architecture to draw configurations.
    pub fn as_batched_sampling(&self) -> &dyn crate::sampling::BatchedSampling {
        match self {
            AnyModel::Made(m) => m,
            AnyModel::Rbm(m) => m,
            AnyModel::Nade(m) => m,
        }
    }

    /// Number of spins of the wrapped model.
    pub fn num_spins(&self) -> usize {
        self.as_wavefunction().num_spins()
    }
}

/// Loads a checkpoint of *any* supported kind, dispatching on the kind
/// tag in the file header (single header read — no try-each-kind
/// guessing, and error messages name the actual problem).  Also returns
/// the file's parameter *storage* precision, so serving callers can
/// default their execution precision to match the checkpoint.
pub fn load_any(path: impl AsRef<Path>) -> io::Result<(AnyModel, Precision)> {
    let mut f = std::fs::File::open(path)?;
    let header = Header::read(&mut f)?;
    let model = match header.kind.as_str() {
        "made" => AnyModel::Made(load_body(&mut f, &header)?),
        "rbm" => AnyModel::Rbm(load_body(&mut f, &header)?),
        "nade" => AnyModel::Nade(load_body(&mut f, &header)?),
        other => return Err(bad(&format!("unknown model kind {other:?} in checkpoint"))),
    };
    Ok((model, header.precision))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_u32(f: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    f.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(f: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    f.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Checked `Σ_l out_l·(in_l + 1)` over the dimension chain
/// `n → hidden… → n` — the MADE stack's parameter count.
fn stack_param_count(n: usize, hidden: &[usize]) -> Option<usize> {
    let mut total = 0usize;
    let mut in_dim = n;
    for &h in hidden {
        total = total.checked_add(h.checked_mul(in_dim.checked_add(1)?)?)?;
        in_dim = h;
    }
    total.checked_add(n.checked_mul(in_dim.checked_add(1)?)?)
}

fn require_single_layer(kind: &str, hidden: &[usize]) -> io::Result<usize> {
    match hidden {
        [h] => Ok(*h),
        _ => Err(bad(&format!(
            "{kind} checkpoints are single-layer, file declares {} hidden layers",
            hidden.len()
        ))),
    }
}

impl Checkpoint for Made {
    const KIND: &'static str = "made";
    fn hidden_layers(&self) -> Vec<usize> {
        self.hidden_sizes().to_vec()
    }
    fn param_count(n: usize, hidden: &[usize]) -> Option<usize> {
        stack_param_count(n, hidden)
    }
    fn with_shape(n: usize, hidden: &[usize]) -> io::Result<Self> {
        if hidden.len() >= crate::MAX_LAYERS {
            return Err(bad(&format!(
                "made checkpoint declares {} hidden layers, max {}",
                hidden.len(),
                crate::MAX_LAYERS - 1
            )));
        }
        Ok(Made::with_hidden(n, hidden, 0))
    }
}

impl Checkpoint for Rbm {
    const KIND: &'static str = "rbm";
    fn hidden_layers(&self) -> Vec<usize> {
        vec![self.hidden_size()]
    }
    fn param_count(n: usize, hidden: &[usize]) -> Option<usize> {
        let h = *hidden.first()?;
        if hidden.len() != 1 {
            return None;
        }
        // h·n + h + n + 1
        h.checked_mul(n)?
            .checked_add(h)?
            .checked_add(n)?
            .checked_add(1)
    }
    fn with_shape(n: usize, hidden: &[usize]) -> io::Result<Self> {
        Ok(Rbm::new(n, require_single_layer("rbm", hidden)?, 0))
    }
}

impl Checkpoint for Nade {
    const KIND: &'static str = "nade";
    fn hidden_layers(&self) -> Vec<usize> {
        vec![self.hidden_size()]
    }
    fn param_count(n: usize, hidden: &[usize]) -> Option<usize> {
        let h = *hidden.first()?;
        if hidden.len() != 1 {
            return None;
        }
        // 2·h·n + h + n
        h.checked_mul(n)?
            .checked_mul(2)?
            .checked_add(h)?
            .checked_add(n)
    }
    fn with_shape(n: usize, hidden: &[usize]) -> io::Result<Self> {
        Ok(Nade::new(n, require_single_layer("nade", hidden)?, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_tensor::batch::enumerate_configs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vqmc-ckpt-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn made_round_trip_preserves_amplitudes() {
        let path = tmp("made");
        let model = Made::new(6, 9, 17);
        model.save(&path).unwrap();
        let restored = Made::load(&path).unwrap();
        let batch = enumerate_configs(6);
        let a = model.log_psi(&batch);
        let b = restored.log_psi(&batch);
        for s in 0..batch.batch_size() {
            assert_eq!(a[s], b[s], "sample {s}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn depth1_save_bytes_unchanged_from_v2() {
        // Hand-assemble the exact v2 byte stream the previous release
        // wrote and require the new writer to reproduce it bit for bit.
        let path = tmp("v2-bytes");
        let model = Made::new(4, 6, 11);
        model.save(&path).unwrap();
        let written = std::fs::read(&path).unwrap();
        let mut expect = Vec::new();
        expect.extend_from_slice(b"VQMC");
        expect.extend_from_slice(&2u32.to_le_bytes());
        expect.extend_from_slice(&4u32.to_le_bytes());
        expect.extend_from_slice(b"made");
        expect.push(Precision::F64.tag());
        expect.extend_from_slice(&4u64.to_le_bytes());
        expect.extend_from_slice(&6u64.to_le_bytes());
        let params = model.params();
        expect.extend_from_slice(&(params.len() as u64).to_le_bytes());
        for v in params.iter() {
            expect.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(written, expect);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deep_round_trip_preserves_params_exactly() {
        // v3: a depth-2 stack round-trips weights exactly, through both
        // the typed and the any-kind loader, in both storage widths.
        let path = tmp("deep");
        let model = Made::with_hidden(6, &[9, 7], 17);
        model.save(&path).unwrap();
        let restored = Made::load(&path).unwrap();
        assert_eq!(restored.hidden_sizes(), model.hidden_sizes());
        assert_eq!(restored.params().as_slice(), model.params().as_slice());
        let (any, precision) = load_any(&path).unwrap();
        assert_eq!(precision, Precision::F64);
        match any {
            AnyModel::Made(m) => {
                assert_eq!(m.params().as_slice(), model.params().as_slice())
            }
            other => panic!("expected made, got {}", other.kind()),
        }
        model.save_with_precision(&path, Precision::F32).unwrap();
        let narrowed = Made::load(&path).unwrap();
        for (a, b) in model.params().iter().zip(narrowed.params().iter()) {
            assert_eq!(*b, (*a as f32) as f64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn depth1_v3_header_loads_to_same_weights_as_v2() {
        // A v3 file declaring a single hidden layer is legal and loads
        // to exactly the weights its v2 twin holds.
        let path = tmp("v3-depth1");
        let model = Made::new(5, 8, 3);
        let params = model.params();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"VQMC");
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(b"made");
        bytes.push(Precision::F64.tag());
        bytes.extend_from_slice(&5u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes()); // one hidden layer
        bytes.extend_from_slice(&8u64.to_le_bytes());
        bytes.extend_from_slice(&(params.len() as u64).to_le_bytes());
        for v in params.iter() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let restored = Made::load(&path).unwrap();
        assert_eq!(restored.hidden_sizes(), &[8]);
        assert_eq!(restored.params().as_slice(), params.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_layer_kinds_reject_deep_headers() {
        // A v3 multi-layer header with an rbm/nade kind tag must be a
        // structured error, not a panic or a silent reshape.
        let path = tmp("deep-rbm");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"VQMC");
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(b"rbm");
        bytes.push(Precision::F64.tag());
        bytes.extend_from_slice(&5u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = Rbm::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(load_any(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rbm_and_nade_round_trip() {
        let p1 = tmp("rbm");
        let rbm = Rbm::new(5, 7, 3);
        rbm.save(&p1).unwrap();
        let r2 = Rbm::load(&p1).unwrap();
        assert_eq!(rbm.params().as_slice(), r2.params().as_slice());
        std::fs::remove_file(&p1).ok();

        let p2 = tmp("nade");
        let nade = Nade::new(5, 6, 4);
        nade.save(&p2).unwrap();
        let n2 = Nade::load(&p2).unwrap();
        assert_eq!(nade.params().as_slice(), n2.params().as_slice());
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn load_any_dispatches_on_kind_tag() {
        let path = tmp("any");
        let savers: Vec<(Box<dyn Fn(&std::path::Path)>, &str)> = vec![
            (
                Box::new(|p: &std::path::Path| Made::new(5, 8, 2).save(p).unwrap()),
                "made",
            ),
            (
                Box::new(|p: &std::path::Path| Rbm::new(5, 5, 2).save(p).unwrap()),
                "rbm",
            ),
            (
                Box::new(|p: &std::path::Path| Nade::new(5, 4, 2).save(p).unwrap()),
                "nade",
            ),
        ];
        for (save, expect) in savers {
            save(&path);
            let (any, precision) = load_any(&path).unwrap();
            assert_eq!(any.kind(), expect);
            assert_eq!(any.num_spins(), 5);
            assert_eq!(precision, Precision::F64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_any_round_trips_parameters() {
        let path = tmp("any-params");
        let model = Made::new(6, 9, 42);
        model.save(&path).unwrap();
        match load_any(&path).unwrap() {
            (AnyModel::Made(m), Precision::F64) => {
                assert_eq!(m.params().as_slice(), model.params().as_slice())
            }
            (other, p) => panic!("expected made/f64, got {}/{p:?}", other.kind()),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn f32_storage_round_trips_within_one_rounding() {
        let path = tmp("f32-storage");
        let model = Made::new(6, 9, 23);
        model.save_with_precision(&path, Precision::F32).unwrap();
        // File is ~half the f64 size (header + 4-byte params).
        let f32_len = std::fs::metadata(&path).unwrap().len();
        let (any, precision) = load_any(&path).unwrap();
        assert_eq!(precision, Precision::F32);
        let restored = match any {
            AnyModel::Made(m) => m,
            other => panic!("expected made, got {}", other.kind()),
        };
        // Widened params equal the narrowed originals exactly (one
        // rounding at save, exact widening at load).
        for (a, b) in model.params().iter().zip(restored.params().iter()) {
            assert_eq!(*a as f32, *b as f32);
            assert_eq!(*b, (*a as f32) as f64);
        }
        model.save(&path).unwrap();
        let f64_len = std::fs::metadata(&path).unwrap().len();
        assert!(f32_len < f64_len * 2 / 3, "{f32_len} vs {f64_len}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn f32_save_then_typed_load_works() {
        let path = tmp("f32-typed");
        let model = Made::new(5, 7, 9);
        model.save_with_precision(&path, Precision::F32).unwrap();
        let restored = Made::load(&path).unwrap();
        assert_eq!(restored.num_spins(), 5);
        assert_eq!(restored.hidden_size(), 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_precision_tag_rejected() {
        let path = tmp("bad-precision");
        Made::new(4, 5, 1).save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The precision byte sits right after magic(4) + version(4) +
        // kind_len(4) + kind("made" = 4).
        let off = 4 + 4 + 4 + 4;
        assert_eq!(bytes[off], Precision::F64.tag());
        bytes[off] = 7;
        std::fs::write(&path, &bytes).unwrap();
        let err = Made::load(&path).unwrap_err();
        assert!(err.to_string().contains("precision tag"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_checkpoints_still_load_as_f64() {
        // Hand-assemble a v1 file (no precision byte) and check both the
        // typed and any-kind loaders accept it.
        let path = tmp("v1-compat");
        let model = Made::new(4, 6, 11);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"VQMC");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(b"made");
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&6u64.to_le_bytes());
        let params = model.params();
        bytes.extend_from_slice(&(params.len() as u64).to_le_bytes());
        for v in params.iter() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let restored = Made::load(&path).unwrap();
        assert_eq!(restored.params().as_slice(), params.as_slice());
        let (_, precision) = load_any(&path).unwrap();
        assert_eq!(precision, Precision::F64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kind_mismatch_rejected() {
        let path = tmp("kind-mismatch");
        Made::new(4, 5, 1).save(&path).unwrap();
        let err = Rbm::load(&path).unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_magic_rejected() {
        let path = tmp("bad-magic");
        std::fs::write(&path, b"NOPE-this-is-not-a-checkpoint").unwrap();
        let err = Made::load(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_point_is_a_structured_error() {
        // The satellite-1 property: cut a valid checkpoint at EVERY
        // byte offset and require a structured io::Error (never a
        // panic) from both the typed and any-kind loaders — for a
        // depth-1 v2 file, a depth-2 v3 file, and an f32-storage file.
        let path = tmp("cuts");
        let make_files: Vec<Box<dyn Fn(&std::path::Path)>> = vec![
            Box::new(|p: &std::path::Path| Made::new(4, 5, 1).save(p).unwrap()),
            Box::new(|p: &std::path::Path| {
                Made::with_hidden(4, &[5, 3], 1).save(p).unwrap()
            }),
            Box::new(|p: &std::path::Path| {
                Made::new(4, 5, 1)
                    .save_with_precision(p, Precision::F32)
                    .unwrap()
            }),
        ];
        for (which, make) in make_files.iter().enumerate() {
            make(&path);
            let bytes = std::fs::read(&path).unwrap();
            for cut in 0..bytes.len() {
                std::fs::write(&path, &bytes[..cut]).unwrap();
                let err = Made::load(&path).unwrap_err();
                assert!(
                    matches!(
                        err.kind(),
                        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                    ),
                    "file {which} cut {cut}: unexpected error kind {:?}",
                    err.kind()
                );
                assert!(load_any(&path).is_err(), "file {which} cut {cut}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn adversarial_shape_fields_rejected_without_huge_allocations() {
        // Overwrite each u64 shape field with u64::MAX (and other
        // hostile values) — the loader must answer InvalidData without
        // attempting a shape-sized allocation.
        let path = tmp("adversarial");
        Made::new(4, 5, 1).save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // v2 layout: magic 4 | ver 4 | kindlen 4 | kind 4 | prec 1 |
        // n 8 | h 8 | count 8 | params.
        let n_off = 4 + 4 + 4 + 4 + 1;
        let h_off = n_off + 8;
        let count_off = h_off + 8;
        for off in [n_off, h_off, count_off] {
            for hostile in [u64::MAX, 1 << 40, (1 << 24) + 1] {
                let mut b = bytes.clone();
                b[off..off + 8].copy_from_slice(&hostile.to_le_bytes());
                std::fs::write(&path, &b).unwrap();
                let err = Made::load(&path).unwrap_err();
                assert_eq!(
                    err.kind(),
                    io::ErrorKind::InvalidData,
                    "field at {off} = {hostile}: {err}"
                );
            }
        }
        // Zero shapes are equally invalid.
        for off in [n_off, h_off] {
            let mut b = bytes.clone();
            b[off..off + 8].copy_from_slice(&0u64.to_le_bytes());
            std::fs::write(&path, &b).unwrap();
            assert!(Made::load(&path).is_err(), "zero field at {off}");
        }
        // A hostile v3 layer count must be caught before the layer list
        // is read.
        let mut v3 = Vec::new();
        v3.extend_from_slice(b"VQMC");
        v3.extend_from_slice(&3u32.to_le_bytes());
        v3.extend_from_slice(&4u32.to_le_bytes());
        v3.extend_from_slice(b"made");
        v3.push(Precision::F64.tag());
        v3.extend_from_slice(&4u64.to_le_bytes());
        v3.extend_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &v3).unwrap();
        let err = Made::load(&path).unwrap_err();
        assert!(err.to_string().contains("layer count"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let path = tmp("truncated");
        Made::new(4, 5, 1).save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(Made::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
