//! Parameter initialisation.
//!
//! Glorot/Xavier-uniform fan-in/fan-out scaling, matching the PyTorch
//! defaults the paper's reference implementation would have used for its
//! fully-connected layers.  All initialisation is driven by an explicit
//! RNG so that model replicas on the virtual cluster can be constructed
//! bit-identically from a shared seed.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use vqmc_tensor::{Matrix, Vector};

/// Glorot/Xavier-uniform weight matrix: entries `~ U(−a, a)` with
/// `a = √(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    let dist = Uniform::new_inclusive(-a, a);
    Matrix::from_fn(rows, cols, |_, _| dist.sample(rng))
}

/// PyTorch-style `nn.Linear` bias init: `U(−1/√fan_in, 1/√fan_in)`.
pub fn linear_bias(fan_in: usize, len: usize, rng: &mut impl Rng) -> Vector {
    let bound = 1.0 / (fan_in.max(1) as f64).sqrt();
    let dist = Uniform::new_inclusive(-bound, bound);
    Vector::from_fn(len, |_| dist.sample(rng))
}

/// Small-scale Gaussian-free uniform init for RBM visible biases
/// (`U(−0.01, 0.01)`), keeping the initial wavefunction close to uniform
/// over configurations — the standard neutral start for VQMC.
pub fn near_zero(len: usize, rng: &mut impl Rng) -> Vector {
    let dist = Uniform::new_inclusive(-0.01, 0.01);
    Vector::from_fn(len, |_| dist.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_uniform(20, 30, &mut rng);
        let a = (6.0 / 50.0f64).sqrt();
        assert!(m.as_slice().iter().all(|&v| v.abs() <= a));
        // Not all zero.
        assert!(m.frobenius_norm() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let m1 = xavier_uniform(5, 5, &mut StdRng::seed_from_u64(9));
        let m2 = xavier_uniform(5, 5, &mut StdRng::seed_from_u64(9));
        assert_eq!(m1, m2);
        let m3 = xavier_uniform(5, 5, &mut StdRng::seed_from_u64(10));
        assert_ne!(m1, m3);
    }

    #[test]
    fn bias_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = linear_bias(16, 8, &mut rng);
        assert!(b.iter().all(|&v| v.abs() <= 0.25));
        let z = near_zero(8, &mut rng);
        assert!(z.iter().all(|&v| v.abs() <= 0.01));
    }
}
