//! The **f32 inference arm** of [`crate::Made`] (DESIGN.md §4.1.1).
//!
//! [`MadeF32`] is a read-only, single-precision copy of a trained MADE:
//! weights and activations are `f32` — half the bytes streamed through
//! the GEMMs and panels, twice the SIMD lanes — while every reduction
//! boundary (per-sample log-probability sums, sampler logits) is
//! accumulated in `f64` by the [`vqmc_tensor::simd::KernelsF32`] table.
//! It is *not* a [`crate::WaveFunction`]: it has no gradients, no
//! `set_params`, and exists only on the serving path (the trainer stays
//! f64 end-to-end).  The stack mirrors the source model layer for
//! layer, so deep checkpoints serve through the same arm.
//!
//! ## Correctness contract
//!
//! Bound-based against the f64 model, never bit-based: for parameters
//! and inputs in the trained range, `|logψ₃₂ − logψ₆₄| ≤ 1e-5·n`
//! (property-tested in `tests/f32_parity.rs` — the bound is dominated
//! by the `O(h·ε₃₂)` GEMM rounding entering `n` log-sigmoid terms).
//! *Within* the f32 arm, results are bit-identical across SIMD arms and
//! thread counts, inherited from the kernel-table contracts.
//!
//! ## Selective weight storage
//!
//! The two consumers need different derived layouts of `W₁` — the
//! forward pass streams its rows (`h×n`), the incremental AUTO sampler
//! streams its columns (`W₁ᵀ`, `n×h`) — and at `n = 65536, h = 256`
//! each copy is 67 MB.  Constructors therefore build only the layout
//! their caller needs ([`MadeF32::for_log_psi`] /
//! [`MadeF32::for_sampling`]); the accessors panic if the wrong arm is
//! asked for.  Layers past the first are always stored in row layout —
//! both the forward GEMMs and the deep sampling panels stream their
//! rows.

use vqmc_tensor::gemm32::gemm_nt_f32;
use vqmc_tensor::simd;
use vqmc_tensor::{SpinBatch, Vector};

use crate::Made;

/// One narrowed layer: row-major `f32` weights plus bias.
struct LayerF32 {
    /// Row-major weights (`out × in`).  Empty for layer 0 of a
    /// sampling-arm copy (the transposed `w1t` is stored instead).
    w: Vec<f32>,
    b: Vec<f32>,
    out_dim: usize,
    in_dim: usize,
}

/// Single-precision inference copy of a [`Made`] (see module docs).
pub struct MadeF32 {
    n: usize,
    /// `W₁ᵀ` rows (`n×h₁`) — incremental-sampler layout of layer 0.
    /// Empty if built [`MadeF32::for_log_psi`].
    w1t: Vec<f32>,
    layers: Vec<LayerF32>,
    /// The source model's `params_version()` at conversion time, so
    /// caches can detect staleness.
    version: u64,
}

/// Scratch buffers for [`MadeF32::log_psi_into`]; resized in place, so
/// a warm workspace makes the pass allocation-free.
#[derive(Default)]
pub struct MadeF32Workspace {
    /// Network input (`bs×n` as f32 0/1).
    x: Vec<f32>,
    /// Per-layer activations (`bs×out_l`); the last is the logits,
    /// sign-flipped and log-sigmoided in place.
    acts: Vec<Vec<f32>>,
}

impl MadeF32Workspace {
    /// A fresh workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

fn narrow(src: &[f64]) -> Vec<f32> {
    src.iter().map(|&v| v as f32).collect()
}

impl MadeF32 {
    /// Conversion carrying only the forward-pass (`log_psi` /
    /// local-energy) weights.
    pub fn for_log_psi(made: &Made) -> Self {
        Self::convert(made, true, false)
    }

    /// Conversion carrying only the incremental-sampler weights
    /// (`W₁ᵀ` instead of `W₁`; deeper layers in row layout either way).
    pub fn for_sampling(made: &Made) -> Self {
        Self::convert(made, false, true)
    }

    fn convert(made: &Made, rows: bool, cols: bool) -> Self {
        let (h, n) = (made.hidden_size(), made.w1().cols());
        let layers = made
            .layers()
            .iter()
            .enumerate()
            .map(|(l, layer)| LayerF32 {
                w: if rows || l > 0 {
                    narrow(layer.w().as_slice())
                } else {
                    Vec::new()
                },
                b: narrow(layer.b().as_slice()),
                out_dim: layer.out_dim(),
                in_dim: layer.in_dim(),
            })
            .collect();
        let w1t = if cols {
            let src = made.w1();
            let mut t = vec![0.0f32; n * h];
            for j in 0..h {
                let row = src.row(j);
                for (i, &v) in row.iter().enumerate() {
                    t[i * h + j] = v as f32;
                }
            }
            t
        } else {
            Vec::new()
        };
        MadeF32 {
            n,
            w1t,
            layers,
            version: made.params_version(),
        }
    }

    /// Number of spins.
    pub fn num_spins(&self) -> usize {
        self.n
    }

    /// First hidden layer's width (the sampler's panel width).
    pub fn hidden_size(&self) -> usize {
        self.layers[0].out_dim
    }

    /// Number of stacked layers (`depth + 1`).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The source model's `params_version()` at conversion time.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// `W₁ᵀ` row `i` (column `i` of `W₁`, length `h₁`) — the sampler's
    /// per-bit weight slice.  Panics unless built [`MadeF32::for_sampling`].
    pub fn w1t_row(&self, i: usize) -> &[f32] {
        assert!(!self.w1t.is_empty(), "MadeF32 built without sampler weights");
        let h = self.layers[0].out_dim;
        &self.w1t[i * h..(i + 1) * h]
    }

    /// First-layer bias (`h₁`).
    pub fn b1(&self) -> &[f32] {
        &self.layers[0].b
    }

    /// Output-layer weight row `i` (length `h_D`).
    pub fn w2_row(&self, i: usize) -> &[f32] {
        self.layer_w_row(self.layers.len() - 1, i)
    }

    /// Output-layer bias (`n`).
    pub fn b2(&self) -> &[f32] {
        &self.layers[self.layers.len() - 1].b
    }

    /// Weight row `i` of layer `l` (length `in_dim` of that layer).
    /// Layers past the first are stored in row layout on both arms.
    pub fn layer_w_row(&self, l: usize, i: usize) -> &[f32] {
        let layer = &self.layers[l];
        assert!(!layer.w.is_empty(), "MadeF32 built without forward weights");
        &layer.w[i * layer.in_dim..(i + 1) * layer.in_dim]
    }

    /// Bias of layer `l` (length `out_dim` of that layer).
    pub fn layer_b(&self, l: usize) -> &[f32] {
        &self.layers[l].b
    }

    /// `logψ` for every sample, through the f32 GEMM path with `f64`
    /// row sums: `X → Z₁ = XW₁ᵀ+b₁ → relu → … → A = H_D W₂ᵀ+b₂ →
    /// ½·Σᵢ logσ(±aᵢ)`.  Panics unless built [`MadeF32::for_log_psi`].
    pub fn log_psi_into(&self, batch: &SpinBatch, ws: &mut MadeF32Workspace, out: &mut Vector) {
        assert_eq!(batch.num_spins(), self.n, "MadeF32: spin-count mismatch");
        assert!(
            !self.layers[0].w.is_empty(),
            "MadeF32 built without forward weights"
        );
        let bs = batch.batch_size();
        let n = self.n;
        let ll = self.layers.len();
        let k32 = simd::kernels_f32();

        ws.x.clear();
        ws.x.resize(bs * n, 0.0);
        for s in 0..bs {
            let row = &mut ws.x[s * n..(s + 1) * n];
            for (dst, &bit) in row.iter_mut().zip(batch.sample(s)) {
                *dst = bit as f32;
            }
        }
        ws.acts.resize(ll, Vec::new());

        for l in 0..ll {
            let layer = &self.layers[l];
            let (od, id) = (layer.out_dim, layer.in_dim);
            // Split so the previous activation can be read while this
            // layer's output is written.
            let (prev_acts, rest) = ws.acts.split_at_mut(l);
            let dst = &mut rest[0];
            let src: &[f32] = if l == 0 { &ws.x } else { &prev_acts[l - 1] };
            dst.resize(bs * od, 0.0);
            gemm_nt_f32(bs, od, id, src, &layer.w, dst);
            if l < ll - 1 {
                // Hidden layer: bias + ReLU in one pass.
                for s in 0..bs {
                    let row = &mut dst[s * od..(s + 1) * od];
                    for (z, &b) in row.iter_mut().zip(&layer.b) {
                        let v = *z + b;
                        *z = if v > 0.0 { v } else { 0.0 };
                    }
                }
            } else {
                // Output layer: add b₂ and fold the bit into the sign
                // in one pass.
                for s in 0..bs {
                    let row = &mut dst[s * od..(s + 1) * od];
                    for ((a, &b), &bit) in row.iter_mut().zip(&layer.b).zip(batch.sample(s)) {
                        let v = *a + b;
                        *a = if bit == 1 { v } else { -v };
                    }
                }
            }
        }

        // One vectorised log-sigmoid over the whole logit matrix and
        // per-row f64 sums: logπ(x) = Σᵢ logσ(aᵢ if xᵢ=1 else −aᵢ),
        // logψ = ½ logπ.
        out.resize(bs);
        let logits = &mut ws.acts[ll - 1];
        (k32.log_sigmoid_slice)(&mut logits[..bs * n]);
        for s in 0..bs {
            out[s] = 0.5 * (k32.sum)(&logits[s * n..(s + 1) * n]);
        }
    }
}

impl std::fmt::Debug for MadeF32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MadeF32(n={}, layers={}, v={})",
            self.n,
            self.layers.len(),
            self.version
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_tensor::batch::enumerate_configs;
    use vqmc_tensor::reduce::log_sum_exp;

    use crate::MadeWorkspace;

    /// The documented serving bound: `|logψ₃₂ − logψ₆₄| ≤ 1e-5·n`.
    #[test]
    fn log_psi_tracks_f64_within_bound() {
        for (n, h, seed) in [(6, 9, 17), (10, 24, 3), (33, 48, 8)] {
            let made = Made::new(n, h, seed);
            check_bound(&made, n);
        }
    }

    /// The same bound holds layer-for-layer through deep stacks.
    #[test]
    fn deep_log_psi_tracks_f64_within_bound() {
        for (n, hidden, seed) in [
            (6usize, vec![9usize, 7], 17u64),
            (10, vec![24, 12], 3),
            (12, vec![16, 12, 8], 8),
        ] {
            let made = Made::with_hidden(n, &hidden, seed);
            check_bound(&made, n);
        }
    }

    fn check_bound(made: &Made, n: usize) {
        let m32 = MadeF32::for_log_psi(made);
        let batch = SpinBatch::from_fn(16, n, |s, i| ((s * 7 + i * 3) % 2) as u8);
        let mut ws64 = MadeWorkspace::new();
        let mut want = Vector::default();
        made.log_psi_with(&batch, &mut ws64, &mut want);
        let mut ws32 = MadeF32Workspace::new();
        let mut got = Vector::default();
        m32.log_psi_into(&batch, &mut ws32, &mut got);
        let bound = 1e-5 * n as f64;
        for s in 0..batch.batch_size() {
            assert!(
                (got[s] - want[s]).abs() <= bound,
                "n={n} sample {s}: {} vs {} (bound {bound})",
                got[s],
                want[s]
            );
        }
    }

    /// The f32 arm still represents a normalised distribution to within
    /// the rounding bound (Σ exp(2·logψ₃₂) ≈ 1).
    #[test]
    fn distribution_stays_normalised_within_bound() {
        let made = Made::new(8, 13, 5);
        let m32 = MadeF32::for_log_psi(&made);
        let all = enumerate_configs(8);
        let mut ws = MadeF32Workspace::new();
        let mut lp = Vector::default();
        m32.log_psi_into(&all, &mut ws, &mut lp);
        lp.scale(2.0);
        let total = log_sum_exp(&lp);
        assert!(total.abs() < 1e-4, "Σπ = exp({total})");
    }

    /// `w1t` rows are exactly the narrowed columns of `W₁`.
    #[test]
    fn sampler_layout_matches_transpose() {
        let made = Made::new(7, 11, 2);
        let m32 = MadeF32::for_sampling(&made);
        for i in 0..7 {
            let row = m32.w1t_row(i);
            for j in 0..11 {
                assert_eq!(row[j], made.w1().get(j, i) as f32);
            }
        }
    }

    /// Deeper-layer rows are stored in row layout on the sampling arm
    /// too, exactly the narrowed f64 rows.
    #[test]
    fn sampling_arm_keeps_deep_rows() {
        let made = Made::with_hidden(6, &[9, 7], 4);
        let m32 = MadeF32::for_sampling(&made);
        for (l, layer) in made.layers().iter().enumerate().skip(1) {
            for i in 0..layer.out_dim() {
                let row = m32.layer_w_row(l, i);
                for j in 0..layer.in_dim() {
                    assert_eq!(row[j], layer.w().get(i, j) as f32, "layer {l} ({i},{j})");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "without forward weights")]
    fn sampling_copy_rejects_log_psi() {
        let made = Made::new(4, 5, 1);
        let m32 = MadeF32::for_sampling(&made);
        let batch = SpinBatch::zeros(1, 4);
        m32.log_psi_into(&batch, &mut MadeF32Workspace::new(), &mut Vector::default());
    }
}
