//! MADE mask construction (Germain et al. 2015).
//!
//! The autoregressive property — output `i` may depend only on inputs
//! `< i` — is enforced with two binary masks:
//!
//! * hidden mask `M¹ ∈ {0,1}^{h×n}`:  `M¹[k, d] = 1 ⇔ m(k) ≥ d + 1`,
//!   i.e. hidden unit `k` (with *degree* `m(k) ∈ [1, n−1]`) may see
//!   inputs with 1-based index `≤ m(k)`;
//! * output mask `M² ∈ {0,1}^{n×k}`:  `M²[i, k] = 1 ⇔ i + 1 > m(k)`,
//!   i.e. output `i` (1-based `i+1`) may use hidden units of strictly
//!   smaller degree.
//!
//! Composing the two: output `i` sees input `d` iff some `k` has
//! `d + 1 ≤ m(k) < i + 1`, which implies `d < i` — exactly the strict
//! autoregressive ordering.  Output 0 is connected to nothing and learns
//! the marginal `p(x₁)` through its bias alone.
//!
//! Degrees are assigned deterministically and evenly
//! (`m(k) = (k mod (n−1)) + 1`), so every degree class is populated when
//! `h ≥ n − 1`; determinism keeps cluster replicas identical.

use vqmc_tensor::Matrix;

/// Degree assignment for `h` hidden units over `n` inputs:
/// `m(k) ∈ [1, n−1]` cycling evenly.  For `n == 1` there are no valid
/// degrees (the single output depends on nothing); all degrees are 0 and
/// both masks come out empty.
pub fn hidden_degrees(n: usize, h: usize) -> Vec<usize> {
    if n <= 1 {
        return vec![0; h];
    }
    (0..h).map(|k| (k % (n - 1)) + 1).collect()
}

/// Hidden-layer mask `M¹ (h×n)`: unit `k` sees inputs `0..m(k)`.
pub fn input_mask(n: usize, degrees: &[usize]) -> Matrix {
    Matrix::from_fn(degrees.len(), n, |k, d| {
        if degrees[k] > d {
            1.0
        } else {
            0.0
        }
    })
}

/// Hidden-to-hidden mask `Mˡ (next×prev)` for stacks deeper than one
/// hidden layer: unit `k` of the next layer (degree `m_l(k)`) may see
/// unit `j` of the previous layer (degree `m_{l-1}(j)`) iff
/// `m_l(k) ≥ m_{l-1}(j)` — **non-strict**, unlike the output mask.
/// Strictness is only needed at the output: composing
/// `d + 1 ≤ m_1 ≤ m_2 ≤ … ≤ m_L < i + 1` still implies `d < i`, while
/// non-strict interior hops keep every degree class reachable at depth.
/// Degree-0 units (the `n == 1` degenerate case) carry no input
/// information, so connecting them is harmless; the composed
/// connectivity test below pins the invariant either way.
pub fn hidden_mask(prev_degrees: &[usize], degrees: &[usize]) -> Matrix {
    Matrix::from_fn(degrees.len(), prev_degrees.len(), |k, j| {
        if degrees[k] >= prev_degrees[j] {
            1.0
        } else {
            0.0
        }
    })
}

/// Output-layer mask `M² (n×h)`: output `i` uses units with
/// `m(k) < i + 1`, but never units with degree 0 (the `n == 1`
/// degenerate case).
pub fn output_mask(n: usize, degrees: &[usize]) -> Matrix {
    Matrix::from_fn(n, degrees.len(), |i, k| {
        if degrees[k] >= 1 && i + 1 > degrees[k] {
            1.0
        } else {
            0.0
        }
    })
}

/// The effective input-to-output connectivity `C = M² · M¹ (n×n)`:
/// `C[i, d] > 0` iff output `i` can be influenced by input `d`.
/// Strictly lower-triangular by construction; the tests assert it.
pub fn connectivity(input_mask: &Matrix, output_mask: &Matrix) -> Matrix {
    output_mask.matmul_nn(input_mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_cover_all_classes() {
        let d = hidden_degrees(5, 12);
        for deg in 1..5 {
            assert!(d.contains(&deg), "degree {deg} missing");
        }
        assert!(d.iter().all(|&m| (1..=4).contains(&m)));
    }

    #[test]
    fn connectivity_is_strictly_lower_triangular() {
        for (n, h) in [(2usize, 3usize), (5, 8), (8, 20), (10, 7)] {
            let deg = hidden_degrees(n, h);
            let m1 = input_mask(n, &deg);
            let m2 = output_mask(n, &deg);
            let c = connectivity(&m1, &m2);
            for i in 0..n {
                for d in 0..n {
                    if d >= i {
                        assert_eq!(
                            c.get(i, d),
                            0.0,
                            "n={n} h={h}: output {i} sees input {d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn connectivity_is_maximal_below_diagonal_when_wide() {
        // With h >= n-1 every allowed (i, d) pair with d < i is realised.
        let (n, h) = (6, 16);
        let deg = hidden_degrees(n, h);
        let c = connectivity(&input_mask(n, &deg), &output_mask(n, &deg));
        for i in 0..n {
            for d in 0..i {
                assert!(
                    c.get(i, d) > 0.0,
                    "output {i} cannot see input {d} despite d < i"
                );
            }
        }
    }

    #[test]
    fn deep_connectivity_is_strictly_lower_triangular() {
        // Compose M_out · M_hid … · M_in through 2- and 3-hidden-layer
        // stacks: the end-to-end connectivity must stay strictly
        // lower-triangular, and with wide layers every d < i pair must
        // survive the extra hops.
        for widths in [vec![8usize, 6], vec![12, 9, 7]] {
            let n = 6usize;
            let degs: Vec<Vec<usize>> =
                widths.iter().map(|&h| hidden_degrees(n, h)).collect();
            let mut c = input_mask(n, &degs[0]);
            for l in 1..degs.len() {
                c = hidden_mask(&degs[l - 1], &degs[l]).matmul_nn(&c);
            }
            let c = output_mask(n, degs.last().unwrap()).matmul_nn(&c);
            for i in 0..n {
                for d in 0..n {
                    if d >= i {
                        assert_eq!(
                            c.get(i, d),
                            0.0,
                            "depth {}: output {i} sees input {d}",
                            widths.len()
                        );
                    } else {
                        assert!(
                            c.get(i, d) > 0.0,
                            "depth {}: output {i} lost input {d}",
                            widths.len()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn first_output_disconnected() {
        let deg = hidden_degrees(4, 9);
        let m2 = output_mask(4, &deg);
        assert!(m2.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn single_spin_degenerate_masks_empty() {
        let deg = hidden_degrees(1, 4);
        let m1 = input_mask(1, &deg);
        let m2 = output_mask(1, &deg);
        assert!(m1.as_slice().iter().all(|&v| v == 0.0));
        assert!(m2.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn masks_are_binary() {
        let deg = hidden_degrees(7, 15);
        for m in [input_mask(7, &deg), output_mask(7, &deg)] {
            assert!(m.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }
}
