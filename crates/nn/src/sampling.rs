//! The batched-sampling dispatch layer: one object-safe surface that
//! every sampling consumer (the trainer, the distributed trainer, the
//! serve engine, the CLI) goes through, so a model loaded as an
//! [`AnyModel`](crate::checkpoint::AnyModel) can be sampled without the
//! caller matching on its architecture.
//!
//! The actual sampling engines live **above** this crate (in
//! `vqmc-sampler`), and Rust's orphan rule keeps them from implementing
//! an nn-side trait for nn-side types — so the dispatch is a double
//! dispatch: a model implements [`BatchedSampling`] by handing *itself*
//! to the matching arm of a caller-provided [`SamplingEngine`], and the
//! engine implementation (which owns the request list, the scratch and
//! the output buffers) does the architecture-specific work:
//!
//! ```text
//! caller ──▶ model.sample_via(engine) ──▶ engine.sample_made(self)
//!                                        │  engine.sample_nade(self)
//!                                        └▶ engine.sample_rbm(self)
//! ```
//!
//! Adding a new architecture means one new arm here and one new engine
//! branch in `vqmc-sampler` — the compiler walks every consumer for us.

use crate::{Made, Nade, Rbm, WaveFunction};

/// The architecture-specific arms of a batched sampling call.
///
/// Implementors (in `vqmc-sampler`) carry the call's context — request
/// list or stream length, RNG state, pooled scratch, output buffers —
/// in their own fields; each arm runs the whole call for one model kind.
pub trait SamplingEngine {
    /// Sample from a MADE wavefunction (exact AUTO, fused panel pass).
    fn sample_made(&mut self, wf: &Made);
    /// Sample from a NADE wavefunction (exact AUTO, native recursion).
    fn sample_nade(&mut self, wf: &Nade);
    /// Sample from an RBM wavefunction (MCMC fallback — RBMs are
    /// unnormalised, so exact sampling is unavailable).
    fn sample_rbm(&mut self, wf: &Rbm);
}

/// A wavefunction that can be sampled through the unified batched
/// layer.  Object-safe: consumers hold `&dyn BatchedSampling` and never
/// match on the concrete architecture.
pub trait BatchedSampling: WaveFunction {
    /// Routes `engine` to the arm matching this model's architecture.
    fn sample_via(&self, engine: &mut dyn SamplingEngine);
}

impl BatchedSampling for Made {
    fn sample_via(&self, engine: &mut dyn SamplingEngine) {
        engine.sample_made(self);
    }
}

impl BatchedSampling for Nade {
    fn sample_via(&self, engine: &mut dyn SamplingEngine) {
        engine.sample_nade(self);
    }
}

impl BatchedSampling for Rbm {
    fn sample_via(&self, engine: &mut dyn SamplingEngine) {
        engine.sample_rbm(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct ArmRecorder {
        arm: Option<&'static str>,
    }

    impl SamplingEngine for ArmRecorder {
        fn sample_made(&mut self, _wf: &Made) {
            self.arm = Some("made");
        }
        fn sample_nade(&mut self, _wf: &Nade) {
            self.arm = Some("nade");
        }
        fn sample_rbm(&mut self, _wf: &Rbm) {
            self.arm = Some("rbm");
        }
    }

    #[test]
    fn each_model_routes_to_its_own_arm() {
        let cases: Vec<(Box<dyn BatchedSampling>, &str)> = vec![
            (Box::new(Made::new(4, 5, 1)), "made"),
            (Box::new(Nade::new(4, 5, 1)), "nade"),
            (Box::new(Rbm::new(4, 4, 1)), "rbm"),
        ];
        for (model, expect) in cases {
            let mut rec = ArmRecorder::default();
            model.sample_via(&mut rec);
            assert_eq!(rec.arm, Some(expect));
        }
    }
}
