//! The restricted-Boltzmann-machine log-amplitude (Carleo & Troyer 2017),
//! in the paper's §5.1 form:
//!
//! ```text
//! Input ──[bs,n]──> FC_{n,h} ──[bs,h]──> Lncoshsum ──[bs]──> Output1
//!       ──[bs,n]──> FC_{n,1} ──[bs]──> (+ Output1) ──[bs]──> logψ
//! ```
//!
//! i.e. `logψ(x) = a·x + c + Σⱼ ln cosh(Wx + b)ⱼ` with visible weights
//! `a ∈ ℝⁿ`, scalar bias `c`, hidden weights `W ∈ ℝ^{h×n}` and hidden
//! biases `b ∈ ℝʰ`.  The amplitude is **unnormalised** — exact sampling
//! is intractable, so the RBM is paired with the MCMC sampler, exactly
//! the pathology the paper's AUTO approach removes.
//!
//! ## Parameter layout (flattened)
//!
//! `[W (h·n, row-major) | b (h) | a (n) | c (1)]`, total
//! `d = hn + h + n + 1`.
//!
//! ## MCMC fast path
//!
//! [`Rbm::hidden_preactivations`] / [`Rbm::flip_delta_log_psi`] give the
//! `O(h)` single-flip log-ratio used by the Metropolis–Hastings sampler:
//! with cached `z = Wx + b`, flipping bit `i` changes `logψ` by
//! `a_i Δx_i + Σⱼ [ln cosh(zⱼ + Wⱼᵢ Δxᵢ) − ln cosh(zⱼ)]`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vqmc_tensor::{ops, Matrix, SpinBatch, Vector, Workspace};

use crate::{init, WaveFunction};

/// RBM wavefunction in log-amplitude form.
#[derive(Clone, Serialize, Deserialize)]
pub struct Rbm {
    n: usize,
    h: usize,
    w: Matrix,
    b: Vector,
    a: Vector,
    c: f64,
}

impl Rbm {
    /// Creates an RBM with `n` visible and `h` hidden units, initialised
    /// from `seed`.
    pub fn new(n: usize, h: usize, seed: u64) -> Self {
        assert!(n >= 1 && h >= 1, "Rbm: degenerate shape");
        let mut rng = StdRng::seed_from_u64(seed);
        Rbm {
            n,
            h,
            w: init::xavier_uniform(h, n, &mut rng),
            b: init::linear_bias(n, h, &mut rng),
            a: init::near_zero(n, &mut rng),
            c: 0.0,
        }
    }

    /// Hidden-layer width.
    pub fn hidden_size(&self) -> usize {
        self.h
    }

    /// Hidden weights (`h × n`).
    pub fn w(&self) -> &Matrix {
        &self.w
    }

    /// Hidden biases (`h`).
    pub fn b(&self) -> &Vector {
        &self.b
    }

    /// Visible weights (`n`).
    pub fn a(&self) -> &Vector {
        &self.a
    }

    /// Hidden pre-activations `z = Wx + b` for one configuration — the
    /// state an MCMC chain caches between flips.
    pub fn hidden_preactivations(&self, x: &[u8]) -> Vector {
        assert_eq!(x.len(), self.n);
        let mut z = self.b.clone();
        for (i, &bit) in x.iter().enumerate() {
            if bit == 1 {
                // Column i of W.
                for j in 0..self.h {
                    z[j] += self.w.get(j, i);
                }
            }
        }
        z
    }

    /// `logψ` from cached pre-activations.
    pub fn log_psi_from_hidden(&self, x: &[u8], z: &Vector) -> f64 {
        let visible: f64 = x
            .iter()
            .zip(self.a.iter())
            .map(|(&bit, &a)| a * bit as f64)
            .sum();
        visible + self.c + z.iter().map(|&zj| ops::ln_cosh(zj)).sum::<f64>()
    }

    /// `logψ(flip_i(x)) − logψ(x)` in `O(h)` given cached `z = Wx + b`.
    pub fn flip_delta_log_psi(&self, x: &[u8], z: &Vector, i: usize) -> f64 {
        let dx = if x[i] == 1 { -1.0 } else { 1.0 };
        let mut delta = self.a[i] * dx;
        for j in 0..self.h {
            let zj = z[j];
            delta += ops::ln_cosh(zj + self.w.get(j, i) * dx) - ops::ln_cosh(zj);
        }
        delta
    }

    /// Updates cached pre-activations after accepting the flip of bit
    /// `i` (call *before* mutating `x`).
    pub fn update_hidden_after_flip(&self, x: &[u8], z: &mut Vector, i: usize) {
        let dx = if x[i] == 1 { -1.0 } else { 1.0 };
        for j in 0..self.h {
            z[j] += self.w.get(j, i) * dx;
        }
    }

    /// Forward activations shared by the gradient paths:
    /// `(X, Z = XWᵀ + b)`.
    fn forward(&self, batch: &SpinBatch) -> (Matrix, Matrix) {
        let mut x = Matrix::default();
        let mut z = Matrix::default();
        self.forward_into(batch, &mut x, &mut z);
        (x, z)
    }

    /// [`Rbm::forward`] into caller-owned activation buffers.
    fn forward_into(&self, batch: &SpinBatch, x: &mut Matrix, z: &mut Matrix) {
        assert_eq!(batch.num_spins(), self.n, "Rbm: spin-count mismatch");
        batch.to_matrix_into(x);
        x.matmul_nt_into(&self.w, z);
        z.add_row_bias(&self.b);
    }
}

impl WaveFunction for Rbm {
    fn num_spins(&self) -> usize {
        self.n
    }

    fn num_params(&self) -> usize {
        self.h * self.n + self.h + self.n + 1
    }

    fn log_psi(&self, batch: &SpinBatch) -> Vector {
        let (x, mut z) = self.forward(batch);
        // One matrix-wide vectorised ln cosh, then a pairwise row sum —
        // operation-identical to `log_psi_into` (cross-checked exactly).
        ops::ln_cosh_slice(z.as_mut_slice());
        Vector::from_fn(batch.batch_size(), |s| {
            let visible = vqmc_tensor::vector::dot(x.row(s), &self.a);
            visible + self.c + vqmc_tensor::reduce::sum(z.row(s))
        })
    }

    fn weighted_log_psi_grad(&self, batch: &SpinBatch, weights: &Vector) -> Vector {
        assert_eq!(weights.len(), batch.batch_size());
        let bs = batch.batch_size();
        let (x, z) = self.forward(batch);
        // T[s,j] = w_s · tanh(z_sj):  dW = Tᵀ X, db = colsum T.  One
        // vectorised tanh over the whole matrix, then the row scaling.
        let mut t = z;
        ops::tanh_slice(t.as_mut_slice());
        for s in 0..bs {
            let w = weights[s];
            for v in t.row_mut(s) {
                *v *= w;
            }
        }
        let dw = t.matmul_tn(&x);
        let mut db = Vector::zeros(self.h);
        for row in t.rows_iter() {
            vqmc_tensor::vector::axpy(&mut db, 1.0, row);
        }
        // da = Σ_s w_s x_s ; dc = Σ_s w_s.
        let mut da = Vector::zeros(self.n);
        for s in 0..bs {
            vqmc_tensor::vector::axpy(&mut da, weights[s], x.row(s));
        }
        let dc = weights.sum();

        let mut out = Vec::with_capacity(self.num_params());
        out.extend_from_slice(dw.as_slice());
        out.extend_from_slice(&db);
        out.extend_from_slice(&da);
        out.push(dc);
        Vector(out)
    }

    fn per_sample_grads(&self, batch: &SpinBatch) -> Matrix {
        let bs = batch.batch_size();
        let d = self.num_params();
        let (x, z) = self.forward(batch);
        let (h, n) = (self.h, self.n);
        let mut rows = Matrix::zeros(bs, d);
        // Single scratch row, vectorised tanh — hoisted out of the
        // per-sample loop so it allocates once, not `bs` times.
        let mut tanh_z = vec![0.0f64; h];
        for s in 0..bs {
            let z_row = z.row(s);
            let x_row = x.row(s);
            tanh_z.copy_from_slice(z_row);
            ops::tanh_slice(&mut tanh_z);
            let row = rows.row_mut(s);
            // dW[j,k] = tanh(z_j)·x_k.
            for (j, &tz) in tanh_z.iter().enumerate() {
                if tz != 0.0 {
                    let base = j * n;
                    for k in 0..n {
                        if x_row[k] != 0.0 {
                            row[base + k] = tz * x_row[k];
                        }
                    }
                }
            }
            let off_b = h * n;
            row[off_b..off_b + h].copy_from_slice(&tanh_z);
            let off_a = off_b + h;
            row[off_a..off_a + n].copy_from_slice(x_row);
            row[off_a + n] = 1.0;
        }
        rows
    }

    fn params(&self) -> Vector {
        let mut out = Vec::with_capacity(self.num_params());
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(&self.b);
        out.extend_from_slice(&self.a);
        out.push(self.c);
        Vector(out)
    }

    fn set_params(&mut self, params: &Vector) {
        assert_eq!(params.len(), self.num_params(), "Rbm: param length");
        let (h, n) = (self.h, self.n);
        let p = params.as_slice();
        let mut off = 0;
        // In place: existing buffers are overwritten, no allocation.
        self.w.as_mut_slice().copy_from_slice(&p[off..off + h * n]);
        off += h * n;
        self.b.as_mut_slice().copy_from_slice(&p[off..off + h]);
        off += h;
        self.a.as_mut_slice().copy_from_slice(&p[off..off + n]);
        off += n;
        self.c = params[off];
    }

    fn log_psi_into(&self, batch: &SpinBatch, ws: &mut Workspace, out: &mut Vector) {
        let mut x = Matrix::from_vec(0, 0, ws.take(0));
        let mut z = Matrix::from_vec(0, 0, ws.take(0));
        self.forward_into(batch, &mut x, &mut z);
        out.resize(batch.batch_size());
        // Operation-identical to the allocating `log_psi` (the exact
        // cross-check test depends on it).
        ops::ln_cosh_slice(z.as_mut_slice());
        for s in 0..batch.batch_size() {
            let visible = vqmc_tensor::vector::dot(x.row(s), &self.a);
            out[s] = visible + self.c + vqmc_tensor::reduce::sum(z.row(s));
        }
        ws.give_matrix(z);
        ws.give_matrix(x);
    }

    fn weighted_log_psi_grad_into(
        &self,
        batch: &SpinBatch,
        weights: &Vector,
        ws: &mut Workspace,
        out: &mut Vector,
    ) {
        assert_eq!(weights.len(), batch.batch_size());
        let bs = batch.batch_size();
        let (h, n) = (self.h, self.n);
        let mut x = Matrix::from_vec(0, 0, ws.take(0));
        let mut t = Matrix::from_vec(0, 0, ws.take(0));
        let mut dw = Matrix::from_vec(0, 0, ws.take(0));
        self.forward_into(batch, &mut x, &mut t);
        // T[s,j] = w_s · tanh(z_sj) in place:  dW = Tᵀ X, db = colsum T.
        // Operation-identical to the allocating twin.
        ops::tanh_slice(t.as_mut_slice());
        for s in 0..bs {
            let w = weights[s];
            for v in t.row_mut(s) {
                *v *= w;
            }
        }
        t.matmul_tn_into(&x, &mut dw);
        out.resize(self.num_params());
        out.fill(0.0);
        let o = out.as_mut_slice();
        o[..h * n].copy_from_slice(dw.as_slice());
        for row in t.rows_iter() {
            vqmc_tensor::vector::axpy(&mut o[h * n..h * n + h], 1.0, row);
        }
        // da = Σ_s w_s x_s ; dc = Σ_s w_s.
        let off_a = h * n + h;
        for s in 0..bs {
            vqmc_tensor::vector::axpy(&mut o[off_a..off_a + n], weights[s], x.row(s));
        }
        o[off_a + n] = weights.sum();
        ws.give_matrix(dw);
        ws.give_matrix(t);
        ws.give_matrix(x);
    }

    fn params_into(&self, out: &mut Vector) {
        out.resize(self.num_params());
        let (h, n) = (self.h, self.n);
        let o = out.as_mut_slice();
        o[..h * n].copy_from_slice(self.w.as_slice());
        o[h * n..h * n + h].copy_from_slice(&self.b);
        o[h * n + h..h * n + h + n].copy_from_slice(&self.a);
        o[h * n + h + n] = self.c;
    }
}

impl std::fmt::Debug for Rbm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Rbm(n={}, h={}, d={})", self.n, self.h, self.num_params())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_tensor::batch::enumerate_configs;

    fn tiny() -> Rbm {
        Rbm::new(4, 6, 11)
    }

    #[test]
    fn param_count_and_round_trip() {
        let mut r = tiny();
        assert_eq!(r.num_params(), 6 * 4 + 6 + 4 + 1);
        let batch = enumerate_configs(4);
        let before = r.log_psi(&batch);
        let p = r.params();
        r.set_params(&p);
        let after = r.log_psi(&batch);
        for s in 0..16 {
            assert_eq!(before[s], after[s]);
        }
    }

    #[test]
    fn log_psi_matches_direct_formula() {
        let r = tiny();
        let x = [1u8, 0, 1, 1];
        let batch = SpinBatch::from_single(&x);
        let lp = r.log_psi(&batch)[0];
        // Direct: a·x + c + Σ ln cosh(Wx + b).
        let mut direct = r.a()[0] + r.a()[2] + r.a()[3];
        for j in 0..r.hidden_size() {
            let z = r.w().get(j, 0) + r.w().get(j, 2) + r.w().get(j, 3) + r.b()[j];
            direct += ops::ln_cosh(z);
        }
        assert!((lp - direct).abs() < 1e-12);
    }

    #[test]
    fn hidden_cache_matches_forward() {
        let r = tiny();
        let x = [0u8, 1, 1, 0];
        let z = r.hidden_preactivations(&x);
        let lp_cached = r.log_psi_from_hidden(&x, &z);
        let lp = r.log_psi(&SpinBatch::from_single(&x))[0];
        assert!((lp_cached - lp).abs() < 1e-12);
    }

    #[test]
    fn flip_delta_matches_full_recompute() {
        let r = tiny();
        let x = [1u8, 0, 0, 1];
        let z = r.hidden_preactivations(&x);
        let base = r.log_psi(&SpinBatch::from_single(&x))[0];
        for i in 0..4 {
            let mut y = x;
            y[i] ^= 1;
            let flipped = r.log_psi(&SpinBatch::from_single(&y))[0];
            let delta = r.flip_delta_log_psi(&x, &z, i);
            assert!(
                ((flipped - base) - delta).abs() < 1e-12,
                "flip {i}: {} vs {}",
                flipped - base,
                delta
            );
        }
    }

    #[test]
    fn hidden_update_after_flip_is_consistent() {
        let r = tiny();
        let mut x = [1u8, 0, 0, 1];
        let mut z = r.hidden_preactivations(&x);
        // Accept a flip of bit 2, then bit 0.
        for &i in &[2usize, 0] {
            r.update_hidden_after_flip(&x, &mut z, i);
            x[i] ^= 1;
            let fresh = r.hidden_preactivations(&x);
            for j in 0..r.hidden_size() {
                assert!((z[j] - fresh[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_grad_matches_finite_difference() {
        let r = tiny();
        let batch = SpinBatch::from_fn(3, 4, |s, i| ((s * 2 + i) % 2) as u8);
        let weights = Vector(vec![1.5, -0.7, 0.9]);
        let analytic = r.weighted_log_psi_grad(&batch, &weights);
        let p0 = r.params();
        let f = |p: &[f64]| {
            let mut probe = r.clone();
            probe.set_params(&Vector(p.to_vec()));
            let lp = probe.log_psi(&batch);
            lp.iter().zip(weights.iter()).map(|(l, w)| l * w).sum()
        };
        vqmc_autodiff::check_gradient("rbm-weighted", &f, &p0, &analytic, 1e-5);
    }

    #[test]
    fn weighted_grad_matches_autodiff_tape() {
        let r = tiny();
        let batch = SpinBatch::from_fn(3, 4, |s, i| ((s + i) % 2) as u8);
        let weights = Vector(vec![0.5, 2.0, -1.0]);
        let analytic = r.weighted_log_psi_grad(&batch, &weights);

        use vqmc_autodiff::Tape;
        let mut tape = Tape::new();
        let x = tape.input(batch.to_matrix());
        let w = tape.input(r.w().clone());
        let b = tape.input(Matrix::from_vec(1, r.hidden_size(), r.b().to_vec()));
        let a = tape.input(Matrix::from_vec(r.num_spins(), 1, r.a().to_vec()));
        let z = tape.matmul_nt(x, w);
        let zb = tape.add_row_bias(z, b);
        let lc = tape.ln_cosh(zb);
        let hidden = tape.row_sum(lc); // bs×1
        let visible = tape.matmul_nn(x, a); // bs×1
        let logpsi = tape.add(hidden, visible); // c omitted: constant grad 1 handled below
        let weighted = tape.mul_const(logpsi, Matrix::from_vec(3, 1, weights.to_vec()));
        let loss = tape.sum(weighted);
        let grads = tape.backward(loss);

        let mut tape_grad = Vec::new();
        tape_grad.extend_from_slice(grads.get(w).as_slice());
        tape_grad.extend_from_slice(grads.get(b).as_slice());
        tape_grad.extend_from_slice(grads.get(a).as_slice());
        tape_grad.push(weights.sum()); // dc analytically

        for (i, (av, tv)) in analytic.iter().zip(&tape_grad).enumerate() {
            assert!((av - tv).abs() < 1e-10, "param {i}: {av} vs {tv}");
        }
    }

    #[test]
    fn per_sample_grads_sum_to_weighted() {
        let r = tiny();
        let batch = SpinBatch::from_fn(5, 4, |s, i| ((s + 3 * i) % 2) as u8);
        let rows = r.per_sample_grads(&batch);
        let weights = Vector(vec![1.0, 0.5, -2.0, 0.0, 3.0]);
        let weighted = r.weighted_log_psi_grad(&batch, &weights);
        let mut acc = Vector::zeros(r.num_params());
        for s in 0..5 {
            vqmc_tensor::vector::axpy(&mut acc, weights[s], rows.row(s));
        }
        for k in 0..r.num_params() {
            assert!((acc[k] - weighted[k]).abs() < 1e-10, "param {k}");
        }
    }

    #[test]
    fn into_paths_match_allocating_exactly() {
        let r = tiny();
        let mut ws = Workspace::new();
        let mut lp = Vector::default();
        let mut grad = Vector::default();
        let mut p = Vector::default();
        for bs in [1usize, 5, 2] {
            let batch = SpinBatch::from_fn(bs, 4, |s, i| ((s * 5 + i) % 2) as u8);
            let weights = Vector::from_fn(bs, |s| 0.5 - s as f64);
            r.log_psi_into(&batch, &mut ws, &mut lp);
            assert_eq!(lp.as_slice(), r.log_psi(&batch).as_slice());
            r.weighted_log_psi_grad_into(&batch, &weights, &mut ws, &mut grad);
            assert_eq!(
                grad.as_slice(),
                r.weighted_log_psi_grad(&batch, &weights).as_slice()
            );
        }
        r.params_into(&mut p);
        assert_eq!(p.as_slice(), r.params().as_slice());
    }

    #[test]
    fn amplitude_shift_invariance_of_ratios() {
        // Shifting c shifts every logψ equally: flip deltas unchanged.
        let mut r = tiny();
        let x = [1u8, 1, 0, 0];
        let z = r.hidden_preactivations(&x);
        let d_before = r.flip_delta_log_psi(&x, &z, 1);
        let mut p = r.params();
        let last = p.len() - 1;
        p[last] += 5.0; // c += 5
        r.set_params(&p);
        let d_after = r.flip_delta_log_psi(&x, &z, 1);
        assert!((d_before - d_after).abs() < 1e-12);
    }

    /// Rebuilds `logψ = a·x + c + Σⱼ ln cosh((Wx + b)ⱼ)` on the autodiff
    /// tape and returns the gradient of `Σ_s w_s logψ(x_s)` in the flat
    /// `[W|b|a|c]` layout.
    fn tape_weighted_grad(r: &Rbm, batch: &SpinBatch, weights: &Vector) -> Vec<f64> {
        use vqmc_autodiff::Tape;
        let (n, h) = (r.num_spins(), r.hidden_size());
        let p = r.params();
        let ps = p.as_slice();
        let mut tape = Tape::new();
        let x = tape.input(batch.to_matrix());
        let w = tape.input(Matrix::from_vec(h, n, ps[..h * n].to_vec()));
        let b = tape.input(Matrix::from_vec(1, h, ps[h * n..h * n + h].to_vec()));
        let a = tape.input(Matrix::from_vec(1, n, ps[h * n + h..h * n + h + n].to_vec()));
        let c = tape.input(Matrix::from_vec(1, 1, vec![ps[h * n + h + n]]));
        let z = tape.matmul_nt(x, w);
        let zb = tape.add_row_bias(z, b);
        let lc = tape.ln_cosh(zb);
        let hidden_term = tape.row_sum(lc); // bs×1
        let vis = tape.matmul_nt(x, a); // bs×1
        let visc = tape.add_row_bias(vis, c);
        let logpsi = tape.add(hidden_term, visc); // no ½ factor for RBM
        let weighted =
            tape.mul_const(logpsi, Matrix::from_vec(weights.len(), 1, weights.to_vec()));
        let loss = tape.sum(weighted);
        let grads = tape.backward(loss);
        let mut out = Vec::with_capacity(r.num_params());
        out.extend_from_slice(grads.get(w).as_slice());
        out.extend_from_slice(grads.get(b).as_slice());
        out.extend_from_slice(grads.get(a).as_slice());
        out.extend_from_slice(grads.get(c).as_slice());
        out
    }

    fn assert_close_rel(analytic: &[f64], oracle: &[f64], tag: &str) {
        assert_eq!(analytic.len(), oracle.len(), "{tag}: length");
        for (i, (a, t)) in analytic.iter().zip(oracle).enumerate() {
            let tol = 1e-10 * t.abs().max(1.0);
            assert!(
                (a - t).abs() <= tol,
                "{tag} param {i}: analytic {a} vs tape {t}"
            );
        }
    }

    #[test]
    fn weighted_grad_matches_autodiff_tape_across_shapes() {
        for (n, h, seed) in [(4usize, 6usize, 11u64), (1, 2, 4), (9, 3, 23), (5, 8, 90)] {
            let r = Rbm::new(n, h, seed);
            let bs = 5;
            let batch = SpinBatch::from_fn(bs, n, |s, i| {
                (((s + 1) * (i + 3) + seed as usize) % 2) as u8
            });
            let weights = Vector::from_fn(bs, |s| 1.1 - 0.7 * s as f64);
            let analytic = r.weighted_log_psi_grad(&batch, &weights);
            let oracle = tape_weighted_grad(&r, &batch, &weights);
            assert_close_rel(analytic.as_slice(), &oracle, &format!("rbm n={n} h={h}"));
        }
    }

    #[test]
    fn per_sample_grads_match_autodiff_tape() {
        // One-hot weight vectors turn the weighted gradient into a
        // per-sample gradient; every row must match the tape oracle.
        let r = tiny();
        let bs = 4;
        let batch = SpinBatch::from_fn(bs, 4, |s, i| (((s + 2) * (i + 1)) % 2) as u8);
        for s in 0..bs {
            let weights = Vector::from_fn(bs, |k| if k == s { 1.0 } else { 0.0 });
            let analytic = r.weighted_log_psi_grad(&batch, &weights);
            let oracle = tape_weighted_grad(&r, &batch, &weights);
            assert_close_rel(analytic.as_slice(), &oracle, &format!("rbm sample {s}"));
        }
    }
}
