//! The neural autoregressive distribution estimator (NADE — Larochelle
//! & Murray 2011), the architecture MADE was designed to streamline
//! (paper §3).  Included as a second [`Autoregressive`] wavefunction:
//! it validates that the sampling/training stack is genuinely
//! architecture-agnostic, and its weight-sharing gives an `O(n·h)`
//! *native* sampling pass — the cost MADE only reaches with the
//! incremental cache.
//!
//! ## Model
//!
//! ```text
//! aᵢ = b + Σ_{j<i} W[:,j]·xⱼ          (shared hidden pre-activation)
//! hᵢ = σ(aᵢ)
//! p(xᵢ=1|x_{<i}) = σ(Vᵢ·hᵢ + cᵢ)
//! ```
//!
//! The recursion `aᵢ₊₁ = aᵢ + W[:,i]·xᵢ` makes both density evaluation
//! and sampling `O(h)` per site.
//!
//! ## Parameter layout (flattened)
//!
//! `[W (h·n, row-major) | b (h) | V (n·h, row-major) | c (n)]`,
//! total `d = 2hn + h + n` — identical to MADE's, which keeps every
//! optimiser and the distributed trainer oblivious to the swap.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vqmc_tensor::{ops, Matrix, SpinBatch, Vector};

use crate::{init, Autoregressive, WaveFunction};

/// NADE wavefunction.
#[derive(Clone, Serialize, Deserialize)]
pub struct Nade {
    n: usize,
    h: usize,
    /// Shared input weights; column `j` feeds every conditional `i > j`.
    w: Matrix,
    b: Vector,
    /// Per-output readout rows.
    v: Matrix,
    c: Vector,
    /// Transposed copy of `w` (n×h) for contiguous column access in the
    /// sequential recursion; rebuilt on every parameter update.
    w_t: Matrix,
}

impl Nade {
    /// Creates a NADE with `n` spins and `h` hidden units.
    pub fn new(n: usize, h: usize, seed: u64) -> Self {
        assert!(n >= 1 && h >= 1, "Nade: degenerate shape");
        let mut rng = StdRng::seed_from_u64(seed);
        let w = init::xavier_uniform(h, n, &mut rng);
        let b = init::linear_bias(n, h, &mut rng);
        let v = init::xavier_uniform(n, h, &mut rng);
        let c = init::linear_bias(h, n, &mut rng);
        let w_t = w.transpose();
        Nade {
            n,
            h,
            w,
            b,
            v,
            c,
            w_t,
        }
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.h
    }

    /// Shared hidden bias `b` (the recursion's initial pre-activation).
    pub fn b(&self) -> &Vector {
        &self.b
    }

    /// Per-output readout rows `V` (`n × h`).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Per-output readout biases `c`.
    pub fn c(&self) -> &Vector {
        &self.c
    }

    /// Transposed input weights `Wᵀ` (`n × h`): row `i` is the column of
    /// `W` folded into the recursion when bit `i` is drawn 1.
    pub fn w_t(&self) -> &Matrix {
        &self.w_t
    }

    /// Runs the shared recursion for one sample, invoking `visit(i, hᵢ,
    /// logitᵢ)` at every site, in order.
    fn scan(&self, x: &[u8], mut visit: impl FnMut(usize, &[f64], f64)) {
        let mut a: Vec<f64> = self.b.as_slice().to_vec();
        let mut hidden = vec![0.0; self.h];
        for (i, &xi) in x.iter().enumerate() {
            for (hk, &ak) in hidden.iter_mut().zip(&a) {
                *hk = ops::sigmoid(ak);
            }
            let logit = vqmc_tensor::vector::dot(self.v.row(i), &hidden) + self.c[i];
            visit(i, &hidden, logit);
            if xi == 1 {
                vqmc_tensor::vector::axpy(&mut a, 1.0, self.w_t.row(i));
            }
        }
    }

    /// Native `O(bs·n·h)` exact sampling (the architecture's built-in
    /// equivalent of MADE's incremental sampler).  Draws bits in the
    /// same `(sample-major within site)` order as `AutoSampler`.
    pub fn sample_native(&self, batch_size: usize, rng: &mut StdRng) -> (SpinBatch, Vector) {
        let mut batch = SpinBatch::zeros(batch_size, self.n);
        let mut a: Vec<f64> = Vec::with_capacity(batch_size * self.h);
        for _ in 0..batch_size {
            a.extend_from_slice(&self.b);
        }
        let mut hidden = vec![0.0; self.h];
        let mut log_prob = vec![0.0f64; batch_size];
        for i in 0..self.n {
            let v_row = self.v.row(i);
            let w_col = self.w_t.row(i);
            for s in 0..batch_size {
                let a_row = &mut a[s * self.h..(s + 1) * self.h];
                for (hk, &ak) in hidden.iter_mut().zip(a_row.iter()) {
                    *hk = ops::sigmoid(ak);
                }
                let logit = vqmc_tensor::vector::dot(v_row, &hidden) + self.c[i];
                if rng.gen::<f64>() < ops::sigmoid(logit) {
                    batch.set(s, i, 1);
                    log_prob[s] += ops::log_sigmoid(logit);
                    vqmc_tensor::vector::axpy(a_row, 1.0, w_col);
                } else {
                    log_prob[s] += ops::log_one_minus_sigmoid(logit);
                }
            }
        }
        let log_psi = Vector(log_prob.into_iter().map(|lp| 0.5 * lp).collect());
        (batch, log_psi)
    }
}

impl WaveFunction for Nade {
    fn num_spins(&self) -> usize {
        self.n
    }

    fn num_params(&self) -> usize {
        2 * self.h * self.n + self.h + self.n
    }

    fn log_psi(&self, batch: &SpinBatch) -> Vector {
        Vector::from_fn(batch.batch_size(), |s| {
            let x = batch.sample(s);
            let mut lp = 0.0;
            self.scan(x, |i, _, logit| {
                lp += if x[i] == 1 {
                    ops::log_sigmoid(logit)
                } else {
                    ops::log_one_minus_sigmoid(logit)
                };
            });
            0.5 * lp
        })
    }

    fn weighted_log_psi_grad(&self, batch: &SpinBatch, weights: &Vector) -> Vector {
        assert_eq!(weights.len(), batch.batch_size());
        let (h, n) = (self.h, self.n);
        let mut dw = Matrix::zeros(h, n);
        let mut db = Vector::zeros(h);
        let mut dv = Matrix::zeros(n, h);
        let mut dc = Vector::zeros(n);

        // Per-sample reverse pass over the recursion.
        let mut deltas = vec![0.0f64; n];
        let mut hiddens = Matrix::zeros(n, h);
        for s in 0..batch.batch_size() {
            let wgt = weights[s];
            if wgt == 0.0 {
                continue;
            }
            let x = batch.sample(s);
            self.scan(x, |i, hidden, logit| {
                deltas[i] = wgt * 0.5 * (x[i] as f64 - ops::sigmoid(logit));
                hiddens.row_mut(i).copy_from_slice(hidden);
            });
            // Readout gradients and hidden-pre-activation gradients gᵢ.
            // Suffix-sum trick: dW[:,j] = xⱼ · Σ_{i>j} gᵢ.
            let mut suffix = vec![0.0f64; h];
            for i in (0..n).rev() {
                let d = deltas[i];
                let h_row = hiddens.row(i);
                if d != 0.0 {
                    vqmc_tensor::vector::axpy(dv.row_mut(i), d, h_row);
                    dc[i] += d;
                }
                // gᵢ = d · vᵢ ⊙ h(1−h); accumulate into b and suffix.
                let v_row = self.v.row(i);
                for k in 0..h {
                    let g = d * v_row[k] * ops::sigmoid_prime_from_value(h_row[k]);
                    db[k] += g;
                    // W column j < i receives xⱼ·g — handled by adding g
                    // to the suffix *after* assigning this site's dW,
                    // because aᵢ only sees strictly earlier inputs.
                }
                // dW for column i: uses the suffix accumulated from
                // sites > i.
                if x[i] == 1 {
                    for (k, &sk) in suffix.iter().enumerate() {
                        dw.set(k, i, dw.get(k, i) + sk);
                    }
                }
                for k in 0..h {
                    suffix[k] += d * v_row[k] * ops::sigmoid_prime_from_value(h_row[k]);
                }
            }
        }

        let mut out = Vec::with_capacity(self.num_params());
        out.extend_from_slice(dw.as_slice());
        out.extend_from_slice(&db);
        out.extend_from_slice(dv.as_slice());
        out.extend_from_slice(&dc);
        Vector(out)
    }

    fn per_sample_grads(&self, batch: &SpinBatch) -> Matrix {
        let d = self.num_params();
        let mut rows = Matrix::zeros(batch.batch_size(), d);
        // Reuse the weighted pass with a one-hot weight per sample:
        // clarity over speed — SR with NADE is oracle-scale only.
        for s in 0..batch.batch_size() {
            let single = SpinBatch::from_single(batch.sample(s));
            let g = self.weighted_log_psi_grad(&single, &Vector(vec![1.0]));
            rows.row_mut(s).copy_from_slice(&g);
        }
        rows
    }

    fn params(&self) -> Vector {
        let mut out = Vec::with_capacity(self.num_params());
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(&self.b);
        out.extend_from_slice(self.v.as_slice());
        out.extend_from_slice(&self.c);
        Vector(out)
    }

    fn set_params(&mut self, params: &Vector) {
        assert_eq!(params.len(), self.num_params(), "Nade: param length");
        let (h, n) = (self.h, self.n);
        let mut off = 0;
        self.w = Matrix::from_vec(h, n, params.as_slice()[off..off + h * n].to_vec());
        off += h * n;
        self.b = Vector(params.as_slice()[off..off + h].to_vec());
        off += h;
        self.v = Matrix::from_vec(n, h, params.as_slice()[off..off + n * h].to_vec());
        off += n * h;
        self.c = Vector(params.as_slice()[off..off + n].to_vec());
        self.w_t = self.w.transpose();
    }
}

impl Autoregressive for Nade {
    fn conditionals(&self, batch: &SpinBatch) -> Matrix {
        let mut out = Matrix::zeros(batch.batch_size(), self.n);
        for s in 0..batch.batch_size() {
            let x = batch.sample(s);
            let row = out.row_mut(s);
            self.scan(x, |i, _, logit| {
                row[i] = ops::sigmoid(logit);
            });
        }
        out
    }
}

impl std::fmt::Debug for Nade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Nade(n={}, h={}, d={})", self.n, self.h, self.num_params())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_tensor::batch::enumerate_configs;
    use vqmc_tensor::reduce::log_sum_exp;

    fn tiny() -> Nade {
        Nade::new(5, 7, 11)
    }

    #[test]
    fn normalised_distribution() {
        for n in 1..=9 {
            let m = Nade::new(n, n + 3, 3 + n as u64);
            let all = enumerate_configs(n);
            let lp = m.log_prob(&all);
            let total = log_sum_exp(&lp);
            assert!(total.abs() < 1e-10, "n={n}: Σπ = exp({total})");
        }
    }

    #[test]
    fn conditionals_respect_autoregressive_order() {
        let m = tiny();
        let mut batch = SpinBatch::zeros(1, 5);
        batch.set(0, 1, 1);
        let base = m.conditionals(&batch);
        for j in 0..5 {
            let mut pert = batch.clone();
            pert.flip(0, j);
            let cond = m.conditionals(&pert);
            for i in 0..=j {
                assert!(
                    (cond.get(0, i) - base.get(0, i)).abs() < 1e-14,
                    "conditional {i} saw bit {j}"
                );
            }
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let m = tiny();
        let batch = SpinBatch::from_fn(4, 5, |s, i| (((s + 2) * (i + 1)) % 2) as u8);
        let weights = Vector(vec![1.0, -0.4, 0.8, 2.0]);
        let analytic = m.weighted_log_psi_grad(&batch, &weights);
        let p0 = m.params();
        let f = |p: &[f64]| {
            let mut probe = m.clone();
            probe.set_params(&Vector(p.to_vec()));
            let lp = probe.log_psi(&batch);
            lp.iter().zip(weights.iter()).map(|(l, w)| l * w).sum()
        };
        vqmc_autodiff::check_gradient("nade-weighted", &f, &p0, &analytic, 1e-5);
    }

    #[test]
    fn per_sample_rows_sum_to_weighted() {
        let m = tiny();
        let batch = SpinBatch::from_fn(3, 5, |s, i| ((s + i) % 2) as u8);
        let rows = m.per_sample_grads(&batch);
        let weights = Vector(vec![0.5, -1.5, 2.0]);
        let weighted = m.weighted_log_psi_grad(&batch, &weights);
        let mut acc = Vector::zeros(m.num_params());
        for s in 0..3 {
            vqmc_tensor::vector::axpy(&mut acc, weights[s], rows.row(s));
        }
        for k in 0..m.num_params() {
            assert!((acc[k] - weighted[k]).abs() < 1e-10, "param {k}");
        }
    }

    #[test]
    fn native_sampling_matches_model_log_psi() {
        let m = tiny();
        let mut rng = StdRng::seed_from_u64(5);
        let (batch, log_psi) = m.sample_native(32, &mut rng);
        let fresh = m.log_psi(&batch);
        for s in 0..32 {
            assert!((log_psi[s] - fresh[s]).abs() < 1e-10);
        }
    }

    #[test]
    fn native_sampling_is_exact_chi_square() {
        use vqmc_tensor::batch::encode_config;
        let n = 4;
        let m = Nade::new(n, 6, 9);
        let all = enumerate_configs(n);
        let probs: Vec<f64> = m.log_prob(&all).iter().map(|l| l.exp()).collect();
        let draws = 40_000;
        let (batch, _) = m.sample_native(draws, &mut StdRng::seed_from_u64(3));
        let mut counts = vec![0usize; 16];
        for s in batch.samples() {
            counts[encode_config(s)] += 1;
        }
        let chi2: f64 = (0..16)
            .map(|x| {
                let e = probs[x] * draws as f64;
                (counts[x] as f64 - e) * (counts[x] as f64 - e) / e.max(1e-9)
            })
            .sum();
        assert!(chi2 < 37.7, "chi-square {chi2}");
    }

    #[test]
    fn params_round_trip() {
        let mut m = tiny();
        let batch = enumerate_configs(5);
        let before = m.log_psi(&batch);
        let p = m.params();
        m.set_params(&p);
        let after = m.log_psi(&batch);
        for s in 0..32 {
            assert_eq!(before[s], after[s]);
        }
    }

    /// Rebuilds the NADE computation on the autodiff tape — per-site
    /// prefix-masked hidden states and a row-selected readout — and
    /// returns the gradient of `Σ_s w_s logψ(x_s)` in the flat
    /// `[W|b|V|c]` layout.
    fn tape_weighted_grad(m: &Nade, batch: &SpinBatch, weights: &Vector) -> Vec<f64> {
        use vqmc_autodiff::Tape;
        let (n, h) = (m.num_spins(), m.hidden_size());
        let bs = batch.batch_size();
        let p = m.params();
        let ps = p.as_slice();
        let mut tape = Tape::new();
        let x = tape.input(batch.to_matrix());
        let w = tape.input(Matrix::from_vec(h, n, ps[..h * n].to_vec()));
        let b = tape.input(Matrix::from_vec(1, h, ps[h * n..h * n + h].to_vec()));
        let v = tape.input(Matrix::from_vec(
            n,
            h,
            ps[h * n + h..h * n + h + n * h].to_vec(),
        ));
        let c = tape.input(Matrix::from_vec(1, n, ps[h * n + h + n * h..].to_vec()));
        let mut logits = None;
        for i in 0..n {
            // Site i's hidden state sees bits j < i only.
            let prefix = Matrix::from_fn(bs, n, |_, j| if j < i { 1.0 } else { 0.0 });
            let xp = tape.mul_const(x, prefix);
            let zi = tape.matmul_nt(xp, w);
            let ai = tape.add_row_bias(zi, b);
            let hi = tape.sigmoid(ai); // bs×h
            // Keep only readout row i; its product lands in column i.
            let sel = Matrix::from_fn(n, h, |r, _| if r == i { 1.0 } else { 0.0 });
            let vi = tape.mul_const(v, sel);
            let term = tape.matmul_nt(hi, vi); // bs×n, col i = Vᵢ·hᵢ
            logits = Some(match logits {
                None => term,
                Some(acc) => tape.add(acc, term),
            });
        }
        let lg = tape.add_row_bias(logits.expect("n >= 1"), c);
        let logpi = tape.bernoulli_log_prob(lg, batch.to_matrix());
        let logpsi = tape.scale(logpi, 0.5);
        let weighted =
            tape.mul_const(logpsi, Matrix::from_vec(weights.len(), 1, weights.to_vec()));
        let loss = tape.sum(weighted);
        let grads = tape.backward(loss);
        let mut out = Vec::with_capacity(m.num_params());
        out.extend_from_slice(grads.get(w).as_slice());
        out.extend_from_slice(grads.get(b).as_slice());
        out.extend_from_slice(grads.get(v).as_slice());
        out.extend_from_slice(grads.get(c).as_slice());
        out
    }

    fn assert_close_rel(analytic: &[f64], oracle: &[f64], tag: &str) {
        assert_eq!(analytic.len(), oracle.len(), "{tag}: length");
        for (i, (a, t)) in analytic.iter().zip(oracle).enumerate() {
            let tol = 1e-10 * t.abs().max(1.0);
            assert!(
                (a - t).abs() <= tol,
                "{tag} param {i}: analytic {a} vs tape {t}"
            );
        }
    }

    #[test]
    fn weighted_grad_matches_autodiff_tape() {
        for (n, h, seed) in [(5usize, 7usize, 11u64), (1, 3, 4), (8, 2, 23), (6, 9, 90)] {
            let m = Nade::new(n, h, seed);
            let bs = 5;
            let batch = SpinBatch::from_fn(bs, n, |s, i| {
                (((s + 3) * (i + 2) + seed as usize) % 2) as u8
            });
            let weights = Vector::from_fn(bs, |s| 0.8 - 0.6 * s as f64);
            let analytic = m.weighted_log_psi_grad(&batch, &weights);
            let oracle = tape_weighted_grad(&m, &batch, &weights);
            assert_close_rel(analytic.as_slice(), &oracle, &format!("nade n={n} h={h}"));
        }
    }

    #[test]
    fn per_sample_grads_match_autodiff_tape() {
        // One-hot weight vectors turn the weighted gradient into a
        // per-sample gradient; every row must match the tape oracle.
        let m = tiny();
        let bs = 4;
        let batch = SpinBatch::from_fn(bs, 5, |s, i| (((s + 2) * (i + 1)) % 2) as u8);
        for s in 0..bs {
            let weights = Vector::from_fn(bs, |k| if k == s { 1.0 } else { 0.0 });
            let analytic = m.weighted_log_psi_grad(&batch, &weights);
            let oracle = tape_weighted_grad(&m, &batch, &weights);
            assert_close_rel(analytic.as_slice(), &oracle, &format!("nade sample {s}"));
        }
    }
}
