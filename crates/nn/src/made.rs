//! The MADE autoregressive neural quantum state (paper §2.3 / §5.1),
//! generalised to a composable stack of masked layers.
//!
//! Architecture (depth `D ≥ 1` hidden layers; the paper's ansatz is
//! `D = 1`):
//!
//! ```text
//! Input ──[bs,n]──> MaskedFC₁ ──[bs,h₁]──> ReLU
//!       ──[bs,h₁]─> MaskedFC₂ ──[bs,h₂]──> ReLU ── … ──
//!       ──[bs,h_D]─> MaskedFCout ──[bs,n]──> Sigmoid ──> conditionals
//! ```
//!
//! The sigmoid outputs are the conditionals `pᵢ = p(xᵢ = 1 | x_{<i})`;
//! the model distribution is `πθ(x) = Πᵢ pᵢ^{xᵢ}(1−pᵢ)^{1−xᵢ}` and the
//! wavefunction is its square root, `logψθ(x) = ½ log πθ(x)` —
//! legitimate for ground states of Hamiltonians with non-positive
//! off-diagonals, which are entrywise non-negative (Perron–Frobenius,
//! paper §2.1).
//!
//! ## Parameter layout (flattened)
//!
//! Per layer `[W_l (out·in, row-major) | b_l (out)]`, layers in order —
//! at depth 1 exactly the historical
//! `[W₁ (h·n) | b₁ (h) | W₂ (n·h) | b₂ (n)]`, total `d = 2hn + h + n`
//! (the gradient-vector length quoted in the paper's §4).
//!
//! ## Mask invariant
//!
//! Masked weight entries are identically zero for the lifetime of the
//! model: they are zero-initialised, every gradient is masked, and
//! [`Made::set_params`] re-applies the masks defensively.  The layer
//! masks compose (strict input/output rule, non-strict interior rule —
//! see [`crate::masks`]) so the autoregressive property is structural
//! at any depth, not statistical; `tests` property-check it by
//! perturbing suffix bits.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vqmc_tensor::{ops, Matrix, SpinBatch, Vector, Workspace};

use crate::masks;
use crate::{init, Autoregressive, WaveFunction};

/// Hard cap on stack size (hidden layers + output layer).  Lets the
/// workspace use fixed inline storage so pool checkout stays
/// allocation-free at any depth; 8 hidden layers is far beyond the
/// regime where this ansatz family is competitive.
pub const MAX_LAYERS: usize = 9;

/// One masked affine layer `y = x Wᵀ + b` with a structural mask
/// (`W ⊙ M = W` always).  The activation between layers is ReLU; the
/// final layer's outputs are the conditional logits.
#[derive(Clone, Serialize, Deserialize)]
pub struct MaskedLinear {
    w: Matrix,
    b: Vector,
    mask: Matrix,
}

impl MaskedLinear {
    /// Masked weights (`out × in`, row-major).
    pub fn w(&self) -> &Matrix {
        &self.w
    }

    /// Bias (`out`).
    pub fn b(&self) -> &Vector {
        &self.b
    }

    /// The binary mask (`out × in`).
    pub fn mask(&self) -> &Matrix {
        &self.mask
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }
}

/// Masked autoencoder wavefunction: a stack of [`MaskedLinear`] layers
/// with ReLU between them.
#[derive(Clone, Serialize, Deserialize)]
pub struct Made {
    n: usize,
    hidden: Vec<usize>,
    layers: Vec<MaskedLinear>,
    /// Bumped on every [`Made::set_params`].  Lets callers that cache
    /// derived quantities (e.g. the incremental sampler's `W₁ᵀ` or the
    /// per-layer f32 weight caches) detect staleness without holding a
    /// borrow of the model.
    #[serde(default)]
    version: u64,
}

/// Named scratch buffers for MADE forward and backward passes.
///
/// Holding one of these across calls makes every `_with` method on
/// [`Made`] allocation-free at steady state: all activations, gradient
/// accumulators and per-sample scratch rows live here and are `resize`d
/// in place (capacity is kept, so after the first call on a given batch
/// shape no heap traffic occurs).  Per-layer buffers sit in fixed
/// `[_; MAX_LAYERS]` arrays — unused slots are empty and never touch
/// the heap — so checkout stays zero-alloc at every depth.
///
/// A `MadeWorkspace` can also be checked out of a generic
/// [`Workspace`] pool ([`MadeWorkspace::from_pool`]) and returned to it
/// ([`MadeWorkspace::into_pool`]); because the pool is LIFO and the
/// checkout order is fixed for a given stack shape, each slot gets the
/// same backing buffer every iteration.
#[derive(Default)]
pub struct MadeWorkspace {
    /// Network input (the batch as `f64` 0/1 rows).
    pub x: Matrix,
    /// Layers this workspace is currently shaped for.
    num_layers: usize,
    /// Pre-activations per layer; `z[num_layers-1]` is the output
    /// logits.
    z: [Matrix; MAX_LAYERS],
    /// ReLU activations per hidden layer (`h[l] = relu(z[l])`,
    /// `l < num_layers - 1`).
    h: [Matrix; MAX_LAYERS],
    /// Backprop: `δ` per layer (`bs × out_l`).
    delta: [Matrix; MAX_LAYERS],
    /// Weight-gradient accumulators (`out_l × in_l`).
    dw: [Matrix; MAX_LAYERS],
    /// Bias-gradient accumulators (`out_l`).
    db: [Vector; MAX_LAYERS],
    /// Per-sample `δ` scratch rows (length `out_l`).
    delta_rows: [Vec<f64>; MAX_LAYERS],
}

impl MadeWorkspace {
    /// A fresh workspace with empty buffers (they grow on first use).
    pub fn new() -> Self {
        MadeWorkspace::default()
    }

    /// Output logits of the last forward pass (`bs × n`).
    pub fn logits(&self) -> &Matrix {
        &self.z[self.num_layers - 1]
    }

    fn ensure_layers(&mut self, num_layers: usize) {
        assert!(
            (1..=MAX_LAYERS).contains(&num_layers),
            "MadeWorkspace: {num_layers} layers exceeds MAX_LAYERS"
        );
        self.num_layers = num_layers;
    }

    /// Checks the workspace's buffers out of a shared pool for a stack
    /// of `num_layers` layers.  Pair with [`MadeWorkspace::into_pool`];
    /// the fixed LIFO checkout order means each slot reuses the same
    /// pool buffer every iteration.
    pub fn from_pool(ws: &mut Workspace, num_layers: usize) -> Self {
        // `take(0)` hands back a parked buffer with its capacity intact;
        // the zero-shape matrix/vector wrappers are then grown in place
        // by the first `_into` kernel that writes them.  Checkout order:
        // x, z[..], h[..], delta[..], dw[..], db[..], delta_rows[..].
        let mut out = MadeWorkspace::default();
        out.ensure_layers(num_layers);
        out.x = Matrix::from_vec(0, 0, ws.take(0));
        for slot in out.z.iter_mut().take(num_layers) {
            *slot = Matrix::from_vec(0, 0, ws.take(0));
        }
        for slot in out.h.iter_mut().take(num_layers - 1) {
            *slot = Matrix::from_vec(0, 0, ws.take(0));
        }
        for slot in out.delta.iter_mut().take(num_layers) {
            *slot = Matrix::from_vec(0, 0, ws.take(0));
        }
        for slot in out.dw.iter_mut().take(num_layers) {
            *slot = Matrix::from_vec(0, 0, ws.take(0));
        }
        for slot in out.db.iter_mut().take(num_layers) {
            *slot = Vector(ws.take(0));
        }
        for slot in out.delta_rows.iter_mut().take(num_layers) {
            *slot = ws.take(0);
        }
        out
    }

    /// Returns every buffer to the pool, in reverse checkout order so
    /// the next [`MadeWorkspace::from_pool`] (same stack shape) sees
    /// them in the same positions (LIFO discipline).
    pub fn into_pool(mut self, ws: &mut Workspace) {
        let ll = self.num_layers;
        for l in (0..ll).rev() {
            ws.give(std::mem::take(&mut self.delta_rows[l]));
        }
        for l in (0..ll).rev() {
            ws.give_vector(std::mem::take(&mut self.db[l]));
        }
        for l in (0..ll).rev() {
            ws.give_matrix(std::mem::take(&mut self.dw[l]));
        }
        for l in (0..ll).rev() {
            ws.give_matrix(std::mem::take(&mut self.delta[l]));
        }
        for l in (0..ll.saturating_sub(1)).rev() {
            ws.give_matrix(std::mem::take(&mut self.h[l]));
        }
        for l in (0..ll).rev() {
            ws.give_matrix(std::mem::take(&mut self.z[l]));
        }
        ws.give_matrix(self.x);
    }

    /// Number of pool buffers a checkout for `num_layers` layers uses
    /// (tests assert the pool parks exactly this many).
    pub fn pool_buffers(num_layers: usize) -> usize {
        1 + 5 * num_layers + (num_layers - 1)
    }
}

impl Made {
    /// Creates a depth-1 MADE with `n` spins and `h` hidden units,
    /// parameters initialised from `seed` (Xavier weights,
    /// PyTorch-style biases), masks applied.  Bit-identical to the
    /// historical two-matrix constructor.
    pub fn new(n: usize, h: usize, seed: u64) -> Self {
        Made::with_hidden(n, &[h], seed)
    }

    /// Creates a MADE with `n` spins and one hidden layer per entry of
    /// `hidden`, parameters initialised from `seed`.  The RNG draw
    /// order is fixed per layer (Xavier weights, then bias), so
    /// `with_hidden(n, &[h], seed)` reproduces `new(n, h, seed)`
    /// exactly.
    pub fn with_hidden(n: usize, hidden: &[usize], seed: u64) -> Self {
        assert!(
            n >= 1 && !hidden.is_empty() && hidden.iter().all(|&h| h >= 1),
            "Made: degenerate shape"
        );
        assert!(
            hidden.len() < MAX_LAYERS,
            "Made: {} hidden layers exceeds the {} supported",
            hidden.len(),
            MAX_LAYERS - 1
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let degrees: Vec<Vec<usize>> = hidden
            .iter()
            .map(|&h| masks::hidden_degrees(n, h))
            .collect();
        let mut layers = Vec::with_capacity(hidden.len() + 1);
        let mut in_dim = n;
        for (l, &hl) in hidden.iter().enumerate() {
            let mask = if l == 0 {
                masks::input_mask(n, &degrees[0])
            } else {
                masks::hidden_mask(&degrees[l - 1], &degrees[l])
            };
            let mut w = init::xavier_uniform(hl, in_dim, &mut rng);
            w.hadamard_inplace(&mask);
            let b = init::linear_bias(in_dim, hl, &mut rng);
            layers.push(MaskedLinear { w, b, mask });
            in_dim = hl;
        }
        let mask = masks::output_mask(n, degrees.last().unwrap());
        let mut w = init::xavier_uniform(n, in_dim, &mut rng);
        w.hadamard_inplace(&mask);
        let b = init::linear_bias(in_dim, n, &mut rng);
        layers.push(MaskedLinear { w, b, mask });
        Made {
            n,
            hidden: hidden.to_vec(),
            layers,
            version: 0,
        }
    }

    /// Monotone counter bumped by every [`Made::set_params`].  Callers
    /// caching quantities derived from the parameters (the incremental
    /// AUTO sampler caches `W₁ᵀ`, the serve engine caches f32 weights)
    /// compare this against their cached value to decide whether to
    /// recompute.
    pub fn params_version(&self) -> u64 {
        self.version
    }

    /// First hidden layer's width (the panel width of the fused
    /// sampling kernel).
    pub fn hidden_size(&self) -> usize {
        self.hidden[0]
    }

    /// All hidden-layer widths, input to output.
    pub fn hidden_sizes(&self) -> &[usize] {
        &self.hidden
    }

    /// Number of hidden layers.
    pub fn depth(&self) -> usize {
        self.hidden.len()
    }

    /// The full layer stack (`depth() + 1` masked layers).
    pub fn layers(&self) -> &[MaskedLinear] {
        &self.layers
    }

    /// Masked first-layer weights (`h₁ × n`).
    pub fn w1(&self) -> &Matrix {
        &self.layers[0].w
    }

    /// First-layer bias (`h₁`).
    pub fn b1(&self) -> &Vector {
        &self.layers[0].b
    }

    /// Masked output-layer weights (`n × h_D`).
    pub fn w2(&self) -> &Matrix {
        &self.layers[self.layers.len() - 1].w
    }

    /// Output-layer bias (`n`).
    pub fn b2(&self) -> &Vector {
        &self.layers[self.layers.len() - 1].b
    }

    /// The input mask `M¹` (tests / diagnostics).
    pub fn mask1(&self) -> &Matrix {
        &self.layers[0].mask
    }

    /// The output mask `M²` (tests / diagnostics).
    pub fn mask2(&self) -> &Matrix {
        &self.layers[self.layers.len() - 1].mask
    }

    /// Forward pass into `ws` (fills `ws.x`, the per-layer
    /// pre-activations and ReLU activations; allocation-free once `ws`
    /// is warm).
    pub fn forward_with(&self, batch: &SpinBatch, ws: &mut MadeWorkspace) {
        assert_eq!(batch.num_spins(), self.n, "Made: spin-count mismatch");
        let ll = self.layers.len();
        ws.ensure_layers(ll);
        batch.to_matrix_into(&mut ws.x);
        let MadeWorkspace { x, z, h, .. } = ws;
        x.matmul_nt_into(&self.layers[0].w, &mut z[0]);
        z[0].add_row_bias(&self.layers[0].b);
        for l in 1..ll {
            h[l - 1].copy_from(&z[l - 1]);
            h[l - 1].map_inplace(ops::relu);
            h[l - 1].matmul_nt_into(&self.layers[l].w, &mut z[l]);
            z[l].add_row_bias(&self.layers[l].b);
        }
    }

    /// Output logits `aᵢ` (pre-sigmoid conditionals) for a batch — the
    /// numerically safe representation for log-probabilities.
    pub fn logits(&self, batch: &SpinBatch) -> Matrix {
        let mut ws = MadeWorkspace::new();
        self.forward_with(batch, &mut ws);
        let ll = self.layers.len();
        std::mem::take(&mut ws.z[ll - 1])
    }

    /// Per-sample `logπ(x) = Σᵢ xᵢ·logσ(aᵢ) + (1−xᵢ)·logσ(−aᵢ)`,
    /// computed from logits for stability.
    ///
    /// Uses `ln(1−σ(a)) = ln σ(−a)`: the logits are copied with the
    /// sign flipped wherever the bit is 0, one vectorised
    /// `log_sigmoid_slice` handles the whole row, and the row is
    /// pairwise-summed.  `scratch` is a warm workspace buffer.
    fn log_prob_from_logits_into(
        batch: &SpinBatch,
        logits: &Matrix,
        scratch: &mut Vec<f64>,
        out: &mut Vector,
    ) {
        out.resize(batch.batch_size());
        scratch.resize(logits.cols(), 0.0);
        for s in 0..batch.batch_size() {
            let a_row = logits.row(s);
            for ((dst, &bit), &a) in scratch.iter_mut().zip(batch.sample(s)).zip(a_row) {
                *dst = if bit == 1 { a } else { -a };
            }
            ops::log_sigmoid_slice(scratch);
            out[s] = vqmc_tensor::reduce::sum(scratch);
        }
    }

    /// [`WaveFunction::log_psi`] with caller-owned scratch and output.
    pub fn log_psi_with(&self, batch: &SpinBatch, ws: &mut MadeWorkspace, out: &mut Vector) {
        self.forward_with(batch, ws);
        let last = self.layers.len() - 1;
        let MadeWorkspace { z, delta_rows, .. } = ws;
        Self::log_prob_from_logits_into(batch, &z[last], &mut delta_rows[last], out);
        out.scale(0.5);
    }

    /// [`Autoregressive::conditionals`] with caller-owned scratch and
    /// output.
    pub fn conditionals_with(&self, batch: &SpinBatch, ws: &mut MadeWorkspace, out: &mut Matrix) {
        self.forward_with(batch, ws);
        out.copy_from(ws.logits());
        ops::sigmoid_slice(out.as_mut_slice());
    }

    /// [`WaveFunction::weighted_log_psi_grad`] with caller-owned scratch
    /// and output.
    pub fn weighted_log_psi_grad_with(
        &self,
        batch: &SpinBatch,
        weights: &Vector,
        ws: &mut MadeWorkspace,
        out: &mut Vector,
    ) {
        assert_eq!(weights.len(), batch.batch_size());
        self.forward_with(batch, ws);
        self.backward_with(batch, weights, ws, out);
    }

    /// Shared backward pass over the activations left in `ws` by
    /// [`Made::forward_with`].
    ///
    /// `out_weights[s]` scales sample `s`'s contribution to `logψ`; `out`
    /// receives the flat vector `Σ_s out_weights[s] · ∇θ logψ(x_s)`.
    fn backward_with(
        &self,
        batch: &SpinBatch,
        out_weights: &Vector,
        ws: &mut MadeWorkspace,
        out: &mut Vector,
    ) {
        let bs = batch.batch_size();
        let ll = self.layers.len();
        let last = ll - 1;
        // Split the workspace into per-field borrows so reads of the
        // forward activations can overlap writes to the gradient buffers.
        let MadeWorkspace {
            x,
            z,
            h,
            delta,
            dw,
            db,
            ..
        } = ws;
        // δA[s,i] = w_s · ½ (xᵢ − σ(aᵢ))   (∂logψ/∂aᵢ = ½ ∂logπ/∂aᵢ).
        // One matrix-wide vectorised sigmoid over a copy of the logits,
        // then the cheap affine combine per row.
        delta[last].copy_from(&z[last]);
        ops::sigmoid_slice(delta[last].as_mut_slice());
        for s in 0..bs {
            let w = out_weights[s];
            let x_row = batch.sample(s);
            let out_row = delta[last].row_mut(s);
            for i in 0..self.n {
                out_row[i] = w * 0.5 * (x_row[i] as f64 - out_row[i]);
            }
        }
        // Walk the stack top-down: dW_l = δ_lᵀ act_l ⊙ M_l,
        // db_l = colsum δ_l, then δ_{l-1} = δ_l W_l ⊙ relu'(Z_{l-1}).
        for l in (0..ll).rev() {
            let act: &Matrix = if l == 0 { x } else { &h[l - 1] };
            delta[l].matmul_tn_into(act, &mut dw[l]);
            dw[l].hadamard_inplace(&self.layers[l].mask);
            column_sums_into(&delta[l], &mut db[l]);
            if l > 0 {
                let (lo, hi) = delta.split_at_mut(l);
                hi[0].matmul_nn_into(&self.layers[l].w, &mut lo[l - 1]);
                for (dz, &zv) in lo[l - 1].as_mut_slice().iter_mut().zip(z[l - 1].as_slice()) {
                    *dz *= ops::relu_prime(zv);
                }
            }
        }
        // Flatten `[dW_0 | db_0 | dW_1 | db_1 | …]` into `out`.
        out.resize(self.num_params());
        let o = out.as_mut_slice();
        let mut off = 0;
        for l in 0..ll {
            let wg = dw[l].as_slice();
            o[off..off + wg.len()].copy_from_slice(wg);
            off += wg.len();
            let bg = db[l].as_slice();
            o[off..off + bg.len()].copy_from_slice(bg);
            off += bg.len();
        }
    }

    /// [`WaveFunction::per_sample_grads`] with caller-owned scratch and
    /// output.
    pub fn per_sample_grads_with(
        &self,
        batch: &SpinBatch,
        ws: &mut MadeWorkspace,
        out: &mut Matrix,
    ) {
        let bs = batch.batch_size();
        let d = self.num_params();
        let ll = self.layers.len();
        let last = ll - 1;
        self.forward_with(batch, ws);
        out.resize(bs, d);
        out.fill(0.0);
        let MadeWorkspace {
            z, h, delta_rows, ..
        } = ws;
        for (row, layer) in delta_rows.iter_mut().zip(&self.layers) {
            row.resize(layer.out_dim(), 0.0);
        }
        // One-sample backward per row: exact but explicit.  The weight
        // structure (δᵀ·act outer products) is computed directly into
        // the row to avoid a temporary per-layer matrix per sample.
        for s in 0..bs {
            let x_row = batch.sample(s);
            // δ_out (length n): vectorised sigmoid on a copy of the
            // logit row, then the affine combine.
            let dr = &mut delta_rows[last];
            dr.copy_from_slice(z[last].row(s));
            ops::sigmoid_slice(dr);
            for i in 0..self.n {
                dr[i] = 0.5 * (x_row[i] as f64 - dr[i]);
            }
            // δ_{l-1} = (δ_l W_l) ⊙ relu'(z_{l-1}).
            for l in (1..ll).rev() {
                let (lo, hi) = delta_rows.split_at_mut(l);
                let src = &hi[0];
                let dst = &mut lo[l - 1];
                dst.fill(0.0);
                for (i, &dv) in src.iter().enumerate() {
                    if dv != 0.0 {
                        vqmc_tensor::vector::axpy(dst, dv, self.layers[l].w.row(i));
                    }
                }
                for (dz, &zv) in dst.iter_mut().zip(z[l - 1].row(s)) {
                    *dz *= ops::relu_prime(zv);
                }
            }
            let row = out.row_mut(s);
            let mut off = 0;
            for l in 0..ll {
                let layer = &self.layers[l];
                let (od, id) = (layer.out_dim(), layer.in_dim());
                let dr = &delta_rows[l];
                if l == 0 {
                    // dW₁[k, d'] = δz_k · x_d' · M¹ — x is 0/1 so just
                    // copy δz into the columns where the input bit is
                    // set and the mask allows it.
                    for (k, &dz) in dr.iter().enumerate() {
                        if dz != 0.0 {
                            let mrow = layer.mask.row(k);
                            let base = off + k * id;
                            for d2 in 0..id {
                                if x_row[d2] == 1 && mrow[d2] == 1.0 {
                                    row[base + d2] = dz;
                                }
                            }
                        }
                    }
                } else {
                    let act = h[l - 1].row(s);
                    for (i, &dv) in dr.iter().enumerate() {
                        if dv != 0.0 {
                            let mrow = layer.mask.row(i);
                            let base = off + i * id;
                            for k in 0..id {
                                if mrow[k] == 1.0 {
                                    row[base + k] = dv * act[k];
                                }
                            }
                        }
                    }
                }
                off += od * id;
                row[off..off + od].copy_from_slice(dr);
                off += od;
            }
        }
    }
}

fn column_sums_into(m: &Matrix, out: &mut Vector) {
    out.resize(m.cols());
    out.fill(0.0);
    for row in m.rows_iter() {
        vqmc_tensor::vector::axpy(out, 1.0, row);
    }
}

impl WaveFunction for Made {
    fn num_spins(&self) -> usize {
        self.n
    }

    fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.out_dim() * (l.in_dim() + 1))
            .sum()
    }

    fn log_psi(&self, batch: &SpinBatch) -> Vector {
        let mut ws = MadeWorkspace::new();
        let mut out = Vector::default();
        self.log_psi_with(batch, &mut ws, &mut out);
        out
    }

    fn weighted_log_psi_grad(&self, batch: &SpinBatch, weights: &Vector) -> Vector {
        let mut ws = MadeWorkspace::new();
        let mut out = Vector::default();
        self.weighted_log_psi_grad_with(batch, weights, &mut ws, &mut out);
        out
    }

    fn per_sample_grads(&self, batch: &SpinBatch) -> Matrix {
        let mut ws = MadeWorkspace::new();
        let mut out = Matrix::default();
        self.per_sample_grads_with(batch, &mut ws, &mut out);
        out
    }

    fn params(&self) -> Vector {
        let mut out = Vector::default();
        self.params_into(&mut out);
        out
    }

    fn set_params(&mut self, params: &Vector) {
        assert_eq!(params.len(), self.num_params(), "Made: param length");
        let p = params.as_slice();
        let mut off = 0;
        // In place: the existing weight/bias buffers are overwritten, so
        // a training step performs no parameter-storage allocation.
        for layer in &mut self.layers {
            let wlen = layer.w.as_slice().len();
            layer.w.as_mut_slice().copy_from_slice(&p[off..off + wlen]);
            off += wlen;
            let blen = layer.b.len();
            layer.b.as_mut_slice().copy_from_slice(&p[off..off + blen]);
            off += blen;
            // Defensive: the mask invariant survives arbitrary inputs.
            layer.w.hadamard_inplace(&layer.mask);
        }
        self.version = self.version.wrapping_add(1);
    }

    fn log_psi_into(&self, batch: &SpinBatch, ws: &mut Workspace, out: &mut Vector) {
        let mut mws = MadeWorkspace::from_pool(ws, self.layers.len());
        self.log_psi_with(batch, &mut mws, out);
        mws.into_pool(ws);
    }

    fn weighted_log_psi_grad_into(
        &self,
        batch: &SpinBatch,
        weights: &Vector,
        ws: &mut Workspace,
        out: &mut Vector,
    ) {
        let mut mws = MadeWorkspace::from_pool(ws, self.layers.len());
        self.weighted_log_psi_grad_with(batch, weights, &mut mws, out);
        mws.into_pool(ws);
    }

    fn per_sample_grads_into(&self, batch: &SpinBatch, ws: &mut Workspace, out: &mut Matrix) {
        let mut mws = MadeWorkspace::from_pool(ws, self.layers.len());
        self.per_sample_grads_with(batch, &mut mws, out);
        mws.into_pool(ws);
    }

    fn params_into(&self, out: &mut Vector) {
        out.resize(self.num_params());
        let o = out.as_mut_slice();
        let mut off = 0;
        for layer in &self.layers {
            let ws = layer.w.as_slice();
            o[off..off + ws.len()].copy_from_slice(ws);
            off += ws.len();
            let bs = layer.b.as_slice();
            o[off..off + bs.len()].copy_from_slice(bs);
            off += bs.len();
        }
    }
}

impl Autoregressive for Made {
    fn conditionals(&self, batch: &SpinBatch) -> Matrix {
        let mut ws = MadeWorkspace::new();
        let mut out = Matrix::default();
        self.conditionals_with(batch, &mut ws, &mut out);
        out
    }

    fn conditionals_into(&self, batch: &SpinBatch, ws: &mut Workspace, out: &mut Matrix) {
        let mut mws = MadeWorkspace::from_pool(ws, self.layers.len());
        self.conditionals_with(batch, &mut mws, out);
        mws.into_pool(ws);
    }
}

impl std::fmt::Debug for Made {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Made(n={}, hidden={:?}, d={})",
            self.n,
            self.hidden,
            self.num_params()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_tensor::batch::enumerate_configs;
    use vqmc_tensor::reduce::log_sum_exp;

    fn tiny() -> Made {
        Made::new(5, 9, 42)
    }

    /// The stack shapes the deep tests sweep: depths 1–3.
    fn stack_shapes() -> Vec<Vec<usize>> {
        vec![vec![9], vec![7, 5], vec![6, 5, 4]]
    }

    #[test]
    fn shapes_and_param_count() {
        let m = tiny();
        assert_eq!(m.num_spins(), 5);
        assert_eq!(m.num_params(), 2 * 9 * 5 + 9 + 5);
        assert_eq!(m.params().len(), m.num_params());
        assert_eq!(m.depth(), 1);
        assert_eq!(m.hidden_sizes(), &[9]);
    }

    #[test]
    fn with_hidden_single_layer_matches_new_exactly() {
        // `new` is now a thin wrapper; pin the RNG draw order so the
        // refactor cannot silently reshuffle initialisation.
        let a = Made::new(7, 11, 123);
        let b = Made::with_hidden(7, &[11], 123);
        assert_eq!(a.params().as_slice(), b.params().as_slice());
    }

    #[test]
    fn deep_param_count() {
        let m = Made::with_hidden(5, &[7, 5], 1);
        assert_eq!(m.num_params(), 7 * (5 + 1) + 5 * (7 + 1) + 5 * (5 + 1));
        assert_eq!(m.depth(), 2);
        assert_eq!(m.layers().len(), 3);
    }

    #[test]
    fn distribution_is_exactly_normalised() {
        // Σ_x π(x) = 1 — THE property that makes AUTO sampling exact.
        for n in 1..=10 {
            let m = Made::new(n, 2 * n + 3, 7 + n as u64);
            let all = enumerate_configs(n);
            let log_probs = m.log_prob(&all);
            let total = log_sum_exp(&log_probs);
            assert!(
                total.abs() < 1e-10,
                "n={n}: Σπ = exp({total}) deviates from 1"
            );
        }
    }

    #[test]
    fn deep_distribution_is_exactly_normalised() {
        for hidden in stack_shapes() {
            for n in 1..=8 {
                let m = Made::with_hidden(n, &hidden, 31 + n as u64);
                let all = enumerate_configs(n);
                let total = log_sum_exp(&m.log_prob(&all));
                assert!(
                    total.abs() < 1e-10,
                    "n={n} hidden={hidden:?}: Σπ = exp({total}) deviates from 1"
                );
            }
        }
    }

    #[test]
    fn conditionals_ignore_suffix_bits() {
        // Autoregressive property: p(x_i|·) must not change when any bit
        // j >= i changes — at every depth.
        for hidden in stack_shapes() {
            let m = Made::with_hidden(5, &hidden, 42);
            let mut batch = SpinBatch::zeros(1, 5);
            batch.set(0, 0, 1);
            batch.set(0, 2, 1);
            let base = m.conditionals(&batch);
            for j in 0..5 {
                let mut perturbed = batch.clone();
                perturbed.flip(0, j);
                let cond = m.conditionals(&perturbed);
                for i in 0..=j {
                    assert!(
                        (cond.get(0, i) - base.get(0, i)).abs() < 1e-14,
                        "hidden={hidden:?}: conditional {i} changed when bit {j} flipped"
                    );
                }
            }
        }
    }

    #[test]
    fn log_psi_is_half_log_prob() {
        let m = tiny();
        let batch = enumerate_configs(5);
        let lp = m.log_psi(&batch);
        let lpr = m.log_prob(&batch);
        for s in 0..batch.batch_size() {
            assert!((2.0 * lp[s] - lpr[s]).abs() < 1e-14);
        }
    }

    #[test]
    fn params_round_trip_preserves_log_psi() {
        for hidden in stack_shapes() {
            let mut m = Made::with_hidden(5, &hidden, 42);
            let batch = enumerate_configs(5);
            let before = m.log_psi(&batch);
            let p = m.params();
            m.set_params(&p);
            let after = m.log_psi(&batch);
            for s in 0..batch.batch_size() {
                assert_eq!(before[s], after[s]);
            }
        }
    }

    #[test]
    fn set_params_enforces_masks() {
        for hidden in stack_shapes() {
            let mut m = Made::with_hidden(5, &hidden, 42);
            let mut p = m.params();
            // Poison every parameter, including masked slots.
            for v in p.iter_mut() {
                *v += 1.0;
            }
            m.set_params(&p);
            // Masked entries must still be zero — in every layer.
            for (l, layer) in m.layers().iter().enumerate() {
                for i in 0..layer.out_dim() {
                    for j in 0..layer.in_dim() {
                        if layer.mask().get(i, j) == 0.0 {
                            assert_eq!(
                                layer.w().get(i, j),
                                0.0,
                                "hidden={hidden:?} layer {l}: masked ({i},{j}) nonzero"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn weighted_grad_matches_finite_difference() {
        let m = tiny();
        let batch = SpinBatch::from_fn(3, 5, |s, i| ((s + i) % 2) as u8);
        let weights = Vector(vec![1.0, -0.5, 2.0]);
        let analytic = m.weighted_log_psi_grad(&batch, &weights);

        let p0 = m.params();
        let f = |p: &[f64]| {
            let mut probe = m.clone();
            probe.set_params(&Vector(p.to_vec()));
            let lp = probe.log_psi(&batch);
            lp.iter().zip(weights.iter()).map(|(l, w)| l * w).sum()
        };
        // Masked coordinates receive no gradient from either method;
        // check_gradient covers every coordinate.
        vqmc_autodiff::check_gradient("made-weighted", &f, &p0, &analytic, 1e-5);
    }

    /// Rebuilds the stack's computation on the autodiff tape and
    /// returns the parameter gradient of `Σ_s w_s logψ(x_s)` in the
    /// `Made` flat layout.
    fn tape_weighted_grad(m: &Made, batch: &SpinBatch, weights: &Vector) -> Vec<f64> {
        use vqmc_autodiff::Tape;
        let mut tape = Tape::new();
        let x = tape.input(batch.to_matrix());
        let mut param_ids = Vec::new();
        let mut cur = x;
        for (l, layer) in m.layers().iter().enumerate() {
            let w = tape.input(layer.w().clone());
            let b = tape.input(Matrix::from_vec(1, layer.b().len(), layer.b().to_vec()));
            param_ids.push((w, b));
            // Masks as constants (so gradients arrive masked like
            // analytic).
            let wm = tape.mul_const(w, layer.mask().clone());
            if l > 0 {
                cur = tape.relu(cur);
            }
            let zz = tape.matmul_nt(cur, wm);
            cur = tape.add_row_bias(zz, b);
        }
        let logpi = tape.bernoulli_log_prob(cur, batch.to_matrix()); // bs×1
        let logpsi = tape.scale(logpi, 0.5);
        let weighted = tape.mul_const(
            logpsi,
            Matrix::from_vec(weights.len(), 1, weights.to_vec()),
        );
        let loss = tape.sum(weighted);
        let grads = tape.backward(loss);
        let mut tape_grad = Vec::new();
        for (w, b) in param_ids {
            tape_grad.extend_from_slice(grads.get(w).as_slice());
            tape_grad.extend_from_slice(grads.get(b).as_slice());
        }
        tape_grad
    }

    fn assert_close_rel(analytic: &[f64], oracle: &[f64], tag: &str) {
        assert_eq!(analytic.len(), oracle.len(), "{tag}: length");
        for (i, (a, t)) in analytic.iter().zip(oracle).enumerate() {
            let tol = 1e-10 * t.abs().max(1.0);
            assert!(
                (a - t).abs() <= tol,
                "{tag} param {i}: analytic {a} vs tape {t}"
            );
        }
    }

    #[test]
    fn weighted_grad_matches_autodiff_tape() {
        // The historical depth-1 oracle check, kept verbatim in spirit.
        let m = tiny();
        let batch = SpinBatch::from_fn(4, 5, |s, i| ((s * 3 + i * 2) % 2) as u8);
        let weights = Vector(vec![0.7, 1.3, -1.0, 0.25]);
        let analytic = m.weighted_log_psi_grad(&batch, &weights);
        let oracle = tape_weighted_grad(&m, &batch, &weights);
        assert_close_rel(analytic.as_slice(), &oracle, "depth-1");
    }

    #[test]
    fn deep_weighted_grad_matches_autodiff_tape() {
        // The tentpole oracle: hand-derived backprop through the stack
        // vs the tape, ≤1e-10 relative, at depths 1–3, several seeds
        // and batch patterns.
        for hidden in stack_shapes() {
            for seed in [3u64, 17, 91] {
                let m = Made::with_hidden(6, &hidden, seed);
                let bs = 5;
                let batch = SpinBatch::from_fn(bs, 6, |s, i| {
                    (((s + 1) * (i + 2) + seed as usize) % 2) as u8
                });
                let weights =
                    Vector::from_fn(bs, |s| 0.4 * s as f64 - 0.7 + 0.1 * seed as f64);
                let analytic = m.weighted_log_psi_grad(&batch, &weights);
                let oracle = tape_weighted_grad(&m, &batch, &weights);
                assert_close_rel(
                    analytic.as_slice(),
                    &oracle,
                    &format!("hidden={hidden:?} seed={seed}"),
                );
            }
        }
    }

    #[test]
    fn deep_per_sample_grads_match_autodiff_tape() {
        // Each per-sample row must equal the tape gradient with a
        // one-hot weight on that sample.
        for hidden in stack_shapes() {
            let m = Made::with_hidden(6, &hidden, 5);
            let bs = 3;
            let batch =
                SpinBatch::from_fn(bs, 6, |s, i| (((s * 5) + i * 3) % 2) as u8);
            let rows = m.per_sample_grads(&batch);
            for s in 0..bs {
                let onehot = Vector::from_fn(bs, |q| if q == s { 1.0 } else { 0.0 });
                let oracle = tape_weighted_grad(&m, &batch, &onehot);
                assert_close_rel(
                    rows.row(s),
                    &oracle,
                    &format!("hidden={hidden:?} sample {s}"),
                );
            }
        }
    }

    #[test]
    fn per_sample_grads_sum_to_weighted_grad() {
        for hidden in stack_shapes() {
            let m = Made::with_hidden(5, &hidden, 42);
            let batch = SpinBatch::from_fn(6, 5, |s, i| ((s + 2 * i) % 2) as u8);
            let rows = m.per_sample_grads(&batch);
            assert_eq!(rows.shape(), (6, m.num_params()));
            let weights = Vector(vec![0.3, -1.0, 0.5, 2.0, 1.0, -0.25]);
            let weighted = m.weighted_log_psi_grad(&batch, &weights);
            // Σ_s w_s · row_s must equal the one-pass weighted gradient.
            let mut acc = Vector::zeros(m.num_params());
            for s in 0..6 {
                vqmc_tensor::vector::axpy(&mut acc, weights[s], rows.row(s));
            }
            for k in 0..m.num_params() {
                assert!(
                    (acc[k] - weighted[k]).abs() < 1e-10,
                    "hidden={hidden:?} param {k}: {} vs {}",
                    acc[k],
                    weighted[k]
                );
            }
        }
    }

    #[test]
    fn workspace_paths_are_bit_identical_to_allocating() {
        // One reused MadeWorkspace across calls and batch shapes must
        // reproduce the allocating entry points exactly (the `_with`
        // paths ARE the implementation; this pins the wrapper plumbing)
        // — including when the same workspace is reused across models
        // of different depth.
        for hidden in stack_shapes() {
            let m = Made::with_hidden(5, &hidden, 42);
            let mut ws = MadeWorkspace::new();
            let mut lp = Vector::default();
            let mut cond = Matrix::default();
            let mut grad = Vector::default();
            let mut rows = Matrix::default();
            for bs in [1usize, 3, 8, 2] {
                let batch = SpinBatch::from_fn(bs, 5, |s, i| ((s * 7 + i * 3) % 2) as u8);
                let weights = Vector::from_fn(bs, |s| 0.25 * s as f64 - 0.5);

                m.log_psi_with(&batch, &mut ws, &mut lp);
                assert_eq!(lp.as_slice(), m.log_psi(&batch).as_slice());

                m.conditionals_with(&batch, &mut ws, &mut cond);
                assert_eq!(cond.as_slice(), m.conditionals(&batch).as_slice());

                m.weighted_log_psi_grad_with(&batch, &weights, &mut ws, &mut grad);
                assert_eq!(
                    grad.as_slice(),
                    m.weighted_log_psi_grad(&batch, &weights).as_slice()
                );

                m.per_sample_grads_with(&batch, &mut ws, &mut rows);
                assert_eq!(rows.as_slice(), m.per_sample_grads(&batch).as_slice());
            }
        }
    }

    #[test]
    fn pool_checkout_roundtrip_parks_all_buffers() {
        for hidden in stack_shapes() {
            let m = Made::with_hidden(5, &hidden, 42);
            let expected = MadeWorkspace::pool_buffers(m.layers().len());
            let batch = SpinBatch::from_fn(4, 5, |s, i| ((s + i) % 2) as u8);
            let mut pool = vqmc_tensor::Workspace::new();
            let mut out = Vector::default();
            m.log_psi_into(&batch, &mut pool, &mut out);
            assert_eq!(out.as_slice(), m.log_psi(&batch).as_slice());
            // Every MadeWorkspace buffer went back to the pool...
            assert_eq!(pool.parked(), expected, "hidden={hidden:?}");
            // ...and a second call reuses them without growing the pool.
            m.log_psi_into(&batch, &mut pool, &mut out);
            assert_eq!(pool.parked(), expected, "hidden={hidden:?}");
        }
    }

    #[test]
    fn depth1_pool_footprint_unchanged() {
        // The historical depth-1 workspace used exactly 12 pool
        // buffers; the stack refactor must not change that.
        assert_eq!(MadeWorkspace::pool_buffers(2), 12);
    }

    #[test]
    fn set_params_bumps_version() {
        let mut m = tiny();
        let v0 = m.params_version();
        let p = m.params();
        m.set_params(&p);
        assert_eq!(m.params_version(), v0 + 1);
        m.set_params(&p);
        assert_eq!(m.params_version(), v0 + 2);
    }

    #[test]
    fn params_into_matches_params() {
        for hidden in stack_shapes() {
            let m = Made::with_hidden(5, &hidden, 42);
            let mut out = Vector::default();
            m.params_into(&mut out);
            assert_eq!(out.as_slice(), m.params().as_slice());
        }
    }

    #[test]
    fn single_spin_model_learns_its_bias() {
        // n = 1: π(x₁=1) = σ(b₂); logψ([1]) = ½ logσ(b₂) — and the
        // output layer is fully masked at any depth, so this holds for
        // deep stacks too.
        for hidden in stack_shapes() {
            let m = Made::with_hidden(1, &hidden, 5);
            let batch = SpinBatch::from_single(&[1]);
            let lp = m.log_psi(&batch);
            let expected = 0.5 * ops::log_sigmoid(m.b2()[0]);
            assert!((lp[0] - expected).abs() < 1e-12, "hidden={hidden:?}");
        }
    }
}
