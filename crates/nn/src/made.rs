//! The MADE autoregressive neural quantum state (paper §2.3 / §5.1).
//!
//! Architecture (exactly the paper's):
//!
//! ```text
//! Input ──[bs,n]──> MaskedFC1 ──[bs,h]──> ReLU
//!       ──[bs,h]──> MaskedFC2 ──[bs,n]──> Sigmoid ──> conditionals
//! ```
//!
//! The sigmoid outputs are the conditionals `pᵢ = p(xᵢ = 1 | x_{<i})`;
//! the model distribution is `πθ(x) = Πᵢ pᵢ^{xᵢ}(1−pᵢ)^{1−xᵢ}` and the
//! wavefunction is its square root, `logψθ(x) = ½ log πθ(x)` —
//! legitimate for ground states of Hamiltonians with non-positive
//! off-diagonals, which are entrywise non-negative (Perron–Frobenius,
//! paper §2.1).
//!
//! ## Parameter layout (flattened)
//!
//! `[W₁ (h·n, row-major) | b₁ (h) | W₂ (n·h, row-major) | b₂ (n)]`,
//! total `d = 2hn + h + n` — the gradient-vector length quoted in the
//! paper's §4.
//!
//! ## Mask invariant
//!
//! Masked weight entries are identically zero for the lifetime of the
//! model: they are zero-initialised, every gradient is masked, and
//! [`Made::set_params`] re-applies the masks defensively.  The
//! autoregressive property is therefore structural, not statistical;
//! `tests` property-check it by perturbing suffix bits.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vqmc_tensor::{ops, Matrix, SpinBatch, Vector};

use crate::masks;
use crate::{init, Autoregressive, WaveFunction};

/// Masked autoencoder wavefunction.
#[derive(Clone, Serialize, Deserialize)]
pub struct Made {
    n: usize,
    h: usize,
    w1: Matrix,
    b1: Vector,
    w2: Matrix,
    b2: Vector,
    mask1: Matrix,
    mask2: Matrix,
}

/// Cached forward-pass activations, reused by backprop.
struct Forward {
    /// Network input (the batch as `f64` 0/1 rows).
    x: Matrix,
    /// Hidden pre-activations `Z₁ = X W₁ᵀ + b₁`.
    z1: Matrix,
    /// Hidden activations `H₁ = relu(Z₁)`.
    h1: Matrix,
    /// Output logits `A = H₁ W₂ᵀ + b₂`.
    logits: Matrix,
}

impl Made {
    /// Creates a MADE with `n` spins and `h` hidden units, parameters
    /// initialised from `seed` (Xavier weights, PyTorch-style biases),
    /// masks applied.
    pub fn new(n: usize, h: usize, seed: u64) -> Self {
        assert!(n >= 1 && h >= 1, "Made: degenerate shape");
        let mut rng = StdRng::seed_from_u64(seed);
        let degrees = masks::hidden_degrees(n, h);
        let mask1 = masks::input_mask(n, &degrees);
        let mask2 = masks::output_mask(n, &degrees);
        let mut w1 = init::xavier_uniform(h, n, &mut rng);
        w1.hadamard_inplace(&mask1);
        let b1 = init::linear_bias(n, h, &mut rng);
        let mut w2 = init::xavier_uniform(n, h, &mut rng);
        w2.hadamard_inplace(&mask2);
        let b2 = init::linear_bias(h, n, &mut rng);
        Made {
            n,
            h,
            w1,
            b1,
            w2,
            b2,
            mask1,
            mask2,
        }
    }

    /// Hidden-layer width.
    pub fn hidden_size(&self) -> usize {
        self.h
    }

    /// Masked first-layer weights (`h × n`).
    pub fn w1(&self) -> &Matrix {
        &self.w1
    }

    /// First-layer bias (`h`).
    pub fn b1(&self) -> &Vector {
        &self.b1
    }

    /// Masked second-layer weights (`n × h`).
    pub fn w2(&self) -> &Matrix {
        &self.w2
    }

    /// Second-layer bias (`n`).
    pub fn b2(&self) -> &Vector {
        &self.b2
    }

    /// The hidden mask `M¹` (tests / diagnostics).
    pub fn mask1(&self) -> &Matrix {
        &self.mask1
    }

    /// The output mask `M²` (tests / diagnostics).
    pub fn mask2(&self) -> &Matrix {
        &self.mask2
    }

    fn forward(&self, batch: &SpinBatch) -> Forward {
        assert_eq!(batch.num_spins(), self.n, "Made: spin-count mismatch");
        let x = batch.to_matrix();
        let mut z1 = x.matmul_nt(&self.w1);
        z1.add_row_bias(&self.b1);
        let h1 = z1.map(ops::relu);
        let mut logits = h1.matmul_nt(&self.w2);
        logits.add_row_bias(&self.b2);
        Forward { x, z1, h1, logits }
    }

    /// Output logits `aᵢ` (pre-sigmoid conditionals) for a batch — the
    /// numerically safe representation for log-probabilities.
    pub fn logits(&self, batch: &SpinBatch) -> Matrix {
        self.forward(batch).logits
    }

    /// Per-sample `logπ(x) = Σᵢ xᵢ·logσ(aᵢ) + (1−xᵢ)·logσ(−aᵢ)`,
    /// computed from logits for stability.
    fn log_prob_from_logits(batch: &SpinBatch, logits: &Matrix) -> Vector {
        Vector::from_fn(batch.batch_size(), |s| {
            let a_row = logits.row(s);
            batch
                .sample(s)
                .iter()
                .zip(a_row)
                .map(|(&bit, &a)| {
                    if bit == 1 {
                        ops::log_sigmoid(a)
                    } else {
                        ops::log_one_minus_sigmoid(a)
                    }
                })
                .sum()
        })
    }

    /// Shared backward pass.
    ///
    /// `out_weights[s]` scales sample `s`'s contribution to `logψ`; the
    /// returned flat vector is `Σ_s out_weights[s] · ∇θ logψ(x_s)`.
    fn backward(&self, fwd: &Forward, batch: &SpinBatch, out_weights: &Vector) -> Vector {
        let bs = batch.batch_size();
        // δA[s,i] = w_s · ½ (xᵢ − σ(aᵢ))   (∂logψ/∂aᵢ = ½ ∂logπ/∂aᵢ).
        let mut delta_a = Matrix::zeros(bs, self.n);
        for s in 0..bs {
            let w = out_weights[s];
            let a_row = fwd.logits.row(s);
            let x_row = batch.sample(s);
            let out = delta_a.row_mut(s);
            for i in 0..self.n {
                out[i] = w * 0.5 * (x_row[i] as f64 - ops::sigmoid(a_row[i]));
            }
        }
        // dW₂ = δAᵀ H₁ ⊙ M², db₂ = colsum δA.
        let mut dw2 = delta_a.matmul_tn(&fwd.h1);
        dw2.hadamard_inplace(&self.mask2);
        let db2 = column_sums(&delta_a);
        // δH₁ = δA W₂ ; δZ₁ = δH₁ ⊙ relu'(Z₁).
        let mut delta_z1 = delta_a.matmul_nn(&self.w2);
        for (dz, &z) in delta_z1
            .as_mut_slice()
            .iter_mut()
            .zip(fwd.z1.as_slice())
        {
            *dz *= ops::relu_prime(z);
        }
        // dW₁ = δZ₁ᵀ X ⊙ M¹, db₁ = colsum δZ₁.
        let mut dw1 = delta_z1.matmul_tn(&fwd.x);
        dw1.hadamard_inplace(&self.mask1);
        let db1 = column_sums(&delta_z1);

        flatten(&[dw1.as_slice(), &db1, dw2.as_slice(), &db2])
    }
}

fn column_sums(m: &Matrix) -> Vector {
    let mut out = Vector::zeros(m.cols());
    for row in m.rows_iter() {
        vqmc_tensor::vector::axpy(&mut out, 1.0, row);
    }
    out
}

fn flatten(parts: &[&[f64]]) -> Vector {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend_from_slice(p);
    }
    Vector(out)
}

impl WaveFunction for Made {
    fn num_spins(&self) -> usize {
        self.n
    }

    fn num_params(&self) -> usize {
        2 * self.h * self.n + self.h + self.n
    }

    fn log_psi(&self, batch: &SpinBatch) -> Vector {
        let fwd = self.forward(batch);
        let mut lp = Self::log_prob_from_logits(batch, &fwd.logits);
        lp.scale(0.5);
        lp
    }

    fn weighted_log_psi_grad(&self, batch: &SpinBatch, weights: &Vector) -> Vector {
        assert_eq!(weights.len(), batch.batch_size());
        let fwd = self.forward(batch);
        self.backward(&fwd, batch, weights)
    }

    fn per_sample_grads(&self, batch: &SpinBatch) -> Matrix {
        let bs = batch.batch_size();
        let d = self.num_params();
        let fwd = self.forward(batch);
        let mut rows = Matrix::zeros(bs, d);
        // One-sample backward per row: exact but explicit.  The weight
        // structure (δzᵀx outer products) is computed directly into the
        // row to avoid a temporary per-layer matrix per sample.
        let (h, n) = (self.h, self.n);
        for s in 0..bs {
            let a_row = fwd.logits.row(s);
            let x_row = batch.sample(s);
            // δa (length n).
            let delta_a: Vec<f64> = (0..n)
                .map(|i| 0.5 * (x_row[i] as f64 - ops::sigmoid(a_row[i])))
                .collect();
            // δz₁ = (δa W₂) ⊙ relu'(z₁) (length h).
            let z_row = fwd.z1.row(s);
            let mut delta_z = vec![0.0; h];
            for (i, &da) in delta_a.iter().enumerate() {
                if da != 0.0 {
                    vqmc_tensor::vector::axpy(&mut delta_z, da, self.w2.row(i));
                }
            }
            for (dz, &z) in delta_z.iter_mut().zip(z_row) {
                *dz *= ops::relu_prime(z);
            }
            let h1_row = fwd.h1.row(s);
            let row = rows.row_mut(s);
            // dW₁[k, d'] = δz_k · x_d' · M¹ — x is 0/1 so just copy δz
            // into the columns where the input bit is set (mask entries
            // are already zero in w2/w1 gradient positions via δ=0?
            // No: mask must be applied explicitly).
            for k in 0..h {
                let base = k * n;
                let dz = delta_z[k];
                if dz != 0.0 {
                    let mrow = self.mask1.row(k);
                    for d2 in 0..n {
                        if x_row[d2] == 1 && mrow[d2] == 1.0 {
                            row[base + d2] = dz;
                        }
                    }
                }
            }
            let off_b1 = h * n;
            row[off_b1..off_b1 + h].copy_from_slice(&delta_z);
            let off_w2 = off_b1 + h;
            for i in 0..n {
                let base = off_w2 + i * h;
                let da = delta_a[i];
                if da != 0.0 {
                    let mrow = self.mask2.row(i);
                    for k in 0..h {
                        if mrow[k] == 1.0 {
                            row[base + k] = da * h1_row[k];
                        }
                    }
                }
            }
            let off_b2 = off_w2 + n * h;
            row[off_b2..off_b2 + n].copy_from_slice(&delta_a);
        }
        rows
    }

    fn params(&self) -> Vector {
        flatten(&[
            self.w1.as_slice(),
            &self.b1,
            self.w2.as_slice(),
            &self.b2,
        ])
    }

    fn set_params(&mut self, params: &Vector) {
        assert_eq!(params.len(), self.num_params(), "Made: param length");
        let (h, n) = (self.h, self.n);
        let mut off = 0;
        self.w1 = Matrix::from_vec(h, n, params.as_slice()[off..off + h * n].to_vec());
        off += h * n;
        self.b1 = Vector(params.as_slice()[off..off + h].to_vec());
        off += h;
        self.w2 = Matrix::from_vec(n, h, params.as_slice()[off..off + n * h].to_vec());
        off += n * h;
        self.b2 = Vector(params.as_slice()[off..off + n].to_vec());
        // Defensive: the mask invariant survives arbitrary inputs.
        self.w1.hadamard_inplace(&self.mask1);
        self.w2.hadamard_inplace(&self.mask2);
    }
}

impl Autoregressive for Made {
    fn conditionals(&self, batch: &SpinBatch) -> Matrix {
        let mut logits = self.forward(batch).logits;
        logits.map_inplace(ops::sigmoid);
        logits
    }
}

impl std::fmt::Debug for Made {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Made(n={}, h={}, d={})",
            self.n,
            self.h,
            self.num_params()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_tensor::batch::enumerate_configs;
    use vqmc_tensor::reduce::log_sum_exp;

    fn tiny() -> Made {
        Made::new(5, 9, 42)
    }

    #[test]
    fn shapes_and_param_count() {
        let m = tiny();
        assert_eq!(m.num_spins(), 5);
        assert_eq!(m.num_params(), 2 * 9 * 5 + 9 + 5);
        assert_eq!(m.params().len(), m.num_params());
    }

    #[test]
    fn distribution_is_exactly_normalised() {
        // Σ_x π(x) = 1 — THE property that makes AUTO sampling exact.
        for n in 1..=10 {
            let m = Made::new(n, 2 * n + 3, 7 + n as u64);
            let all = enumerate_configs(n);
            let log_probs = m.log_prob(&all);
            let total = log_sum_exp(&log_probs);
            assert!(
                total.abs() < 1e-10,
                "n={n}: Σπ = exp({total}) deviates from 1"
            );
        }
    }

    #[test]
    fn conditionals_ignore_suffix_bits() {
        // Autoregressive property: p(x_i|·) must not change when any bit
        // j >= i changes.
        let m = tiny();
        let mut batch = SpinBatch::zeros(1, 5);
        batch.set(0, 0, 1);
        batch.set(0, 2, 1);
        let base = m.conditionals(&batch);
        for j in 0..5 {
            let mut perturbed = batch.clone();
            perturbed.flip(0, j);
            let cond = m.conditionals(&perturbed);
            for i in 0..=j {
                assert!(
                    (cond.get(0, i) - base.get(0, i)).abs() < 1e-14,
                    "conditional {i} changed when bit {j} flipped"
                );
            }
        }
    }

    #[test]
    fn log_psi_is_half_log_prob() {
        let m = tiny();
        let batch = enumerate_configs(5);
        let lp = m.log_psi(&batch);
        let lpr = m.log_prob(&batch);
        for s in 0..batch.batch_size() {
            assert!((2.0 * lp[s] - lpr[s]).abs() < 1e-14);
        }
    }

    #[test]
    fn params_round_trip_preserves_log_psi() {
        let mut m = tiny();
        let batch = enumerate_configs(5);
        let before = m.log_psi(&batch);
        let p = m.params();
        m.set_params(&p);
        let after = m.log_psi(&batch);
        for s in 0..batch.batch_size() {
            assert_eq!(before[s], after[s]);
        }
    }

    #[test]
    fn set_params_enforces_masks() {
        let mut m = tiny();
        let mut p = m.params();
        // Poison every parameter, including masked slots.
        for v in p.iter_mut() {
            *v += 1.0;
        }
        m.set_params(&p);
        // Masked entries must still be zero.
        for k in 0..m.hidden_size() {
            for d in 0..m.num_spins() {
                if m.mask1().get(k, d) == 0.0 {
                    assert_eq!(m.w1().get(k, d), 0.0);
                }
            }
        }
        for i in 0..m.num_spins() {
            for k in 0..m.hidden_size() {
                if m.mask2().get(i, k) == 0.0 {
                    assert_eq!(m.w2().get(i, k), 0.0);
                }
            }
        }
    }

    #[test]
    fn weighted_grad_matches_finite_difference() {
        let m = tiny();
        let batch = SpinBatch::from_fn(3, 5, |s, i| ((s + i) % 2) as u8);
        let weights = Vector(vec![1.0, -0.5, 2.0]);
        let analytic = m.weighted_log_psi_grad(&batch, &weights);

        let p0 = m.params();
        let f = |p: &[f64]| {
            let mut probe = m.clone();
            probe.set_params(&Vector(p.to_vec()));
            let lp = probe.log_psi(&batch);
            lp.iter().zip(weights.iter()).map(|(l, w)| l * w).sum()
        };
        // Masked coordinates receive no gradient from either method;
        // check_gradient covers every coordinate.
        vqmc_autodiff::check_gradient("made-weighted", &f, &p0, &analytic, 1e-5);
    }

    #[test]
    fn weighted_grad_matches_autodiff_tape() {
        // Rebuild the MADE computation on the tape and compare parameter
        // gradients of Σ_s w_s logψ(x_s).
        let m = tiny();
        let batch = SpinBatch::from_fn(4, 5, |s, i| ((s * 3 + i * 2) % 2) as u8);
        let weights = Vector(vec![0.7, 1.3, -1.0, 0.25]);
        let analytic = m.weighted_log_psi_grad(&batch, &weights);

        use vqmc_autodiff::Tape;
        let mut tape = Tape::new();
        let x = tape.input(batch.to_matrix());
        let w1 = tape.input(m.w1().clone());
        let b1 = tape.input(Matrix::from_vec(1, m.hidden_size(), m.b1().to_vec()));
        let w2 = tape.input(m.w2().clone());
        let b2 = tape.input(Matrix::from_vec(1, m.num_spins(), m.b2().to_vec()));
        // Masks as constants (so gradients arrive masked like analytic).
        let w1m = tape.mul_const(w1, m.mask1().clone());
        let w2m = tape.mul_const(w2, m.mask2().clone());
        let z1 = tape.matmul_nt(x, w1m);
        let z1b = tape.add_row_bias(z1, b1);
        let h1 = tape.relu(z1b);
        let a = tape.matmul_nt(h1, w2m);
        let ab = tape.add_row_bias(a, b2);
        let logpi = tape.bernoulli_log_prob(ab, batch.to_matrix()); // bs×1
        let logpsi = tape.scale(logpi, 0.5);
        let weighted = tape.mul_const(
            logpsi,
            Matrix::from_vec(4, 1, weights.to_vec()),
        );
        let loss = tape.sum(weighted);
        let grads = tape.backward(loss);

        // Assemble tape gradient in the Made layout.
        let mut tape_grad = Vec::new();
        tape_grad.extend_from_slice(grads.get(w1).as_slice());
        tape_grad.extend_from_slice(grads.get(b1).as_slice());
        tape_grad.extend_from_slice(grads.get(w2).as_slice());
        tape_grad.extend_from_slice(grads.get(b2).as_slice());

        assert_eq!(tape_grad.len(), analytic.len());
        for (i, (a_val, t_val)) in analytic.iter().zip(&tape_grad).enumerate() {
            assert!(
                (a_val - t_val).abs() < 1e-10,
                "param {i}: analytic {a_val} vs tape {t_val}"
            );
        }
    }

    #[test]
    fn per_sample_grads_sum_to_weighted_grad() {
        let m = tiny();
        let batch = SpinBatch::from_fn(6, 5, |s, i| ((s + 2 * i) % 2) as u8);
        let rows = m.per_sample_grads(&batch);
        assert_eq!(rows.shape(), (6, m.num_params()));
        let weights = Vector(vec![0.3, -1.0, 0.5, 2.0, 1.0, -0.25]);
        let weighted = m.weighted_log_psi_grad(&batch, &weights);
        // Σ_s w_s · row_s must equal the one-pass weighted gradient.
        let mut acc = Vector::zeros(m.num_params());
        for s in 0..6 {
            vqmc_tensor::vector::axpy(&mut acc, weights[s], rows.row(s));
        }
        for k in 0..m.num_params() {
            assert!(
                (acc[k] - weighted[k]).abs() < 1e-10,
                "param {k}: {} vs {}",
                acc[k],
                weighted[k]
            );
        }
    }

    #[test]
    fn single_spin_model_learns_its_bias() {
        // n = 1: π(x₁=1) = σ(b₂); logψ([1]) = ½ logσ(b₂).
        let m = Made::new(1, 3, 5);
        let batch = SpinBatch::from_single(&[1]);
        let lp = m.log_psi(&batch);
        let expected = 0.5 * ops::log_sigmoid(m.b2()[0]);
        assert!((lp[0] - expected).abs() < 1e-12);
    }
}
