//! The MADE autoregressive neural quantum state (paper §2.3 / §5.1).
//!
//! Architecture (exactly the paper's):
//!
//! ```text
//! Input ──[bs,n]──> MaskedFC1 ──[bs,h]──> ReLU
//!       ──[bs,h]──> MaskedFC2 ──[bs,n]──> Sigmoid ──> conditionals
//! ```
//!
//! The sigmoid outputs are the conditionals `pᵢ = p(xᵢ = 1 | x_{<i})`;
//! the model distribution is `πθ(x) = Πᵢ pᵢ^{xᵢ}(1−pᵢ)^{1−xᵢ}` and the
//! wavefunction is its square root, `logψθ(x) = ½ log πθ(x)` —
//! legitimate for ground states of Hamiltonians with non-positive
//! off-diagonals, which are entrywise non-negative (Perron–Frobenius,
//! paper §2.1).
//!
//! ## Parameter layout (flattened)
//!
//! `[W₁ (h·n, row-major) | b₁ (h) | W₂ (n·h, row-major) | b₂ (n)]`,
//! total `d = 2hn + h + n` — the gradient-vector length quoted in the
//! paper's §4.
//!
//! ## Mask invariant
//!
//! Masked weight entries are identically zero for the lifetime of the
//! model: they are zero-initialised, every gradient is masked, and
//! [`Made::set_params`] re-applies the masks defensively.  The
//! autoregressive property is therefore structural, not statistical;
//! `tests` property-check it by perturbing suffix bits.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vqmc_tensor::{ops, Matrix, SpinBatch, Vector, Workspace};

use crate::masks;
use crate::{init, Autoregressive, WaveFunction};

/// Masked autoencoder wavefunction.
#[derive(Clone, Serialize, Deserialize)]
pub struct Made {
    n: usize,
    h: usize,
    w1: Matrix,
    b1: Vector,
    w2: Matrix,
    b2: Vector,
    mask1: Matrix,
    mask2: Matrix,
    /// Bumped on every [`Made::set_params`].  Lets callers that cache
    /// derived quantities (e.g. the incremental sampler's `W₁ᵀ`) detect
    /// staleness without holding a borrow of the model.
    #[serde(default)]
    version: u64,
}

/// Named scratch buffers for MADE forward and backward passes.
///
/// Holding one of these across calls makes every `_with` method on
/// [`Made`] allocation-free at steady state: all activations, gradient
/// accumulators and per-sample scratch rows live here and are `resize`d
/// in place (capacity is kept, so after the first call on a given batch
/// shape no heap traffic occurs).
///
/// A `MadeWorkspace` can also be checked out of a generic
/// [`Workspace`] pool ([`MadeWorkspace::from_pool`]) and returned to it
/// ([`MadeWorkspace::into_pool`]); because the pool is LIFO and the
/// checkout order is fixed, each field gets the same backing buffer
/// every iteration.
#[derive(Default)]
pub struct MadeWorkspace {
    /// Network input (the batch as `f64` 0/1 rows).
    pub x: Matrix,
    /// Hidden pre-activations `Z₁ = X W₁ᵀ + b₁`.
    pub z1: Matrix,
    /// Hidden activations `H₁ = relu(Z₁)`.
    pub h1: Matrix,
    /// Output logits `A = H₁ W₂ᵀ + b₂`.
    pub logits: Matrix,
    /// Backprop: `δA` (`bs × n`).
    delta_a: Matrix,
    /// Backprop: `δZ₁` (`bs × h`).
    delta_z1: Matrix,
    /// Weight-gradient accumulator `dW₁` (`h × n`).
    dw1: Matrix,
    /// Weight-gradient accumulator `dW₂` (`n × h`).
    dw2: Matrix,
    /// Bias-gradient accumulator `db₁` (`h`).
    db1: Vector,
    /// Bias-gradient accumulator `db₂` (`n`).
    db2: Vector,
    /// Per-sample `δa` scratch row (length `n`).
    delta_a_row: Vec<f64>,
    /// Per-sample `δz₁` scratch row (length `h`).
    delta_z_row: Vec<f64>,
}

impl MadeWorkspace {
    /// A fresh workspace with empty buffers (they grow on first use).
    pub fn new() -> Self {
        MadeWorkspace::default()
    }

    /// Checks the workspace's buffers out of a shared pool.  Pair with
    /// [`MadeWorkspace::into_pool`]; the fixed LIFO checkout order means
    /// each field reuses the same pool buffer every iteration.
    pub fn from_pool(ws: &mut Workspace) -> Self {
        // `take(0)` hands back a parked buffer with its capacity intact;
        // the zero-shape matrix/vector wrappers are then grown in place
        // by the first `_into` kernel that writes them.
        MadeWorkspace {
            x: Matrix::from_vec(0, 0, ws.take(0)),
            z1: Matrix::from_vec(0, 0, ws.take(0)),
            h1: Matrix::from_vec(0, 0, ws.take(0)),
            logits: Matrix::from_vec(0, 0, ws.take(0)),
            delta_a: Matrix::from_vec(0, 0, ws.take(0)),
            delta_z1: Matrix::from_vec(0, 0, ws.take(0)),
            dw1: Matrix::from_vec(0, 0, ws.take(0)),
            dw2: Matrix::from_vec(0, 0, ws.take(0)),
            db1: Vector(ws.take(0)),
            db2: Vector(ws.take(0)),
            delta_a_row: ws.take(0),
            delta_z_row: ws.take(0),
        }
    }

    /// Returns every buffer to the pool, in reverse checkout order so
    /// the next [`MadeWorkspace::from_pool`] sees them in the same
    /// positions (LIFO discipline).
    pub fn into_pool(self, ws: &mut Workspace) {
        ws.give(self.delta_z_row);
        ws.give(self.delta_a_row);
        ws.give_vector(self.db2);
        ws.give_vector(self.db1);
        ws.give_matrix(self.dw2);
        ws.give_matrix(self.dw1);
        ws.give_matrix(self.delta_z1);
        ws.give_matrix(self.delta_a);
        ws.give_matrix(self.logits);
        ws.give_matrix(self.h1);
        ws.give_matrix(self.z1);
        ws.give_matrix(self.x);
    }
}

impl Made {
    /// Creates a MADE with `n` spins and `h` hidden units, parameters
    /// initialised from `seed` (Xavier weights, PyTorch-style biases),
    /// masks applied.
    pub fn new(n: usize, h: usize, seed: u64) -> Self {
        assert!(n >= 1 && h >= 1, "Made: degenerate shape");
        let mut rng = StdRng::seed_from_u64(seed);
        let degrees = masks::hidden_degrees(n, h);
        let mask1 = masks::input_mask(n, &degrees);
        let mask2 = masks::output_mask(n, &degrees);
        let mut w1 = init::xavier_uniform(h, n, &mut rng);
        w1.hadamard_inplace(&mask1);
        let b1 = init::linear_bias(n, h, &mut rng);
        let mut w2 = init::xavier_uniform(n, h, &mut rng);
        w2.hadamard_inplace(&mask2);
        let b2 = init::linear_bias(h, n, &mut rng);
        Made {
            n,
            h,
            w1,
            b1,
            w2,
            b2,
            mask1,
            mask2,
            version: 0,
        }
    }

    /// Monotone counter bumped by every [`Made::set_params`].  Callers
    /// caching quantities derived from the parameters (the incremental
    /// AUTO sampler caches `W₁ᵀ`) compare this against their cached
    /// value to decide whether to recompute.
    pub fn params_version(&self) -> u64 {
        self.version
    }

    /// Hidden-layer width.
    pub fn hidden_size(&self) -> usize {
        self.h
    }

    /// Masked first-layer weights (`h × n`).
    pub fn w1(&self) -> &Matrix {
        &self.w1
    }

    /// First-layer bias (`h`).
    pub fn b1(&self) -> &Vector {
        &self.b1
    }

    /// Masked second-layer weights (`n × h`).
    pub fn w2(&self) -> &Matrix {
        &self.w2
    }

    /// Second-layer bias (`n`).
    pub fn b2(&self) -> &Vector {
        &self.b2
    }

    /// The hidden mask `M¹` (tests / diagnostics).
    pub fn mask1(&self) -> &Matrix {
        &self.mask1
    }

    /// The output mask `M²` (tests / diagnostics).
    pub fn mask2(&self) -> &Matrix {
        &self.mask2
    }

    /// Forward pass into `ws` (fills `ws.x`, `ws.z1`, `ws.h1`,
    /// `ws.logits`; allocation-free once `ws` is warm).
    pub fn forward_with(&self, batch: &SpinBatch, ws: &mut MadeWorkspace) {
        assert_eq!(batch.num_spins(), self.n, "Made: spin-count mismatch");
        batch.to_matrix_into(&mut ws.x);
        ws.x.matmul_nt_into(&self.w1, &mut ws.z1);
        ws.z1.add_row_bias(&self.b1);
        ws.h1.copy_from(&ws.z1);
        ws.h1.map_inplace(ops::relu);
        ws.h1.matmul_nt_into(&self.w2, &mut ws.logits);
        ws.logits.add_row_bias(&self.b2);
    }

    /// Output logits `aᵢ` (pre-sigmoid conditionals) for a batch — the
    /// numerically safe representation for log-probabilities.
    pub fn logits(&self, batch: &SpinBatch) -> Matrix {
        let mut ws = MadeWorkspace::new();
        self.forward_with(batch, &mut ws);
        ws.logits
    }

    /// Per-sample `logπ(x) = Σᵢ xᵢ·logσ(aᵢ) + (1−xᵢ)·logσ(−aᵢ)`,
    /// computed from logits for stability.
    ///
    /// Uses `ln(1−σ(a)) = ln σ(−a)`: the logits are copied with the
    /// sign flipped wherever the bit is 0, one vectorised
    /// `log_sigmoid_slice` handles the whole row, and the row is
    /// pairwise-summed.  `scratch` is a warm workspace buffer.
    fn log_prob_from_logits_into(
        batch: &SpinBatch,
        logits: &Matrix,
        scratch: &mut Vec<f64>,
        out: &mut Vector,
    ) {
        out.resize(batch.batch_size());
        scratch.resize(logits.cols(), 0.0);
        for s in 0..batch.batch_size() {
            let a_row = logits.row(s);
            for ((dst, &bit), &a) in scratch.iter_mut().zip(batch.sample(s)).zip(a_row) {
                *dst = if bit == 1 { a } else { -a };
            }
            ops::log_sigmoid_slice(scratch);
            out[s] = vqmc_tensor::reduce::sum(scratch);
        }
    }

    /// [`WaveFunction::log_psi`] with caller-owned scratch and output.
    pub fn log_psi_with(&self, batch: &SpinBatch, ws: &mut MadeWorkspace, out: &mut Vector) {
        self.forward_with(batch, ws);
        let MadeWorkspace {
            logits,
            delta_a_row,
            ..
        } = ws;
        Self::log_prob_from_logits_into(batch, logits, delta_a_row, out);
        out.scale(0.5);
    }

    /// [`Autoregressive::conditionals`] with caller-owned scratch and
    /// output.
    pub fn conditionals_with(&self, batch: &SpinBatch, ws: &mut MadeWorkspace, out: &mut Matrix) {
        self.forward_with(batch, ws);
        out.copy_from(&ws.logits);
        ops::sigmoid_slice(out.as_mut_slice());
    }

    /// [`WaveFunction::weighted_log_psi_grad`] with caller-owned scratch
    /// and output.
    pub fn weighted_log_psi_grad_with(
        &self,
        batch: &SpinBatch,
        weights: &Vector,
        ws: &mut MadeWorkspace,
        out: &mut Vector,
    ) {
        assert_eq!(weights.len(), batch.batch_size());
        self.forward_with(batch, ws);
        self.backward_with(batch, weights, ws, out);
    }

    /// Shared backward pass over the activations left in `ws` by
    /// [`Made::forward_with`].
    ///
    /// `out_weights[s]` scales sample `s`'s contribution to `logψ`; `out`
    /// receives the flat vector `Σ_s out_weights[s] · ∇θ logψ(x_s)`.
    fn backward_with(
        &self,
        batch: &SpinBatch,
        out_weights: &Vector,
        ws: &mut MadeWorkspace,
        out: &mut Vector,
    ) {
        let bs = batch.batch_size();
        // Split the workspace into per-field borrows so reads of the
        // forward activations can overlap writes to the gradient buffers.
        let MadeWorkspace {
            x,
            z1,
            h1,
            logits,
            delta_a,
            delta_z1,
            dw1,
            dw2,
            db1,
            db2,
            ..
        } = ws;
        // δA[s,i] = w_s · ½ (xᵢ − σ(aᵢ))   (∂logψ/∂aᵢ = ½ ∂logπ/∂aᵢ).
        // One matrix-wide vectorised sigmoid over a copy of the logits,
        // then the cheap affine combine per row.
        delta_a.copy_from(logits);
        ops::sigmoid_slice(delta_a.as_mut_slice());
        for s in 0..bs {
            let w = out_weights[s];
            let x_row = batch.sample(s);
            let out_row = delta_a.row_mut(s);
            for i in 0..self.n {
                out_row[i] = w * 0.5 * (x_row[i] as f64 - out_row[i]);
            }
        }
        // dW₂ = δAᵀ H₁ ⊙ M², db₂ = colsum δA.
        delta_a.matmul_tn_into(h1, dw2);
        dw2.hadamard_inplace(&self.mask2);
        column_sums_into(delta_a, db2);
        // δH₁ = δA W₂ ; δZ₁ = δH₁ ⊙ relu'(Z₁).
        delta_a.matmul_nn_into(&self.w2, delta_z1);
        for (dz, &z) in delta_z1.as_mut_slice().iter_mut().zip(z1.as_slice()) {
            *dz *= ops::relu_prime(z);
        }
        // dW₁ = δZ₁ᵀ X ⊙ M¹, db₁ = colsum δZ₁.
        delta_z1.matmul_tn_into(x, dw1);
        dw1.hadamard_inplace(&self.mask1);
        column_sums_into(delta_z1, db1);

        flatten_into(
            &[dw1.as_slice(), db1.as_slice(), dw2.as_slice(), db2.as_slice()],
            out,
        );
    }

    /// [`WaveFunction::per_sample_grads`] with caller-owned scratch and
    /// output.
    pub fn per_sample_grads_with(
        &self,
        batch: &SpinBatch,
        ws: &mut MadeWorkspace,
        out: &mut Matrix,
    ) {
        let bs = batch.batch_size();
        let d = self.num_params();
        self.forward_with(batch, ws);
        out.resize(bs, d);
        out.fill(0.0);
        let MadeWorkspace {
            z1,
            h1,
            logits,
            delta_a_row,
            delta_z_row,
            ..
        } = ws;
        // One-sample backward per row: exact but explicit.  The weight
        // structure (δzᵀx outer products) is computed directly into the
        // row to avoid a temporary per-layer matrix per sample.
        let (h, n) = (self.h, self.n);
        delta_a_row.resize(n, 0.0);
        delta_z_row.resize(h, 0.0);
        for s in 0..bs {
            let x_row = batch.sample(s);
            // δa (length n): vectorised sigmoid on a copy of the logit
            // row, then the affine combine.
            delta_a_row.copy_from_slice(logits.row(s));
            ops::sigmoid_slice(delta_a_row);
            for i in 0..n {
                delta_a_row[i] = 0.5 * (x_row[i] as f64 - delta_a_row[i]);
            }
            // δz₁ = (δa W₂) ⊙ relu'(z₁) (length h).
            let z_row = z1.row(s);
            delta_z_row.fill(0.0);
            for (i, &da) in delta_a_row.iter().enumerate() {
                if da != 0.0 {
                    vqmc_tensor::vector::axpy(delta_z_row, da, self.w2.row(i));
                }
            }
            for (dz, &z) in delta_z_row.iter_mut().zip(z_row) {
                *dz *= ops::relu_prime(z);
            }
            let h1_row = h1.row(s);
            let row = out.row_mut(s);
            // dW₁[k, d'] = δz_k · x_d' · M¹ — x is 0/1 so just copy δz
            // into the columns where the input bit is set (mask entries
            // are already zero in w2/w1 gradient positions via δ=0?
            // No: mask must be applied explicitly).
            for (k, &dz) in delta_z_row.iter().enumerate() {
                let base = k * n;
                if dz != 0.0 {
                    let mrow = self.mask1.row(k);
                    for d2 in 0..n {
                        if x_row[d2] == 1 && mrow[d2] == 1.0 {
                            row[base + d2] = dz;
                        }
                    }
                }
            }
            let off_b1 = h * n;
            row[off_b1..off_b1 + h].copy_from_slice(delta_z_row);
            let off_w2 = off_b1 + h;
            for (i, &da) in delta_a_row.iter().enumerate() {
                let base = off_w2 + i * h;
                if da != 0.0 {
                    let mrow = self.mask2.row(i);
                    for k in 0..h {
                        if mrow[k] == 1.0 {
                            row[base + k] = da * h1_row[k];
                        }
                    }
                }
            }
            let off_b2 = off_w2 + n * h;
            row[off_b2..off_b2 + n].copy_from_slice(delta_a_row);
        }
    }
}

fn column_sums_into(m: &Matrix, out: &mut Vector) {
    out.resize(m.cols());
    out.fill(0.0);
    for row in m.rows_iter() {
        vqmc_tensor::vector::axpy(out, 1.0, row);
    }
}

fn flatten_into(parts: &[&[f64]], out: &mut Vector) {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    out.resize(total);
    let mut off = 0;
    for p in parts {
        out.as_mut_slice()[off..off + p.len()].copy_from_slice(p);
        off += p.len();
    }
}

fn flatten(parts: &[&[f64]]) -> Vector {
    let mut out = Vector::default();
    flatten_into(parts, &mut out);
    out
}

impl WaveFunction for Made {
    fn num_spins(&self) -> usize {
        self.n
    }

    fn num_params(&self) -> usize {
        2 * self.h * self.n + self.h + self.n
    }

    fn log_psi(&self, batch: &SpinBatch) -> Vector {
        let mut ws = MadeWorkspace::new();
        let mut out = Vector::default();
        self.log_psi_with(batch, &mut ws, &mut out);
        out
    }

    fn weighted_log_psi_grad(&self, batch: &SpinBatch, weights: &Vector) -> Vector {
        let mut ws = MadeWorkspace::new();
        let mut out = Vector::default();
        self.weighted_log_psi_grad_with(batch, weights, &mut ws, &mut out);
        out
    }

    fn per_sample_grads(&self, batch: &SpinBatch) -> Matrix {
        let mut ws = MadeWorkspace::new();
        let mut out = Matrix::default();
        self.per_sample_grads_with(batch, &mut ws, &mut out);
        out
    }

    fn params(&self) -> Vector {
        flatten(&[
            self.w1.as_slice(),
            &self.b1,
            self.w2.as_slice(),
            &self.b2,
        ])
    }

    fn set_params(&mut self, params: &Vector) {
        assert_eq!(params.len(), self.num_params(), "Made: param length");
        let (h, n) = (self.h, self.n);
        let p = params.as_slice();
        let mut off = 0;
        // In place: the existing weight/bias buffers are overwritten, so
        // a training step performs no parameter-storage allocation.
        self.w1.as_mut_slice().copy_from_slice(&p[off..off + h * n]);
        off += h * n;
        self.b1.as_mut_slice().copy_from_slice(&p[off..off + h]);
        off += h;
        self.w2.as_mut_slice().copy_from_slice(&p[off..off + n * h]);
        off += n * h;
        self.b2.as_mut_slice().copy_from_slice(&p[off..off + n]);
        // Defensive: the mask invariant survives arbitrary inputs.
        self.w1.hadamard_inplace(&self.mask1);
        self.w2.hadamard_inplace(&self.mask2);
        self.version = self.version.wrapping_add(1);
    }

    fn log_psi_into(&self, batch: &SpinBatch, ws: &mut Workspace, out: &mut Vector) {
        let mut mws = MadeWorkspace::from_pool(ws);
        self.log_psi_with(batch, &mut mws, out);
        mws.into_pool(ws);
    }

    fn weighted_log_psi_grad_into(
        &self,
        batch: &SpinBatch,
        weights: &Vector,
        ws: &mut Workspace,
        out: &mut Vector,
    ) {
        let mut mws = MadeWorkspace::from_pool(ws);
        self.weighted_log_psi_grad_with(batch, weights, &mut mws, out);
        mws.into_pool(ws);
    }

    fn per_sample_grads_into(&self, batch: &SpinBatch, ws: &mut Workspace, out: &mut Matrix) {
        let mut mws = MadeWorkspace::from_pool(ws);
        self.per_sample_grads_with(batch, &mut mws, out);
        mws.into_pool(ws);
    }

    fn params_into(&self, out: &mut Vector) {
        flatten_into(
            &[
                self.w1.as_slice(),
                self.b1.as_slice(),
                self.w2.as_slice(),
                self.b2.as_slice(),
            ],
            out,
        );
    }
}

impl Autoregressive for Made {
    fn conditionals(&self, batch: &SpinBatch) -> Matrix {
        let mut ws = MadeWorkspace::new();
        let mut out = Matrix::default();
        self.conditionals_with(batch, &mut ws, &mut out);
        out
    }

    fn conditionals_into(&self, batch: &SpinBatch, ws: &mut Workspace, out: &mut Matrix) {
        let mut mws = MadeWorkspace::from_pool(ws);
        self.conditionals_with(batch, &mut mws, out);
        mws.into_pool(ws);
    }
}

impl std::fmt::Debug for Made {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Made(n={}, h={}, d={})",
            self.n,
            self.h,
            self.num_params()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_tensor::batch::enumerate_configs;
    use vqmc_tensor::reduce::log_sum_exp;

    fn tiny() -> Made {
        Made::new(5, 9, 42)
    }

    #[test]
    fn shapes_and_param_count() {
        let m = tiny();
        assert_eq!(m.num_spins(), 5);
        assert_eq!(m.num_params(), 2 * 9 * 5 + 9 + 5);
        assert_eq!(m.params().len(), m.num_params());
    }

    #[test]
    fn distribution_is_exactly_normalised() {
        // Σ_x π(x) = 1 — THE property that makes AUTO sampling exact.
        for n in 1..=10 {
            let m = Made::new(n, 2 * n + 3, 7 + n as u64);
            let all = enumerate_configs(n);
            let log_probs = m.log_prob(&all);
            let total = log_sum_exp(&log_probs);
            assert!(
                total.abs() < 1e-10,
                "n={n}: Σπ = exp({total}) deviates from 1"
            );
        }
    }

    #[test]
    fn conditionals_ignore_suffix_bits() {
        // Autoregressive property: p(x_i|·) must not change when any bit
        // j >= i changes.
        let m = tiny();
        let mut batch = SpinBatch::zeros(1, 5);
        batch.set(0, 0, 1);
        batch.set(0, 2, 1);
        let base = m.conditionals(&batch);
        for j in 0..5 {
            let mut perturbed = batch.clone();
            perturbed.flip(0, j);
            let cond = m.conditionals(&perturbed);
            for i in 0..=j {
                assert!(
                    (cond.get(0, i) - base.get(0, i)).abs() < 1e-14,
                    "conditional {i} changed when bit {j} flipped"
                );
            }
        }
    }

    #[test]
    fn log_psi_is_half_log_prob() {
        let m = tiny();
        let batch = enumerate_configs(5);
        let lp = m.log_psi(&batch);
        let lpr = m.log_prob(&batch);
        for s in 0..batch.batch_size() {
            assert!((2.0 * lp[s] - lpr[s]).abs() < 1e-14);
        }
    }

    #[test]
    fn params_round_trip_preserves_log_psi() {
        let mut m = tiny();
        let batch = enumerate_configs(5);
        let before = m.log_psi(&batch);
        let p = m.params();
        m.set_params(&p);
        let after = m.log_psi(&batch);
        for s in 0..batch.batch_size() {
            assert_eq!(before[s], after[s]);
        }
    }

    #[test]
    fn set_params_enforces_masks() {
        let mut m = tiny();
        let mut p = m.params();
        // Poison every parameter, including masked slots.
        for v in p.iter_mut() {
            *v += 1.0;
        }
        m.set_params(&p);
        // Masked entries must still be zero.
        for k in 0..m.hidden_size() {
            for d in 0..m.num_spins() {
                if m.mask1().get(k, d) == 0.0 {
                    assert_eq!(m.w1().get(k, d), 0.0);
                }
            }
        }
        for i in 0..m.num_spins() {
            for k in 0..m.hidden_size() {
                if m.mask2().get(i, k) == 0.0 {
                    assert_eq!(m.w2().get(i, k), 0.0);
                }
            }
        }
    }

    #[test]
    fn weighted_grad_matches_finite_difference() {
        let m = tiny();
        let batch = SpinBatch::from_fn(3, 5, |s, i| ((s + i) % 2) as u8);
        let weights = Vector(vec![1.0, -0.5, 2.0]);
        let analytic = m.weighted_log_psi_grad(&batch, &weights);

        let p0 = m.params();
        let f = |p: &[f64]| {
            let mut probe = m.clone();
            probe.set_params(&Vector(p.to_vec()));
            let lp = probe.log_psi(&batch);
            lp.iter().zip(weights.iter()).map(|(l, w)| l * w).sum()
        };
        // Masked coordinates receive no gradient from either method;
        // check_gradient covers every coordinate.
        vqmc_autodiff::check_gradient("made-weighted", &f, &p0, &analytic, 1e-5);
    }

    #[test]
    fn weighted_grad_matches_autodiff_tape() {
        // Rebuild the MADE computation on the tape and compare parameter
        // gradients of Σ_s w_s logψ(x_s).
        let m = tiny();
        let batch = SpinBatch::from_fn(4, 5, |s, i| ((s * 3 + i * 2) % 2) as u8);
        let weights = Vector(vec![0.7, 1.3, -1.0, 0.25]);
        let analytic = m.weighted_log_psi_grad(&batch, &weights);

        use vqmc_autodiff::Tape;
        let mut tape = Tape::new();
        let x = tape.input(batch.to_matrix());
        let w1 = tape.input(m.w1().clone());
        let b1 = tape.input(Matrix::from_vec(1, m.hidden_size(), m.b1().to_vec()));
        let w2 = tape.input(m.w2().clone());
        let b2 = tape.input(Matrix::from_vec(1, m.num_spins(), m.b2().to_vec()));
        // Masks as constants (so gradients arrive masked like analytic).
        let w1m = tape.mul_const(w1, m.mask1().clone());
        let w2m = tape.mul_const(w2, m.mask2().clone());
        let z1 = tape.matmul_nt(x, w1m);
        let z1b = tape.add_row_bias(z1, b1);
        let h1 = tape.relu(z1b);
        let a = tape.matmul_nt(h1, w2m);
        let ab = tape.add_row_bias(a, b2);
        let logpi = tape.bernoulli_log_prob(ab, batch.to_matrix()); // bs×1
        let logpsi = tape.scale(logpi, 0.5);
        let weighted = tape.mul_const(
            logpsi,
            Matrix::from_vec(4, 1, weights.to_vec()),
        );
        let loss = tape.sum(weighted);
        let grads = tape.backward(loss);

        // Assemble tape gradient in the Made layout.
        let mut tape_grad = Vec::new();
        tape_grad.extend_from_slice(grads.get(w1).as_slice());
        tape_grad.extend_from_slice(grads.get(b1).as_slice());
        tape_grad.extend_from_slice(grads.get(w2).as_slice());
        tape_grad.extend_from_slice(grads.get(b2).as_slice());

        assert_eq!(tape_grad.len(), analytic.len());
        for (i, (a_val, t_val)) in analytic.iter().zip(&tape_grad).enumerate() {
            assert!(
                (a_val - t_val).abs() < 1e-10,
                "param {i}: analytic {a_val} vs tape {t_val}"
            );
        }
    }

    #[test]
    fn per_sample_grads_sum_to_weighted_grad() {
        let m = tiny();
        let batch = SpinBatch::from_fn(6, 5, |s, i| ((s + 2 * i) % 2) as u8);
        let rows = m.per_sample_grads(&batch);
        assert_eq!(rows.shape(), (6, m.num_params()));
        let weights = Vector(vec![0.3, -1.0, 0.5, 2.0, 1.0, -0.25]);
        let weighted = m.weighted_log_psi_grad(&batch, &weights);
        // Σ_s w_s · row_s must equal the one-pass weighted gradient.
        let mut acc = Vector::zeros(m.num_params());
        for s in 0..6 {
            vqmc_tensor::vector::axpy(&mut acc, weights[s], rows.row(s));
        }
        for k in 0..m.num_params() {
            assert!(
                (acc[k] - weighted[k]).abs() < 1e-10,
                "param {k}: {} vs {}",
                acc[k],
                weighted[k]
            );
        }
    }

    #[test]
    fn workspace_paths_are_bit_identical_to_allocating() {
        // One reused MadeWorkspace across calls and batch shapes must
        // reproduce the allocating entry points exactly (the `_with`
        // paths ARE the implementation; this pins the wrapper plumbing).
        let m = tiny();
        let mut ws = MadeWorkspace::new();
        let mut lp = Vector::default();
        let mut cond = Matrix::default();
        let mut grad = Vector::default();
        let mut rows = Matrix::default();
        for bs in [1usize, 3, 8, 2] {
            let batch = SpinBatch::from_fn(bs, 5, |s, i| ((s * 7 + i * 3) % 2) as u8);
            let weights = Vector::from_fn(bs, |s| 0.25 * s as f64 - 0.5);

            m.log_psi_with(&batch, &mut ws, &mut lp);
            assert_eq!(lp.as_slice(), m.log_psi(&batch).as_slice());

            m.conditionals_with(&batch, &mut ws, &mut cond);
            assert_eq!(cond.as_slice(), m.conditionals(&batch).as_slice());

            m.weighted_log_psi_grad_with(&batch, &weights, &mut ws, &mut grad);
            assert_eq!(
                grad.as_slice(),
                m.weighted_log_psi_grad(&batch, &weights).as_slice()
            );

            m.per_sample_grads_with(&batch, &mut ws, &mut rows);
            assert_eq!(rows.as_slice(), m.per_sample_grads(&batch).as_slice());
        }
    }

    #[test]
    fn pool_checkout_roundtrip_parks_all_buffers() {
        let m = tiny();
        let batch = SpinBatch::from_fn(4, 5, |s, i| ((s + i) % 2) as u8);
        let mut pool = vqmc_tensor::Workspace::new();
        let mut out = Vector::default();
        m.log_psi_into(&batch, &mut pool, &mut out);
        assert_eq!(out.as_slice(), m.log_psi(&batch).as_slice());
        // Every MadeWorkspace buffer went back to the pool...
        assert_eq!(pool.parked(), 12);
        // ...and a second call reuses them without growing the pool.
        m.log_psi_into(&batch, &mut pool, &mut out);
        assert_eq!(pool.parked(), 12);
    }

    #[test]
    fn set_params_bumps_version() {
        let mut m = tiny();
        let v0 = m.params_version();
        let p = m.params();
        m.set_params(&p);
        assert_eq!(m.params_version(), v0 + 1);
        m.set_params(&p);
        assert_eq!(m.params_version(), v0 + 2);
    }

    #[test]
    fn params_into_matches_params() {
        let m = tiny();
        let mut out = Vector::default();
        m.params_into(&mut out);
        assert_eq!(out.as_slice(), m.params().as_slice());
    }

    #[test]
    fn single_spin_model_learns_its_bias() {
        // n = 1: π(x₁=1) = σ(b₂); logψ([1]) = ½ logσ(b₂).
        let m = Made::new(1, 3, 5);
        let batch = SpinBatch::from_single(&[1]);
        let lp = m.log_psi(&batch);
        let expected = 0.5 * ops::log_sigmoid(m.b2()[0]);
        assert!((lp[0] - expected).abs() < 1e-12);
    }
}
