//! # polling — vendored readiness shim
//!
//! A dependency-free readiness-polling layer in the spirit of the other
//! `third_party/` stubs: the API subset of the `polling` crate that
//! `vqmc-net` needs, implemented directly on the libc that `std`
//! already links (no `libc` crate, no registry access).
//!
//! * **Linux** (default): `epoll` — O(ready) wakeups, the backend the
//!   10k-connection serving runtime is sized for — plus an `eventfd`
//!   for cross-thread wakeups ([`Poller::notify`]).
//! * **Other Unix** (and Linux under the `force-poll` feature, which
//!   exists so the fallback arm stays compile- and run-tested in CI):
//!   POSIX `poll(2)` over a registry of interests, with a non-blocking
//!   self-pipe for wakeups.  O(registered) per wait, fine for tests and
//!   small fleets.
//!
//! The shim is **level-triggered** on both backends: an event keeps
//! reporting until the caller drains the condition.  Callers toggle
//! interest via [`Poller::modify`] instead of relying on edge
//! semantics, which keeps the two backends behaviourally identical.
//!
//! All file descriptors are the caller's (`RawFd` from `std::net`
//! sockets); the poller never closes them.  `key` is an opaque caller
//! token returned in [`Event::key`]; `usize::MAX` is reserved for the
//! internal wakeup descriptor and rejected in `add`/`modify`.

#![warn(missing_docs)]
#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// One readiness event: the registered key plus which directions fired.
///
/// Error/hangup conditions are folded into `readable` (a closed or
/// errored socket becomes readable and the subsequent `read` reports
/// the actual condition), matching how `std`'s blocking I/O surfaces
/// them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen token passed to [`Poller::add`].
    pub key: usize,
    /// The descriptor is readable (or in error/hangup).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
}

/// Reserved key for the internal wakeup descriptor.
const WAKE_KEY: usize = usize::MAX;

#[cfg(all(target_os = "linux", not(feature = "force-poll")))]
mod backend {
    //! epoll + eventfd backend.

    use super::*;

    // epoll_event carries a packed u64 payload on x86-64; other
    // architectures use the natural layout.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o0004000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// The epoll-backed readiness poller.
    pub struct Poller {
        epfd: RawFd,
        wake_fd: RawFd,
    }

    impl Poller {
        /// Creates the epoll instance and its wakeup eventfd.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall wrappers; fds are validated below.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let wake_fd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = Poller { epfd, wake_fd };
            poller.ctl(EPOLL_CTL_ADD, wake_fd, WAKE_KEY, true, false)?;
            Ok(poller)
        }

        fn ctl(
            &self,
            op: i32,
            fd: RawFd,
            key: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            let mut events = EPOLLRDHUP;
            if readable {
                events |= EPOLLIN;
            }
            if writable {
                events |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events,
                data: key as u64,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
            Ok(())
        }

        /// Registers `fd` under `key` with the given interest set.
        pub fn add(&self, fd: RawFd, key: usize, readable: bool, writable: bool) -> io::Result<()> {
            assert_ne!(key, WAKE_KEY, "key usize::MAX is reserved");
            self.ctl(EPOLL_CTL_ADD, fd, key, readable, writable)
        }

        /// Replaces the interest set of an already-registered `fd`.
        pub fn modify(
            &self,
            fd: RawFd,
            key: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            assert_ne!(key, WAKE_KEY, "key usize::MAX is reserved");
            self.ctl(EPOLL_CTL_MOD, fd, key, readable, writable)
        }

        /// Deregisters `fd` (the caller still owns and closes it).
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
        }

        /// Blocks until at least one registered descriptor is ready,
        /// `timeout` elapses (`None` = indefinitely), or another thread
        /// calls [`Poller::notify`].  Ready events are appended to
        /// `events`; returns how many were appended (0 = timeout or
        /// bare wakeup).
        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
            let timeout_ms = match timeout {
                // Round up so a 1ns timeout does not busy-spin at 0ms.
                Some(t) => i32::try_from(t.as_millis().max(u128::from(!t.is_zero() as u8)))
                    .unwrap_or(i32::MAX),
                None => -1,
            };
            let n = loop {
                // SAFETY: `raw` is a valid buffer of 256 entries.
                match cvt(unsafe {
                    epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            let mut appended = 0;
            for ev in &raw[..n] {
                let (bits, data) = (ev.events, ev.data);
                if data == WAKE_KEY as u64 {
                    self.drain_wakeups();
                    continue;
                }
                events.push(Event {
                    key: data as usize,
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
                appended += 1;
            }
            Ok(appended)
        }

        /// Wakes a concurrent [`Poller::wait`] (callable from any
        /// thread; coalesces — N notifies cause ≥1 wakeups).
        pub fn notify(&self) -> io::Result<()> {
            let one = 1u64.to_ne_bytes();
            // SAFETY: valid 8-byte buffer; eventfd writes are atomic.
            let ret = unsafe { write(self.wake_fd, one.as_ptr(), one.len()) };
            // EAGAIN means the counter is saturated — a wakeup is
            // already pending, which is all notify promises.
            if ret < 0 {
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::WouldBlock {
                    return Err(e);
                }
            }
            Ok(())
        }

        fn drain_wakeups(&self) {
            let mut buf = [0u8; 8];
            // SAFETY: valid 8-byte buffer; nonblocking read.
            unsafe { read(self.wake_fd, buf.as_mut_ptr(), buf.len()) };
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: fds owned by this struct, closed exactly once.
            unsafe {
                close(self.wake_fd);
                close(self.epfd);
            }
        }
    }

    // SAFETY: the poller holds only raw fds; epoll_ctl/epoll_wait and
    // eventfd writes are documented thread-safe.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}
}

#[cfg(any(not(target_os = "linux"), feature = "force-poll"))]
mod backend {
    //! POSIX poll(2) fallback backend with a self-pipe wakeup.

    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    const F_SETFL: i32 = 4;
    const O_NONBLOCK: i32 = 0o0004000;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    #[derive(Clone, Copy)]
    struct Interest {
        key: usize,
        readable: bool,
        writable: bool,
    }

    /// The poll(2)-backed readiness poller.
    pub struct Poller {
        registry: Mutex<BTreeMap<RawFd, Interest>>,
        pipe_rd: RawFd,
        pipe_wr: RawFd,
    }

    impl Poller {
        /// Creates the poller and its wakeup pipe.
        pub fn new() -> io::Result<Poller> {
            let mut fds = [0i32; 2];
            // SAFETY: valid 2-int buffer for pipe().
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: fds are the pipe ends created above.
            unsafe {
                fcntl(fds[0], F_SETFL, O_NONBLOCK);
                fcntl(fds[1], F_SETFL, O_NONBLOCK);
            }
            Ok(Poller {
                registry: Mutex::new(BTreeMap::new()),
                pipe_rd: fds[0],
                pipe_wr: fds[1],
            })
        }

        /// Registers `fd` under `key` with the given interest set.
        pub fn add(&self, fd: RawFd, key: usize, readable: bool, writable: bool) -> io::Result<()> {
            assert_ne!(key, WAKE_KEY, "key usize::MAX is reserved");
            let mut reg = self.registry.lock().unwrap();
            if reg.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            reg.insert(
                fd,
                Interest {
                    key,
                    readable,
                    writable,
                },
            );
            drop(reg);
            // A wait blocked on the pre-mutation snapshot must re-poll
            // to observe the new interest set (epoll gets this for free
            // from the kernel; poll(2) snapshots the registry).
            self.notify()
        }

        /// Replaces the interest set of an already-registered `fd`.
        pub fn modify(
            &self,
            fd: RawFd,
            key: usize,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            assert_ne!(key, WAKE_KEY, "key usize::MAX is reserved");
            let mut reg = self.registry.lock().unwrap();
            match reg.get_mut(&fd) {
                Some(i) => {
                    *i = Interest {
                        key,
                        readable,
                        writable,
                    };
                    drop(reg);
                    // See `add`: wake any wait holding a stale snapshot.
                    self.notify()
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Deregisters `fd` (the caller still owns and closes it).
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let removed = self.registry.lock().unwrap().remove(&fd);
            match removed {
                // See `add`: a wait still polling the deleted fd must
                // re-snapshot before the caller closes/reuses it.
                Some(_) => self.notify(),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Blocks until readiness, timeout, or [`Poller::notify`];
        /// appends ready events and returns how many were appended.
        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let mut fds: Vec<PollFd> = vec![PollFd {
                fd: self.pipe_rd,
                events: POLLIN,
                revents: 0,
            }];
            let keys: Vec<Interest> = {
                let reg = self.registry.lock().unwrap();
                reg.iter()
                    .map(|(&fd, &interest)| {
                        let mut ev = 0i16;
                        if interest.readable {
                            ev |= POLLIN;
                        }
                        if interest.writable {
                            ev |= POLLOUT;
                        }
                        fds.push(PollFd {
                            fd,
                            events: ev,
                            revents: 0,
                        });
                        interest
                    })
                    .collect()
            };
            let timeout_ms = match timeout {
                Some(t) => i32::try_from(t.as_millis().max(u128::from(!t.is_zero() as u8)))
                    .unwrap_or(i32::MAX),
                None => -1,
            };
            loop {
                // SAFETY: `fds` is a valid array of initialised PollFd.
                let ret = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                if ret >= 0 {
                    break;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            }
            if fds[0].revents & POLLIN != 0 {
                let mut buf = [0u8; 64];
                // SAFETY: valid buffer; nonblocking pipe read.
                while unsafe { read(self.pipe_rd, buf.as_mut_ptr(), buf.len()) } > 0 {}
            }
            let mut appended = 0;
            for (pfd, interest) in fds[1..].iter().zip(keys) {
                let bits = pfd.revents;
                if bits == 0 {
                    continue;
                }
                events.push(Event {
                    key: interest.key,
                    readable: bits & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: bits & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
                appended += 1;
            }
            Ok(appended)
        }

        /// Wakes a concurrent [`Poller::wait`] from any thread.
        pub fn notify(&self) -> io::Result<()> {
            let one = [1u8];
            // SAFETY: valid 1-byte buffer; nonblocking pipe write.
            let ret = unsafe { write(self.pipe_wr, one.as_ptr(), 1) };
            if ret < 0 {
                let e = io::Error::last_os_error();
                // A full pipe already guarantees a pending wakeup.
                if e.kind() != io::ErrorKind::WouldBlock {
                    return Err(e);
                }
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: pipe fds owned by this struct, closed once.
            unsafe {
                close(self.pipe_rd);
                close(self.pipe_wr);
            }
        }
    }
}

pub use backend::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, true, false).unwrap();

        let mut events = Vec::new();
        // Nothing pending yet: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        let _client = TcpStream::connect(addr).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);
        poller.delete(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = Arc::new(Poller::new().unwrap());
        let p2 = Arc::clone(&poller);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            p2.notify().unwrap();
        });
        let t0 = Instant::now();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert_eq!(n, 0, "wakeup is not a user event");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "notify must cut the wait short"
        );
        waker.join().unwrap();
    }

    #[test]
    fn cross_thread_add_is_observed_by_blocked_wait() {
        // Regression: the poll(2) backend snapshots its registry per
        // wait, so a registration from another thread must notify() a
        // blocked wait or the new fd goes unobserved until the current
        // wait returns on its own.  (epoll observes epoll_ctl natively;
        // this test pins the behavioural parity.)
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        // Data is on the wire before registration: the fd is readable
        // the instant it is added.
        client.write_all(b"x").unwrap();

        let poller = Arc::new(Poller::new().unwrap());
        let p2 = Arc::clone(&poller);
        let waiter = std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut events = Vec::new();
            // Bare wakeups return 0 events; keep waiting until a user
            // event arrives or the overall deadline passes.
            while Instant::now() < deadline {
                events.clear();
                let n = p2.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
                if n > 0 {
                    break;
                }
            }
            events
        });
        // Let the waiter block on the empty pre-registration snapshot.
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        poller.add(server.as_raw_fd(), 9, true, false).unwrap();
        let events = waiter.join().unwrap();
        assert!(
            events.iter().any(|e| e.key == 9 && e.readable),
            "registration from another thread must surface the ready fd"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "add() must wake the blocked wait, not ride out its timeout"
        );
        poller.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn write_interest_and_data_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 1, true, true).unwrap();

        // A fresh socket with room in its send buffer is writable.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 1 && e.writable));

        // Narrow to read interest: pending data must surface.
        poller.modify(server.as_raw_fd(), 1, true, false).unwrap();
        client.write_all(b"ping").unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 1 && e.readable));
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        poller.delete(server.as_raw_fd()).unwrap();
    }
}
