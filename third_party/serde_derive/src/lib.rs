//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! Nothing in the workspace performs actual serialization (there is no
//! serde_json/bincode dependency); the derives only need to *exist* so
//! the `#[derive(...)]` attributes on model/config structs compile.
//! Each derive emits an empty token stream — i.e. no impls at all —
//! which is sufficient because no code writes `T: Serialize` bounds.

use proc_macro::TokenStream;

/// Emits nothing; satisfies `#[derive(Serialize)]` and swallows
/// `#[serde(...)]` helper attributes like the real derive does.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Emits nothing; satisfies `#[derive(Deserialize)]` and swallows
/// `#[serde(...)]` helper attributes like the real derive does.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
