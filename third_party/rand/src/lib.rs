//! Vendored stand-in for the `rand` 0.8 API subset used by this
//! workspace (see `third_party/README.md` for the rationale).
//!
//! Provides: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), [`rngs::StdRng`], and
//! [`distributions::{Distribution, Uniform, Bernoulli}`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a
//! high-quality, fast, deterministic stream. It is **not** the same
//! stream as upstream rand's ChaCha12 `StdRng`; callers in this
//! workspace only rely on determinism-per-seed and statistical quality,
//! both of which hold.

use std::ops::{Range, RangeInclusive};

pub mod distributions;
pub mod rngs;

/// Low-level uniform-bits source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn from the "standard" distribution of an RNG
/// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1) — the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` via Lemire-style rejection (unbiased).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "gen_range: empty range");
    // Rejection zone keeps the draw exactly uniform.
    let zone = bound.wrapping_neg() % bound; // = 2^64 mod bound
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
