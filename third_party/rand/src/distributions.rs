//! The distribution subset the workspace draws from: [`Distribution`],
//! a generic [`Uniform`] (floats plus the integer types sampled
//! in-tree), and [`Bernoulli`].

use crate::{uniform_below, RngCore, StandardSample};

/// A distribution over `T` sampled with an explicit RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Types usable with [`Uniform`]; carries the per-type sampling rule.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        // Closed vs half-open is a measure-zero distinction for floats.
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                debug_assert!(span > 0, "Uniform: empty integer range");
                if span > u64::MAX as u128 {
                    // Full-width span: a raw draw is already uniform.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                let off = uniform_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
uniform_int!(usize, u64, u32, i64, i32);

/// Uniform distribution over a half-open or inclusive range.
#[derive(Clone, Copy, Debug)]
pub struct Uniform<T: SampleUniform = f64> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: SampleUniform> Uniform<T> {
    /// Uniform over `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        assert!(lo < hi, "Uniform::new: empty interval");
        Uniform {
            lo,
            hi,
            inclusive: false,
        }
    }

    /// Uniform over `[lo, hi]`.
    pub fn new_inclusive(lo: T, hi: T) -> Self {
        assert!(lo <= hi, "Uniform::new_inclusive: empty interval");
        Uniform {
            lo,
            hi,
            inclusive: true,
        }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_uniform(self.lo, self.hi, self.inclusive, rng)
    }
}

/// Error for an invalid Bernoulli probability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BernoulliError;

impl std::fmt::Display for BernoulliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bernoulli probability outside [0, 1]")
    }
}

impl std::error::Error for BernoulliError {}

/// Bernoulli distribution with success probability `p`.
#[derive(Clone, Copy, Debug)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Builds the distribution; errors when `p ∉ [0, 1]`.
    pub fn new(p: f64) -> Result<Self, BernoulliError> {
        if (0.0..=1.0).contains(&p) {
            Ok(Bernoulli { p })
        } else {
            Err(BernoulliError)
        }
    }
}

impl Distribution<bool> for Bernoulli {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        f64::sample_standard(rng) < self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let d = Uniform::new_inclusive(-2.0, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((-2.0..=2.0).contains(&x));
        }
    }

    #[test]
    fn uniform_usize_hits_all_values() {
        let d = Uniform::new(0usize, 5);
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[d.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_inclusive_int_endpoints_reachable() {
        let d = Uniform::new_inclusive(0u32, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[d.sample(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn uniform_negative_int_range() {
        let d = Uniform::new(-3i64, 3);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let v = d.sample(&mut rng);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn bernoulli_rejects_bad_probability() {
        assert!(Bernoulli::new(1.5).is_err());
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(Bernoulli::new(0.5).is_ok());
    }

    #[test]
    fn bernoulli_frequency() {
        let d = Bernoulli::new(0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| d.sample(&mut rng)).count();
        assert!((6700..7300).contains(&hits), "hits {hits}");
    }
}
