//! Vendored stand-in for `serde`: marker traits plus no-op derive
//! macros (see `third_party/README.md`). The workspace only uses
//! `#[derive(Serialize, Deserialize)]` declaratively — no serializer
//! backend exists in-tree — so empty traits and empty derives satisfy
//! every use site. Traits and derive macros share names in separate
//! namespaces, exactly as in upstream serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
