//! Vendored stand-in for the `criterion` subset this workspace uses
//! (see `third_party/README.md`): `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: one calibration call sizes iterations so each
//! sample targets ~1/samples of a one-second budget, then `samples`
//! timed samples are collected and the **median ns/iter** is reported.
//! A hard ~10 s cap per benchmark shrinks the sample count for very
//! slow cases rather than blocking the suite.
//!
//! Machine-readable output: when the `BENCH_JSON` environment variable
//! names a file, every finished benchmark merges `"<group>/<id>":
//! <median_ns>` into that file as a flat JSON object (one entry per
//! line). Multiple bench binaries writing to the same path accumulate
//! rather than clobber each other.

use std::hint::black_box as hint_black_box;
use std::time::Instant;

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// How `iter_batched` amortises setup; the stub times the routine only,
/// so the variants are equivalent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark identifier: `new("fn", param)` → `fn/param`,
/// `from_parameter(param)` → `param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint_black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Times `routine` only — each iteration's `setup` runs off the
    /// clock, matching upstream `iter_batched` semantics.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total: u128 = 0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            hint_black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
    }
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    pub id: String,
    pub median_ns: f64,
}

/// Top-level harness state; collects records across groups.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchRecord>,
}

const DEFAULT_SAMPLES: usize = 20;
const BUDGET_NS: u128 = 1_000_000_000; // target per-benchmark time
const HARD_CAP_NS: u128 = 10_000_000_000; // never exceed ~10 s per benchmark

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
        }
    }

    /// Ungrouped benchmark (id used verbatim).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let record = run_benchmark(id.to_string(), DEFAULT_SAMPLES, f);
        self.results.push(record);
        self
    }

    /// Prints the summary and, when `BENCH_JSON` is set, merges the
    /// records into that JSON file. Called by `criterion_main!`.
    pub fn finalize(&mut self) {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if !path.is_empty() {
                if let Err(e) = merge_json(&path, &self.results) {
                    eprintln!("criterion stub: failed to write {path}: {e}");
                }
            }
        }
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id);
        let record = run_benchmark(full_id, self.sample_size, f);
        self.criterion.results.push(record);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id);
        let record = run_benchmark(full_id, self.sample_size, |b| f(b, input));
        self.criterion.results.push(record);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: String, samples: usize, mut routine: F) -> BenchRecord {
    // Calibration: one single-iteration call (doubles as warm-up).
    let mut b = Bencher {
        iters: 1,
        elapsed_ns: 0,
    };
    routine(&mut b);
    let per_iter = b.elapsed_ns.max(1);

    // Size each sample toward BUDGET_NS/samples, then shrink the sample
    // count if even one-iteration samples would blow the hard cap.
    let per_sample_target = BUDGET_NS / samples as u128;
    let iters = (per_sample_target / per_iter).clamp(1, 1_000_000_000) as u64;
    let est_total = per_iter * iters as u128 * samples as u128;
    let samples = if est_total > HARD_CAP_NS {
        ((HARD_CAP_NS / (per_iter * iters as u128)).max(3) as usize).min(samples)
    } else {
        samples
    };

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        routine(&mut b);
        per_iter_ns.push(b.elapsed_ns as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_ns = if per_iter_ns.len() % 2 == 1 {
        per_iter_ns[per_iter_ns.len() / 2]
    } else {
        let hi = per_iter_ns.len() / 2;
        0.5 * (per_iter_ns[hi - 1] + per_iter_ns[hi])
    };

    println!("bench {id:<48} median {median_ns:>14.1} ns/iter ({samples} samples x {iters} iters)");
    BenchRecord { id, median_ns }
}

/// Merges records into a flat JSON object file: `{"id": median_ns, ...}`,
/// one entry per line. Existing entries for other ids are preserved so
/// several bench binaries can share one output file.
fn merge_json(path: &str, records: &[BenchRecord]) -> std::io::Result<()> {
    let mut entries: Vec<(String, f64)> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            if let Some(rest) = line.strip_prefix('"') {
                if let Some((key, value)) = rest.split_once("\":") {
                    if let Ok(v) = value.trim().parse::<f64>() {
                        entries.push((key.to_string(), v));
                    }
                }
            }
        }
    }
    for r in records {
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == r.id) {
            slot.1 = r.median_ns;
        } else {
            entries.push((r.id.clone(), r.median_ns));
        }
    }
    let mut out = String::from("{\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!("\"{k}\": {v:.1}{sep}\n"));
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main`: runs every group, then finalizes (summary +
/// optional `BENCH_JSON` merge).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("naive", 50).to_string(), "naive/50");
        assert_eq!(BenchmarkId::from_parameter(50).to_string(), "50");
    }

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("with", 7), &7usize, |b, &x| {
                b.iter_batched(|| x, |v| v * 2, BatchSize::LargeInput)
            });
        }
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].id, "g/noop");
        assert_eq!(c.results[1].id, "g/with/7");
        assert!(c.results.iter().all(|r| r.median_ns >= 0.0));
    }

    #[test]
    fn json_merge_preserves_and_updates() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bench_stub_test_{}.json", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);

        merge_json(
            &path,
            &[BenchRecord {
                id: "a/x".into(),
                median_ns: 10.0,
            }],
        )
        .unwrap();
        merge_json(
            &path,
            &[
                BenchRecord {
                    id: "a/x".into(),
                    median_ns: 20.0,
                },
                BenchRecord {
                    id: "b/y".into(),
                    median_ns: 5.0,
                },
            ],
        )
        .unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"a/x\": 20.0"));
        assert!(text.contains("\"b/y\": 5.0"));
        let _ = std::fs::remove_file(&path);
    }
}
