//! Vendored stand-in for the `proptest` subset this workspace uses
//! (see `third_party/README.md`):
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   test functions of shape `fn name(arg in strategy, ...) { ... }`;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`Strategy`] implementations for integer and float ranges.
//!
//! Unlike upstream proptest there is no shrinking: a failing case
//! panics immediately with its case index, and because case generation
//! is **deterministic** (seeded from the test name and case index) a
//! failure reproduces exactly on re-run.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Implemented for ranges; `generate` draws one
/// value uniformly.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// FNV-1a hash of the test name: diversifies the RNG stream per test
/// while staying fully deterministic.
pub fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Builds the deterministic RNG for `(test name, case index)`.
pub fn case_rng(name: &str, case: u32) -> TestRng {
    TestRng::seed_from_u64(name_seed(name) ^ ((case as u64) << 32 | 0x5bf0_3635))
}

/// The property-test macro: wraps each function in a deterministic
/// case loop and re-emits its attributes (including `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __run = || $body;
                __run();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a property; panics with the assertion text on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality; panics with both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated values respect their range strategies.
        #[test]
        fn ranges_respected(a in 1usize..10, b in -2.0f64..2.0, c in 0u64..=5) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!(c <= 5);
        }
    }

    proptest! {
        /// Default config runs and the trailing-comma form parses.
        #[test]
        fn trailing_comma(x in 0usize..3,) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn deterministic_cases() {
        let mut a = super::case_rng("t", 4);
        let mut b = super::case_rng("t", 4);
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
