//! Vendored stand-in for the `rayon` API subset used by this workspace
//! (see `third_party/README.md`).
//!
//! Every `par_*` entry point delegates to the equivalent sequential
//! `std` iterator. This is semantically identical (rayon's contract is
//! that parallel iteration computes the same result as sequential
//! iteration, up to fp reduction order — and the sequential order *is*
//! the canonical order), and on this single-core container it is also
//! the fastest execution. The workspace additionally gates all parallel
//! paths on [`current_num_threads`]` > 1` via
//! `vqmc_tensor::par::should_parallelize`, so under this stub those
//! branches are never taken in production code; the prelude exists so
//! the call sites keep compiling unchanged and upstream rayon can be
//! swapped back in on a multi-core substrate.

/// Number of worker threads the pool would have: the machine's
/// available parallelism.
///
/// Cached after the first call: `available_parallelism` performs a
/// cgroup-quota lookup on Linux (file reads, heap allocations), which
/// would otherwise put allocations on every hot-loop call to
/// `vqmc_tensor::par::should_parallelize`. Real rayon's pool size is
/// likewise fixed after initialisation.
pub fn current_num_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs two closures (sequentially here) and returns both results —
/// the `rayon::join` signature.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

/// The parallel-iterator traits, delegating to `std` iterators.
pub mod prelude {
    /// `par_chunks` for slices.
    pub trait ParallelSlice<T> {
        /// Chunked view of the slice (sequential stand-in).
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        #[inline]
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_chunks_mut` for slices.
    pub trait ParallelSliceMut<T> {
        /// Mutable chunked view of the slice (sequential stand-in).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        #[inline]
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// `par_iter` by shared reference.
    pub trait IntoParallelRefIterator<'a> {
        /// The iterator type.
        type Iter;
        /// Sequential stand-in for `par_iter`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        #[inline]
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        #[inline]
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    /// `par_iter_mut` by exclusive reference.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The iterator type.
        type Iter;
        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Iter = std::slice::IterMut<'a, T>;
        #[inline]
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Iter = std::slice::IterMut<'a, T>;
        #[inline]
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `into_par_iter` by value (ranges, vectors).
    pub trait IntoParallelIterator {
        /// The iterator type.
        type Iter;
        /// Sequential stand-in for `into_par_iter`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        #[inline]
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        #[inline]
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_matches_chunks() {
        let xs = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let sums: Vec<f64> = xs.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3.0, 7.0, 5.0]);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut xs = vec![1, 2, 3];
        xs.par_iter_mut().for_each(|v| *v *= 2);
        assert_eq!(xs, vec![2, 4, 6]);
    }

    #[test]
    fn range_into_par_iter() {
        let total: usize = (0..10usize).into_par_iter().map(|i| i * i).sum();
        assert_eq!(total, 285);
    }

    #[test]
    fn thread_count_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
