//! Vendored stand-in for the `rayon` API subset used by this workspace
//! (see `third_party/README.md`).
//!
//! Since PR 6 this shim is a thin adapter over the **real** worker pool
//! in [`vqmc_tensor::par`]: the parallel-iterator entry points below
//! partition their index space into one contiguous stripe per pool
//! worker (`par::stripe`) and dispatch through `par::run`.  There is no
//! work stealing and no dynamic splitting — which is exactly what gives
//! the workspace its determinism contract:
//!
//! * **Fixed assignment** — item `i` of a length-`len` source always
//!   runs on the worker designated by `par::stripe(len, parts, w)`, a
//!   pure function of `(len, parts)`.
//! * **Fixed reduction tree** — [`ParIter::sum`] folds items within
//!   fixed 4096-item chunks sequentially and then folds the per-chunk
//!   partials in ascending chunk order.  The association depends only
//!   on `len`, never on the thread count or the schedule, so floating
//!   point sums are **bit-identical at any `VQMC_THREADS`** (and also
//!   identical between the sequential fallback and the parallel path).
//! * **Slot writes** — [`ParIter::collect`] writes item `i` into slot
//!   `i` of the output; no ordering between workers is observable.
//!
//! The subset implemented eagerly (pool-backed) is the one the
//! workspace consumes: `into_par_iter` on ranges, `par_iter` /
//! `par_iter_mut` / `par_chunks` / `par_chunks_mut` on slices, with the
//! `map` / `for_each` / `sum` / `collect` terminals.  `Vec::into_par_iter`
//! and [`join`] remain sequential compatibility shims (no production
//! call sites); upstream rayon can still be swapped back in, at the
//! cost of the bit-identity guarantee above.

use vqmc_tensor::par;

/// Number of worker threads parallel regions may use: the pool width
/// from [`vqmc_tensor::par::active_threads`] (the `VQMC_THREADS`
/// environment override, a `par::with_threads` scope, or one thread per
/// available core).
pub fn current_num_threads() -> usize {
    par::active_threads()
}

/// Runs two closures and returns both results — the `rayon::join`
/// signature.  Executed sequentially (`a` then `b`): the workspace pool
/// is a fork-join broadcast without a task deque, so there is nothing
/// to steal the second closure, and sequential order is the canonical
/// deterministic one.  No production call sites use this.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

/// Sources shorter than this run their terminal sequentially: one pool
/// dispatch costs on the order of a few microseconds, so per-item work
/// has to amortise it.  (Iterator items here are closures of arbitrary
/// cost — e.g. a whole Hamiltonian row — hence a much lower bar than
/// `par::PAR_THRESHOLD_ELEMS`, which prices memory-bound `f64` lanes.)
const MIN_PAR_LEN: usize = 1024;

/// Fixed fold-chunk length for [`ParIter::sum`]: partials are folded
/// within chunks of this many items, then across chunks in ascending
/// order, making the association independent of the thread count.
const SUM_CHUNK: usize = 4096;

#[doc(hidden)]
pub mod plumbing {
    //! Internal producer abstraction: an indexed, random-access source
    //! whose items can be yielded from any pool worker.  Public only so
    //! the adapter types can name it; not part of the stable surface.

    /// An indexed source of `len` items.  The driver guarantees each
    /// index is consumed at most once per terminal operation.
    pub trait Producer: Sync {
        /// The item type.
        type Item;
        /// Number of items.
        fn len(&self) -> usize;
        /// Whether the source is empty.
        fn is_empty(&self) -> bool {
            self.len() == 0
        }
        /// Yields item `i`.
        ///
        /// # Safety
        /// Callers must consume each index at most once (mutable-slice
        /// producers hand out disjoint `&mut` borrows by index).
        unsafe fn item(&self, i: usize) -> Self::Item;
    }

    /// `0..end` offset range.
    pub struct RangeProducer(pub(crate) usize, pub(crate) usize);
    impl Producer for RangeProducer {
        type Item = usize;
        fn len(&self) -> usize {
            self.1 - self.0
        }
        unsafe fn item(&self, i: usize) -> usize {
            self.0 + i
        }
    }

    /// Shared-slice items.
    pub struct SliceProducer<'a, T>(pub(crate) &'a [T]);
    impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
        type Item = &'a T;
        fn len(&self) -> usize {
            self.0.len()
        }
        unsafe fn item(&self, i: usize) -> &'a T {
            &self.0[i]
        }
    }

    /// Disjoint `&mut` items handed out by index.
    pub struct SliceMutProducer<'a, T> {
        pub(crate) ptr: *mut T,
        pub(crate) len: usize,
        pub(crate) _marker: std::marker::PhantomData<&'a mut [T]>,
    }
    // SAFETY: items are yielded at most once per index (Producer
    // contract), so the `&mut` borrows are disjoint.
    unsafe impl<T: Send> Sync for SliceMutProducer<'_, T> {}
    impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
        type Item = &'a mut T;
        fn len(&self) -> usize {
            self.len
        }
        unsafe fn item(&self, i: usize) -> &'a mut T {
            debug_assert!(i < self.len);
            &mut *self.ptr.add(i)
        }
    }

    /// Shared chunked view (`chunks` semantics: last chunk may be short).
    pub struct ChunksProducer<'a, T> {
        pub(crate) xs: &'a [T],
        pub(crate) size: usize,
    }
    impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
        type Item = &'a [T];
        fn len(&self) -> usize {
            self.xs.len().div_ceil(self.size)
        }
        unsafe fn item(&self, i: usize) -> &'a [T] {
            let s = i * self.size;
            &self.xs[s..(s + self.size).min(self.xs.len())]
        }
    }

    /// Mutable chunked view; chunks are disjoint by construction.
    pub struct ChunksMutProducer<'a, T> {
        pub(crate) ptr: *mut T,
        pub(crate) len: usize,
        pub(crate) size: usize,
        pub(crate) _marker: std::marker::PhantomData<&'a mut [T]>,
    }
    // SAFETY: chunk `i` covers indices `[i*size, min((i+1)*size, len))`
    // — disjoint across distinct `i`.
    unsafe impl<T: Send> Sync for ChunksMutProducer<'_, T> {}
    impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
        type Item = &'a mut [T];
        fn len(&self) -> usize {
            self.len.div_ceil(self.size)
        }
        unsafe fn item(&self, i: usize) -> &'a mut [T] {
            let s = i * self.size;
            let e = (s + self.size).min(self.len);
            std::slice::from_raw_parts_mut(self.ptr.add(s), e - s)
        }
    }

    /// `map` adapter: yields `f(inner item)`.
    pub struct MapProducer<P, F> {
        pub(crate) inner: P,
        pub(crate) f: F,
    }
    impl<P, F, U> Producer for MapProducer<P, F>
    where
        P: Producer,
        F: Fn(P::Item) -> U + Sync,
    {
        type Item = U;
        fn len(&self) -> usize {
            self.inner.len()
        }
        unsafe fn item(&self, i: usize) -> U {
            (self.f)(self.inner.item(i))
        }
    }
}

use plumbing::Producer;

/// Raw pointer wrapper so closures capture something `Sync` (the field
/// itself is a bare `*mut T`).
struct Shared<T>(*mut T);
unsafe impl<T> Send for Shared<T> {}
unsafe impl<T> Sync for Shared<T> {}
impl<T> Shared<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

/// An eager parallel iterator over an indexed producer.  Terminal
/// operations drive every index exactly once: striped across the pool
/// when the source is long enough, inline otherwise (identical results
/// either way — see the crate docs for the determinism contract).
pub struct ParIter<P>(P);

impl<P: Producer> ParIter<P> {
    /// Maps every item through `f` (lazily; fused into the terminal).
    pub fn map<U, F>(self, f: F) -> ParIter<plumbing::MapProducer<P, F>>
    where
        F: Fn(P::Item) -> U + Sync,
    {
        ParIter(plumbing::MapProducer { inner: self.0, f })
    }

    /// Runs `f` on every item.  Items are striped contiguously across
    /// the pool workers; each worker visits its stripe in ascending
    /// index order.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Sync,
    {
        let len = self.0.len();
        let parts = par::active_threads().min(len.max(1));
        if parts <= 1 || len < MIN_PAR_LEN {
            for i in 0..len {
                // SAFETY: each index consumed exactly once.
                unsafe { f(self.0.item(i)) };
            }
            return;
        }
        let p = &self.0;
        par::run(parts, &|w| {
            for i in par::stripe(len, parts, w) {
                // SAFETY: stripes partition 0..len — once per index.
                unsafe { f(p.item(i)) };
            }
        });
    }

    /// Sums the items with a thread-count-independent association:
    /// sequential folds within fixed [`SUM_CHUNK`]-item chunks, then a
    /// sequential fold of the per-chunk partials in ascending order.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
        P::Item: Send,
    {
        let len = self.0.len();
        let nchunks = len.div_ceil(SUM_CHUNK);
        let p = &self.0;
        let chunk_sum = |c: usize| -> S {
            let s = c * SUM_CHUNK;
            let e = (s + SUM_CHUNK).min(len);
            // SAFETY: chunks partition 0..len — once per index.
            (s..e).map(|i| unsafe { p.item(i) }).sum()
        };
        collect_indexed(nchunks, &chunk_sum).into_iter().sum()
    }

    /// Collects into `C` (item `i` lands in slot `i`, so the result is
    /// independent of scheduling by construction).
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<P::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Collection types constructible from a [`ParIter`] (the `collect`
/// bound, mirroring rayon's trait of the same name).
pub trait FromParallelIterator<T>: Sized {
    /// Builds `Self` from the iterator's items.
    fn from_par_iter<P: Producer<Item = T>>(iter: ParIter<P>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: Producer<Item = T>>(iter: ParIter<P>) -> Self {
        let p = &iter.0;
        // SAFETY: the driver consumes each index exactly once.
        collect_indexed(p.len(), &|i| unsafe { p.item(i) })
    }
}

/// Builds a `Vec` whose slot `i` holds `f(i)`, evaluating `f` across
/// the pool when `len` warrants it.  Slot-writes into a preallocated
/// buffer: no ordering between workers is observable in the result.
fn collect_indexed<T: Send>(len: usize, f: &(dyn Fn(usize) -> T + Sync)) -> Vec<T> {
    let mut out: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit needs no initialisation; every slot is
    // written exactly once below before the transmute to Vec<T>.
    unsafe { out.set_len(len) };
    let parts = par::active_threads().min(len.max(1));
    if parts <= 1 || len < MIN_PAR_LEN {
        for (i, slot) in out.iter_mut().enumerate() {
            slot.write(f(i));
        }
    } else {
        let base = Shared(out.as_mut_ptr());
        par::run(parts, &|w| {
            for i in par::stripe(len, parts, w) {
                // SAFETY: stripes are disjoint; slot `i` written once.
                unsafe { (*base.get().add(i)).write(f(i)) };
            }
        });
    }
    let mut out = std::mem::ManuallyDrop::new(out);
    // SAFETY: all `len` slots initialised; MaybeUninit<T> and T share
    // layout, and ptr/len/capacity are reused verbatim.
    unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut T, len, out.capacity()) }
}

/// The parallel-iterator traits, adapting containers onto [`ParIter`].
pub mod prelude {
    pub use crate::FromParallelIterator;
    use crate::{plumbing, ParIter};

    /// `par_chunks` for slices.
    pub trait ParallelSlice<T: Sync> {
        /// Parallel iterator over `chunk_size`-element chunks (last may
        /// be short), like `slice::chunks`.
        fn par_chunks(&self, chunk_size: usize) -> ParIter<plumbing::ChunksProducer<'_, T>>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParIter<plumbing::ChunksProducer<'_, T>> {
            assert!(chunk_size > 0, "par_chunks: chunk size must be non-zero");
            ParIter(plumbing::ChunksProducer {
                xs: self,
                size: chunk_size,
            })
        }
    }

    /// `par_chunks_mut` for slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel iterator over disjoint mutable chunks.
        fn par_chunks_mut(
            &mut self,
            chunk_size: usize,
        ) -> ParIter<plumbing::ChunksMutProducer<'_, T>>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(
            &mut self,
            chunk_size: usize,
        ) -> ParIter<plumbing::ChunksMutProducer<'_, T>> {
            assert!(chunk_size > 0, "par_chunks_mut: chunk size must be non-zero");
            ParIter(plumbing::ChunksMutProducer {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                size: chunk_size,
                _marker: std::marker::PhantomData,
            })
        }
    }

    /// `par_iter` by shared reference.
    pub trait IntoParallelRefIterator<'a> {
        /// The iterator type.
        type Iter;
        /// Parallel iterator over `&Item`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = ParIter<plumbing::SliceProducer<'a, T>>;
        fn par_iter(&'a self) -> Self::Iter {
            ParIter(plumbing::SliceProducer(self))
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = ParIter<plumbing::SliceProducer<'a, T>>;
        fn par_iter(&'a self) -> Self::Iter {
            ParIter(plumbing::SliceProducer(self))
        }
    }

    /// `par_iter_mut` by exclusive reference.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The iterator type.
        type Iter;
        /// Parallel iterator over `&mut Item`.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Iter = ParIter<plumbing::SliceMutProducer<'a, T>>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            ParIter(plumbing::SliceMutProducer {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                _marker: std::marker::PhantomData,
            })
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Iter = ParIter<plumbing::SliceMutProducer<'a, T>>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.as_mut_slice().par_iter_mut()
        }
    }

    /// `into_par_iter` by value (ranges, vectors).
    pub trait IntoParallelIterator {
        /// The iterator type.
        type Iter;
        /// Parallel iterator over owned items.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        /// Sequential compatibility shim: moving items out of a `Vec`
        /// in parallel needs drop-tracking machinery no workspace call
        /// site pays for — borrow with `par_iter` instead.
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = ParIter<plumbing::RangeProducer>;
        fn into_par_iter(self) -> Self::Iter {
            ParIter(plumbing::RangeProducer(self.start, self.end.max(self.start)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use vqmc_tensor::par;

    #[test]
    fn par_chunks_matches_chunks() {
        let xs = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let sums: Vec<f64> = xs.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3.0, 7.0, 5.0]);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut xs = vec![1, 2, 3];
        xs.par_iter_mut().for_each(|v| *v *= 2);
        assert_eq!(xs, vec![2, 4, 6]);
    }

    #[test]
    fn range_into_par_iter() {
        let total: usize = (0..10usize).into_par_iter().map(|i| i * i).sum();
        assert_eq!(total, 285);
    }

    #[test]
    fn thread_count_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn collect_runs_on_pool_and_preserves_order() {
        // Long enough to clear MIN_PAR_LEN so the pool branch executes.
        let n = 10_000usize;
        let got: Vec<usize> = par::with_threads(4, || (0..n).into_par_iter().map(|i| i * 3).collect());
        assert_eq!(got.len(), n);
        assert!(got.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    fn sum_bit_identical_across_thread_counts() {
        // Ill-conditioned magnitudes: any change of association moves
        // the low bits, so bitwise equality proves the fixed tree.
        let n = 50_000usize;
        let f = |i: usize| ((i as f64) * 1.618).sin() * 10f64.powi((i % 13) as i32 - 6);
        let reference: f64 = par::with_threads(1, || (0..n).into_par_iter().map(f).sum());
        for threads in [2, 3, 4, 8] {
            let s: f64 = par::with_threads(threads, || (0..n).into_par_iter().map(f).sum());
            assert_eq!(s.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_mut_disjoint_writes() {
        let n = 40_000usize;
        let mut xs = vec![0u32; n];
        par::with_threads(4, || {
            xs.par_chunks_mut(7).for_each(|c| {
                for v in c.iter_mut() {
                    *v += 1;
                }
            });
        });
        assert!(xs.iter().all(|&v| v == 1));
    }

    #[test]
    fn mutation_inside_map_for_each_via_par_iter_mut() {
        let n = 20_000usize;
        let mut xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let seq: Vec<f64> = xs.iter().map(|v| v * 0.5 + 1.0).collect();
        par::with_threads(4, || {
            xs.par_iter_mut().for_each(|v| *v = *v * 0.5 + 1.0);
        });
        assert_eq!(xs, seq);
    }
}
