//! Cross-sampler consistency: AUTO and MCMC are two estimators of the
//! same expectation values.  On a *fixed* wavefunction they must agree
//! (AUTO exactly, MCMC asymptotically) — the statistical foundation of
//! the paper's comparison.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vqmc::hamiltonian::{local_energies, LocalEnergyConfig};
use vqmc::prelude::*;
use vqmc::tensor::batch::{encode_config, enumerate_configs};
use vqmc::tensor::reduce::log_sum_exp;

/// Exact population energy of a wavefunction by enumeration.
fn exact_energy(h: &dyn SparseRowHamiltonian, wf: &dyn WaveFunction, n: usize) -> f64 {
    let all = enumerate_configs(n);
    let log_psi = wf.log_psi(&all);
    let log_w: Vec<f64> = log_psi.iter().map(|lp| 2.0 * lp).collect();
    let z = log_sum_exp(&log_w);
    let mut eval = |b: &vqmc::tensor::SpinBatch| wf.log_psi(b);
    let local = local_energies(h, &all, &log_psi, &mut eval, LocalEnergyConfig::default());
    (0..all.batch_size())
        .map(|s| (log_w[s] - z).exp() * local[s])
        .sum()
}

#[test]
fn auto_estimate_matches_exact_expectation() {
    let n = 7;
    let h = TransverseFieldIsing::random(n, 4);
    let wf = Made::new(n, 12, 9);
    let truth = exact_energy(&h, &wf, n);

    let mut rng = StdRng::seed_from_u64(2);
    let out = AutoSampler::new().sample(&wf, 8192, &mut rng);
    let mut eval = |b: &vqmc::tensor::SpinBatch| wf.log_psi(b);
    let local = local_energies(&h, &out.batch, &out.log_psi, &mut eval, LocalEnergyConfig::default());
    let stats = EnergyStats::from_local_energies(&local);
    let se = stats.std_dev / (8192.0f64).sqrt();
    assert!(
        (stats.mean - truth).abs() < 5.0 * se + 1e-9,
        "AUTO estimate {} vs exact {truth} (5se = {})",
        stats.mean,
        5.0 * se
    );
}

#[test]
fn mcmc_estimate_agrees_with_auto_on_same_model() {
    // Same MADE model sampled both ways: MCMC is model-agnostic, so the
    // long-chain estimate must agree with the exact AUTO estimate.
    let n = 6;
    let h = TransverseFieldIsing::random(n, 19);
    let wf = Made::new(n, 10, 3);
    let truth = exact_energy(&h, &wf, n);

    let config = McmcConfig {
        chains: 4,
        burn_in: BurnIn::Fixed(400),
        thinning: Thinning(2),
    };
    let mut rng = StdRng::seed_from_u64(7);
    let out = McmcSampler::new(config).sample(&wf, 4096, &mut rng);
    let mut eval = |b: &vqmc::tensor::SpinBatch| wf.log_psi(b);
    let local = local_energies(&h, &out.batch, &out.log_psi, &mut eval, LocalEnergyConfig::default());
    let stats = EnergyStats::from_local_energies(&local);
    // MCMC samples are correlated: use a generous tolerance.
    assert!(
        (stats.mean - truth).abs() < 0.05 * truth.abs() + 10.0 * stats.std_dev / (4096.0f64).sqrt(),
        "MCMC estimate {} vs exact {truth}",
        stats.mean
    );
}

#[test]
fn incremental_and_naive_auto_identical_through_the_stack() {
    // Beyond the unit test: identical *local energies* end to end.
    let n = 9;
    let h = TransverseFieldIsing::random(n, 77);
    let wf = Made::new(n, 14, 21);
    let naive = AutoSampler::new().sample(&wf, 64, &mut StdRng::seed_from_u64(5));
    let fast = IncrementalAutoSampler::new().sample(&wf, 64, &mut StdRng::seed_from_u64(5));
    assert_eq!(naive.batch.as_bytes(), fast.batch.as_bytes());

    let mut eval = |b: &vqmc::tensor::SpinBatch| wf.log_psi(b);
    let l1 = local_energies(&h, &naive.batch, &naive.log_psi, &mut eval, LocalEnergyConfig::default());
    let mut eval2 = |b: &vqmc::tensor::SpinBatch| wf.log_psi(b);
    let l2 = local_energies(&h, &fast.batch, &fast.log_psi, &mut eval2, LocalEnergyConfig::default());
    for s in 0..64 {
        assert!((l1[s] - l2[s]).abs() < 1e-9, "sample {s}");
    }
}

#[test]
fn auto_sample_frequencies_track_model_probabilities() {
    // Empirical frequency of the single most likely configuration must
    // match its model probability (a sharper exactness check than the
    // chi-square in the unit tests, across the crate boundary).
    let n = 5;
    let wf = Made::new(n, 9, 13);
    let all = enumerate_configs(n);
    let lp = wf.log_prob(&all);
    let probs: Vec<f64> = lp.iter().map(|l| l.exp()).collect();
    let argmax = (0..probs.len())
        .max_by(|&a, &b| probs[a].partial_cmp(&probs[b]).unwrap())
        .unwrap();

    let draws = 20_000;
    let out = AutoSampler::new().sample(&wf, draws, &mut StdRng::seed_from_u64(31));
    let hits = out
        .batch
        .samples()
        .filter(|s| encode_config(s) == argmax)
        .count();
    let freq = hits as f64 / draws as f64;
    let p = probs[argmax];
    let se = (p * (1.0 - p) / draws as f64).sqrt();
    assert!(
        (freq - p).abs() < 5.0 * se,
        "freq {freq} vs p {p} (5se = {})",
        5.0 * se
    );
}
