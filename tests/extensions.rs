//! Integration tests for the extension features built on top of the
//! paper's core reproduction: the NADE architecture, heat-bath (Gibbs)
//! sampling, the Sherrington–Kirkpatrick workload, model parallelism
//! and checkpointing — each exercised through the same public API as
//! the headline pipeline.

use vqmc::core::model_parallel::ShardedMade;
use vqmc::core::observables::fidelity;
use vqmc::nn::checkpoint::Checkpoint;
use vqmc::prelude::*;

/// NADE + native exact sampling trains to the TIM ground state through
/// the identical Trainer API — the stack is architecture-agnostic.
#[test]
fn nade_trains_to_ground_state() {
    let n = 5;
    let h = TransverseFieldIsing::random(n, 77);
    let exact = ground_state(&h, 200, 1e-12);
    let config = TrainerConfig {
        iterations: 220,
        batch_size: 256,
        optimizer: OptimizerChoice::paper_default(),
        ..TrainerConfig::paper_default(9)
    };
    let mut t = Trainer::new(Nade::new(n, 12, 3), NadeNativeSampler::new(), config);
    let trace = t.run(&h);
    let rel = (trace.final_energy() - exact.energy) / exact.energy.abs();
    assert!(
        rel.abs() < 0.06,
        "NADE reached {} vs exact {} (rel {rel})",
        trace.final_energy(),
        exact.energy
    );
}

/// Gibbs sampling drives RBM training just like Metropolis — the
/// trainer is sampler-agnostic — and both respect the variational bound.
#[test]
fn gibbs_sampling_trains_rbm() {
    let n = 6;
    let h = TransverseFieldIsing::random(n, 41);
    let exact = ground_state(&h, 200, 1e-10);
    let config = TrainerConfig {
        iterations: 80,
        batch_size: 128,
        optimizer: OptimizerChoice::paper_default(),
        ..TrainerConfig::paper_default(3)
    };
    let mut t = Trainer::new(Rbm::new(n, n, 2), GibbsSampler::default(), config);
    let trace = t.run(&h);
    assert!(trace.final_energy() < trace.records[0].energy);
    let last = trace.records.last().unwrap();
    assert!(last.energy >= exact.energy - 6.0 * last.std_dev / (128.0f64).sqrt() - 1e-6);
}

/// The SK spin glass end to end: SR training reaches high fidelity with
/// the exact ground state.
#[test]
fn sk_model_high_fidelity_with_sr() {
    let n = 8;
    let h = TransverseFieldIsing::sherrington_kirkpatrick(n, 0.7, 2021);
    let gs = ground_state(&h, 300, 1e-12);
    let config = TrainerConfig {
        iterations: 250,
        batch_size: 256,
        optimizer: OptimizerChoice::paper_sr(),
        ..TrainerConfig::paper_default(1)
    };
    let mut t = Trainer::new(Made::new(n, 14, 7), AutoSampler::new(), config);
    let trace = t.run(&h);
    let f = fidelity(t.wavefunction(), &gs.vector);
    // Glassy landscapes can trap finite-iteration runs in near-degenerate
    // states; require high fidelity OR an energy within 2% of exact.
    let rel = (trace.final_energy() - gs.energy).abs() / gs.energy.abs();
    assert!(f > 0.9 || rel < 0.02, "fidelity {f}, energy gap {rel}");
}

/// Model parallelism composes with training: a trained dense model,
/// sharded after the fact, reports identical amplitudes through the
/// distributed forward pass.
#[test]
fn trained_model_shards_losslessly() {
    let n = 6;
    let h = TransverseFieldIsing::random(n, 13);
    let config = TrainerConfig {
        iterations: 60,
        batch_size: 128,
        optimizer: OptimizerChoice::paper_default(),
        ..TrainerConfig::paper_default(2)
    };
    let mut t = Trainer::new(Made::new(n, 9, 4), AutoSampler::new(), config);
    t.run(&h);
    let made = t.into_wavefunction();

    let sharded = ShardedMade::from_made(&made, 3);
    let mut cluster = Cluster::new(Topology::new(1, 3), DeviceSpec::v100());
    let batch = vqmc::tensor::batch::enumerate_configs(n);
    let dense = made.log_psi(&batch);
    let dist = sharded.log_psi_distributed(&mut cluster, &batch);
    for s in 0..batch.batch_size() {
        assert!((dense[s] - dist[s]).abs() < 1e-11, "sample {s}");
    }
}

/// Checkpoint round-trip across a training run: restore and continue
/// evaluating with bit-identical amplitudes.
#[test]
fn checkpoint_preserves_trained_model() {
    let n = 5;
    let mc = MaxCut::random(n, 4);
    let config = TrainerConfig {
        iterations: 40,
        batch_size: 128,
        optimizer: OptimizerChoice::paper_default(),
        ..TrainerConfig::paper_default(6)
    };
    let mut t = Trainer::new(Made::new(n, 8, 1), AutoSampler::new(), config);
    t.run(&mc);
    let path = std::env::temp_dir().join(format!(
        "vqmc-integration-ckpt-{}.bin",
        std::process::id()
    ));
    t.wavefunction().save(&path).unwrap();
    let restored = Made::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let batch = vqmc::tensor::batch::enumerate_configs(n);
    assert_eq!(
        t.wavefunction().log_psi(&batch).as_slice(),
        restored.log_psi(&batch).as_slice()
    );
}

/// Diagnostics integrate with the samplers: AUTO's effective sample
/// size is the full batch; Metropolis' is far smaller on the same
/// model size.
#[test]
fn diagnostics_separate_exact_from_markov_sampling() {
    use rand::SeedableRng;
    use vqmc::sampler::diagnostics::effective_sample_size;
    let n = 12;
    let made = Made::new(n, made_hidden_size(n), 1);
    let rbm = Rbm::new(n, n, 1);
    let batch = 2000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let auto = AutoSampler::new().sample(&made, batch, &mut rng);
    let mcmc = McmcSampler::default().sample_rbm(&rbm, batch, &mut rng);
    let ess_auto = effective_sample_size(auto.log_psi.as_slice());
    let ess_mcmc = effective_sample_size(mcmc.log_psi.as_slice());
    assert!(ess_auto > 0.8 * batch as f64, "AUTO ESS {ess_auto}");
    assert!(
        ess_mcmc < 0.5 * ess_auto,
        "MCMC ESS {ess_mcmc} not clearly below AUTO's {ess_auto}"
    );
}
