//! Distributed-training integration tests: the correctness properties
//! behind the paper's multi-GPU claims, checked across the crate
//! boundary (core + cluster + nn + sampler + hamiltonian).

use vqmc::prelude::*;

fn config(iters: usize, mbs: usize, n: usize, hidden: usize, seed: u64) -> DistributedConfig {
    DistributedConfig {
        iterations: iters,
        minibatch_per_device: mbs,
        optimizer: OptimizerChoice::paper_default(),
        local_energy: Default::default(),
        seed,
        cost_hidden: hidden,
        cost_offdiag: n,
    }
}

/// Replicas remain bit-identical through real-thread execution and the
/// tree allreduce — the core SPMD invariant.
#[test]
fn replicas_bit_identical_across_topologies() {
    let n = 8;
    let h = TransverseFieldIsing::random(n, 12);
    for (l1, l2) in [(1, 2), (2, 2), (3, 2), (2, 4)] {
        let cluster = Cluster::new(Topology::new(l1, l2), DeviceSpec::v100());
        let wf = Made::new(n, 10, 42);
        let mut t =
            DistributedTrainer::new(cluster, wf, IncrementalAutoSampler::new(), config(5, 8, n, 10, 3));
        t.run(&h);
        t.assert_replicas_consistent();
    }
}

/// Same total sample budget, different layouts: a 4-device run with
/// mbs=32 and a 1-device run with bs=128 estimate the same physics.
/// Energies after identical iteration counts must agree within
/// Monte-Carlo noise.
#[test]
fn device_layout_does_not_change_the_physics() {
    let n = 8;
    let h = TransverseFieldIsing::random(n, 31);
    let iters = 40;

    let run = |l1: usize, l2: usize, mbs: usize| {
        let cluster = Cluster::new(Topology::new(l1, l2), DeviceSpec::v100());
        let wf = Made::new(n, 12, 7);
        let mut t = DistributedTrainer::new(
            cluster,
            wf,
            IncrementalAutoSampler::new(),
            config(iters, mbs, n, 12, 5),
        );
        t.run(&h)
    };
    let single = run(1, 1, 128);
    let quad = run(2, 2, 32);
    assert_eq!(single.records.len(), quad.records.len());
    let e1 = single.final_energy();
    let e4 = quad.final_energy();
    let scale = e1.abs().max(1.0);
    assert!(
        (e1 - e4).abs() / scale < 0.15,
        "layouts diverged: 1x1 -> {e1}, 2x2 -> {e4}"
    );
}

/// Weak scaling of the modelled clock at the paper's problem scale
/// (n = 1000, mbs = 512): per-iteration modelled time = per-device
/// compute (L-independent) + the logarithmic allreduce, which at this
/// scale is a sub-percent perturbation.  The compute term comes from the
/// cost model; the communication term from a *real* tree allreduce of
/// gradient-sized vectors over each topology — no 10⁵-spin training run
/// needed to validate the scaling claim.
#[test]
fn modelled_weak_scaling_holds_at_paper_scale() {
    let n = 1000usize;
    let hidden = made_hidden_size(n);
    let mbs = 512usize;
    let d = 2 * n * hidden + n + hidden;
    let spec = DeviceSpec::v100();
    let compute_secs = (vqmc::core::cost::auto_sampling_flops(mbs, n, hidden)
        + vqmc::core::cost::measurement_flops(mbs, n, hidden, n)
        + vqmc::core::cost::backward_flops(mbs, n, hidden))
        / spec.flops_per_sec;

    let mut per_iter = Vec::new();
    for topo in Topology::paper_configurations() {
        let l = topo.num_devices();
        let grads: Vec<Vector> = (0..l).map(|_| Vector::zeros(d)).collect();
        let (_, comm_secs) = vqmc::cluster::allreduce_mean_tree(grads, &topo);
        per_iter.push(compute_secs + comm_secs);
    }
    let t0 = per_iter[0];
    assert!(
        t0 > 0.05,
        "paper-scale iterations take a good fraction of a second (got {t0})"
    );
    for (i, &t) in per_iter.iter().enumerate() {
        assert!(
            (t / t0 - 1.0).abs() < 0.03,
            "config {i}: modelled per-iter {t} vs baseline {t0} — weak scaling broken"
        );
    }
}

/// At small problem sizes the same model predicts the *breakdown* of
/// weak scaling: communication latency is no longer hidden.  (This is
/// Eq. 15's fine print — efficiency ≈ L only when n or mbs is large —
/// and guards the cost model against accidentally ignoring comm.)
#[test]
fn weak_scaling_degrades_when_compute_shrinks() {
    let n = 16usize;
    let hidden = 8;
    let mbs = 2usize;
    let d = 2 * n * hidden + n + hidden;
    let spec = DeviceSpec::v100();
    let compute_secs = vqmc::core::cost::auto_iteration_flops(mbs, n, hidden, n)
        / spec.flops_per_sec;
    let single = compute_secs; // no collective at L = 1
    let big_topo = Topology::new(6, 4);
    let grads: Vec<Vector> = (0..24).map(|_| Vector::zeros(d)).collect();
    let (_, comm) = vqmc::cluster::allreduce_mean_tree(grads, &big_topo);
    let large = compute_secs + comm;
    assert!(
        large > 2.0 * single,
        "tiny problems should be latency-dominated ({large} vs {single})"
    );
}

/// Figure-4 shape: at fixed mbs, more devices (larger effective batch)
/// reach equal or lower energy on average.
#[test]
fn larger_effective_batch_converges_no_worse() {
    let n = 16;
    let h = TransverseFieldIsing::random(n, 23);
    let run = |l2: usize| {
        let cluster = Cluster::new(Topology::new(1, l2), DeviceSpec::v100());
        let wf = Made::new(n, 12, 3);
        let mut t = DistributedTrainer::new(
            cluster,
            wf,
            IncrementalAutoSampler::new(),
            config(60, 4, n, 12, 13),
        );
        t.run(&h).final_energy()
    };
    let small = run(1); // eff. batch 4
    let large = run(8); // eff. batch 32
    assert!(
        large <= small + 0.5,
        "bigger batch did worse: L=1 -> {small}, L=8 -> {large}"
    );
}

/// The sampling-only round used for Figure 3 is L-independent in
/// modelled time (no collective) and its value matches the cost model.
#[test]
fn sampling_round_time_matches_cost_model() {
    let n = 64;
    let hidden = made_hidden_size(n);
    let mbs = 16;
    let cluster = Cluster::new(Topology::new(2, 2), DeviceSpec::v100());
    let spec_flops = cluster.spec().flops_per_sec;
    let wf = Made::new(n, hidden, 1);
    let mut t = DistributedTrainer::new(
        cluster,
        wf,
        IncrementalAutoSampler::new(),
        config(0, mbs, n, hidden, 1),
    );
    let secs = t.sampling_round();
    let expected = vqmc::core::cost::auto_sampling_flops(mbs, n, hidden) / spec_flops
        + n as f64 * DeviceSpec::v100().pass_overhead_secs;
    assert!(
        (secs - expected).abs() < 1e-12,
        "modelled {secs} vs cost-model {expected}"
    );
}
