//! Property-based tests (proptest) over the workspace's cross-crate
//! invariants: randomised shapes, seeds and configurations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vqmc::prelude::*;
use vqmc::tensor::batch::enumerate_configs;
use vqmc::tensor::reduce::log_sum_exp;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// MADE is exactly normalised for any shape and seed.
    #[test]
    fn made_normalised_for_any_shape(n in 1usize..9, h in 1usize..20, seed in 0u64..1000) {
        let wf = Made::new(n, h, seed);
        let all = enumerate_configs(n);
        let lp = wf.log_prob(&all);
        let total = log_sum_exp(&lp);
        prop_assert!(total.abs() < 1e-9, "Σπ = exp({total})");
    }

    /// AUTO sampling respects the autoregressive masks for any model:
    /// the sampled logψ always equals a fresh forward evaluation.
    #[test]
    fn auto_log_psi_self_consistent(n in 2usize..10, h in 2usize..16, seed in 0u64..500) {
        let wf = Made::new(n, h, seed);
        let out = AutoSampler::new().sample(&wf, 8, &mut StdRng::seed_from_u64(seed ^ 0xABCD));
        let fresh = wf.log_psi(&out.batch);
        for s in 0..8 {
            prop_assert!((out.log_psi[s] - fresh[s]).abs() < 1e-9);
        }
    }

    /// Hamiltonian hermiticity through the trait: H_xy == H_yx for
    /// random TIM instances and random configuration pairs.
    #[test]
    fn tim_matrix_elements_symmetric(n in 2usize..10, seed in 0u64..500, x_bits in 0usize..64, i in 0usize..10) {
        let h = TransverseFieldIsing::random(n, seed);
        let x_bits = x_bits % (1 << n);
        let i = i % n;
        let x = vqmc::tensor::batch::decode_config(x_bits, n);
        let mut y = x.clone();
        y[i] ^= 1;
        prop_assert!((h.matrix_element(&x, &y) - h.matrix_element(&y, &x)).abs() < 1e-12);
    }

    /// Cut values agree between the graph routine, the batched Ising
    /// kernel, and the Hamiltonian diagonal, for any instance.
    #[test]
    fn cut_value_representations_agree(n in 3usize..12, seed in 0u64..500, bits in 0usize..4096) {
        let mc = MaxCut::random(n, seed);
        let bits = bits % (1 << n);
        let x = vqmc::tensor::batch::decode_config(bits, n);
        let direct = mc.cut_value(&x) as f64;
        let batch = vqmc::tensor::SpinBatch::from_single(&x);
        let batched = mc.cut_values(&batch)[0];
        let diag = -mc.diagonal(&x);
        prop_assert!((direct - batched).abs() < 1e-9);
        prop_assert!((direct - diag).abs() < 1e-9);
    }

    /// The weighted gradient is linear in the weights (any model, any
    /// batch): g(a·w₁ + b·w₂) = a·g(w₁) + b·g(w₂).
    #[test]
    fn weighted_gradient_is_linear(seed in 0u64..200, a in -2.0f64..2.0, b in -2.0f64..2.0) {
        let n = 5;
        let wf = Made::new(n, 8, seed);
        let batch = vqmc::tensor::SpinBatch::from_fn(6, n, |s, i| (((s + 1) * (i + 2) + seed as usize) % 2) as u8);
        let w1 = Vector::from_fn(6, |s| (s as f64 * 0.37).sin());
        let w2 = Vector::from_fn(6, |s| (s as f64 * 0.91).cos());
        let mut combo = w1.clone();
        combo.scale(a);
        combo.axpy(b, &w2);
        let lhs = wf.weighted_log_psi_grad(&batch, &combo);
        let g1 = wf.weighted_log_psi_grad(&batch, &w1);
        let g2 = wf.weighted_log_psi_grad(&batch, &w2);
        for k in 0..lhs.len() {
            let rhs = a * g1[k] + b * g2[k];
            prop_assert!((lhs[k] - rhs).abs() < 1e-8 * (1.0 + rhs.abs()));
        }
    }

    /// Allreduce-mean over any device count equals the arithmetic mean.
    #[test]
    fn allreduce_is_exact_mean(l1 in 1usize..5, l2 in 1usize..5, len in 1usize..50) {
        let topo = Topology::new(l1, l2);
        let l = topo.num_devices();
        let vectors: Vec<Vector> = (0..l)
            .map(|r| Vector::from_fn(len, |i| ((r * 31 + i * 7) % 13) as f64 - 6.0))
            .collect();
        let mut expect = Vector::zeros(len);
        for v in &vectors {
            expect.axpy(1.0 / l as f64, v);
        }
        let (mean, _) = vqmc::cluster::allreduce_mean_tree(vectors, &topo);
        for i in 0..len {
            prop_assert!((mean[i] - expect[i]).abs() < 1e-12);
        }
    }

    /// Brute force dominates every heuristic on any small instance.
    #[test]
    fn brute_force_dominates_heuristics(n in 4usize..12, seed in 0u64..200) {
        let g = Graph::random_bernoulli(n, seed);
        let (_, opt) = brute_force(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, rc) = random_cut(&g, 4, &mut rng);
        prop_assert!(rc <= opt);
    }

    /// The incremental AUTO sampler (cached `W₁ᵀ`, rank-1 activation
    /// updates) is bit-identical to the naive AUTO sampler for any
    /// model shape, seed and batch size — including across parameter
    /// updates that invalidate its cache.
    #[test]
    fn incremental_sampler_bit_identical_to_auto(n in 2usize..10, h in 2usize..16, seed in 0u64..500, bs in 1usize..33) {
        let mut wf = Made::new(n, h, seed);
        let mut naive = AutoSampler::new();
        let mut fast = IncrementalAutoSampler::new();
        for round in 0..2u64 {
            let a = naive.sample(&wf, bs, &mut StdRng::seed_from_u64(seed ^ round));
            let b = fast.sample(&wf, bs, &mut StdRng::seed_from_u64(seed ^ round));
            prop_assert_eq!(a.batch.as_bytes(), b.batch.as_bytes());
            for s in 0..bs {
                let rel = (a.log_psi[s] - b.log_psi[s]).abs() / (1.0 + a.log_psi[s].abs());
                prop_assert!(rel <= 1e-12, "log_psi rel diff {rel:e} at sample {s}");
            }
            // Perturb the parameters so round 2 exercises the
            // cache-invalidation path.
            let mut p = wf.params();
            p.scale(0.995);
            wf.set_params(&p);
        }
    }

    /// The pooled `_into` wavefunction entry points (`log_psi_into`,
    /// `weighted_log_psi_grad_into`) are bit-identical to their
    /// allocating twins for any model and batch, even when the
    /// workspace pool starts dirty.
    #[test]
    fn pooled_wavefunction_paths_bit_identical(n in 2usize..10, h in 2usize..16, seed in 0u64..500, bs in 1usize..33) {
        use vqmc::tensor::Workspace;
        let wf = Made::new(n, h, seed);
        let batch = vqmc::tensor::SpinBatch::from_fn(bs, n, |s, i| {
            ((s.wrapping_mul(37) ^ i.wrapping_mul(13) ^ seed as usize) % 2) as u8
        });
        let mut ws = Workspace::new();
        ws.give(vec![0.25; 101]); // dirty pool buffer

        let mut lp = Vector::default();
        wf.log_psi_into(&batch, &mut ws, &mut lp);
        prop_assert_eq!(lp.as_slice(), wf.log_psi(&batch).as_slice());

        let weights = Vector::from_fn(bs, |s| ((s as f64) * 0.61).sin());
        let mut grad = Vector::default();
        wf.weighted_log_psi_grad_into(&batch, &weights, &mut ws, &mut grad);
        prop_assert_eq!(grad.as_slice(), wf.weighted_log_psi_grad(&batch, &weights).as_slice());
    }
}
