//! End-to-end integration tests: the full VQMC pipeline against exact
//! oracles, spanning every crate in the workspace.

use vqmc::prelude::*;

/// MADE + AUTO + Adam on a small disordered TIM must converge close to
/// the exact (Lanczos) ground-state energy, with the zero-variance
/// diagnostic shrinking — the headline single-device claim.
#[test]
fn made_auto_reaches_tim_ground_state() {
    let n = 6;
    let h = TransverseFieldIsing::random(n, 101);
    let exact = ground_state(&h, 300, 1e-12);

    let config = TrainerConfig {
        iterations: 250,
        batch_size: 512,
        optimizer: OptimizerChoice::paper_default(),
        ..TrainerConfig::paper_default(11)
    };
    let mut trainer = Trainer::new(Made::new(n, made_hidden_size(n).max(12), 5), AutoSampler::new(), config);
    let trace = trainer.run(&h);

    let final_e = trace.final_energy();
    let rel = (final_e - exact.energy) / exact.energy.abs();
    assert!(
        rel.abs() < 0.05,
        "VQMC {final_e} vs exact {} (rel {rel})",
        exact.energy
    );
    // Variational inequality with Monte-Carlo slack at every iteration.
    for rec in &trace.records {
        assert!(rec.energy >= exact.energy - 4.0 * rec.std_dev / (512.0f64).sqrt() - 1e-9);
    }
    // Zero-variance diagnostic must shrink.
    assert!(trace.records.last().unwrap().std_dev < trace.records[0].std_dev);
}

/// The VQMC Max-Cut heuristic must find the exact optimum of a small
/// instance, and the classical baseline chain must order correctly:
/// random ≤ GW ≤ OPT, with the SDP value an upper bound.
#[test]
fn maxcut_pipeline_against_brute_force() {
    use rand::SeedableRng;
    let n = 14;
    let mc = MaxCut::random(n, 33);
    let graph = mc.graph();
    let (_, opt) = brute_force(graph);

    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let (_, rand_val) = random_cut(graph, 1, &mut rng);
    let gw = goemans_williamson(graph, 60, &mut rng);
    assert!(rand_val <= opt);
    assert!(gw.cut <= opt);
    assert!(gw.cut as f64 >= 0.878 * opt as f64, "GW ratio violated");
    assert!(gw.sdp_value >= opt as f64 - 1e-6);

    // VQMC with SR, the paper's strongest configuration.
    let config = TrainerConfig {
        iterations: 150,
        batch_size: 256,
        optimizer: OptimizerChoice::paper_sr(),
        ..TrainerConfig::paper_default(3)
    };
    let mut trainer = Trainer::new(Made::new(n, 20, 8), AutoSampler::new(), config);
    trainer.run(&mc);
    let eval = trainer.evaluate(&mc, 256);
    let best_cut = mc.cut_values(&eval.batch).max() as usize;
    assert!(
        best_cut >= opt - 1,
        "VQMC best cut {best_cut} too far below optimum {opt}"
    );
}

/// RBM + MCMC (the paper's baseline pipeline) must also train — just
/// less efficiently — and its energies must respect the variational
/// bound of its own Hamiltonian.
#[test]
fn rbm_mcmc_pipeline_trains() {
    let n = 8;
    let h = TransverseFieldIsing::random(n, 55);
    let exact = ground_state(&h, 300, 1e-10);

    let config = TrainerConfig {
        iterations: 120,
        batch_size: 256,
        optimizer: OptimizerChoice::paper_default(),
        ..TrainerConfig::paper_default(21)
    };
    let mut trainer = Trainer::new(
        Rbm::new(n, rbm_hidden_size(n), 2),
        RbmFastMcmc(McmcSampler::default()),
        config,
    );
    let trace = trainer.run(&h);
    assert!(
        trace.final_energy() < trace.records[0].energy,
        "MCMC training made no progress"
    );
    // MCMC estimates are noisy but the final mean shouldn't sit below
    // the exact ground energy by more than sampling noise.
    let last = trace.records.last().unwrap();
    assert!(last.energy >= exact.energy - 6.0 * last.std_dev / (256.0f64).sqrt() - 1e-6);
}

/// The hitting-time harness (Table 5 protocol) terminates on targets the
/// model can reach and reports honest misses on ones it cannot.
#[test]
fn hitting_time_protocol() {
    let n = 12;
    let mc = MaxCut::random(n, 8);
    let config = TrainerConfig {
        iterations: 0,
        batch_size: 128,
        optimizer: OptimizerChoice::paper_default(),
        ..TrainerConfig::paper_default(5)
    };
    let mut trainer = Trainer::new(Made::new(n, 16, 4), AutoSampler::new(), config);
    let target = mc.graph().num_edges() as f64 * 0.5;
    let result = hitting_time(
        &mut trainer,
        &mc,
        HittingConfig {
            target_score: target,
            eval_batch_size: 128,
            max_iterations: 150,
        },
    );
    assert!(result.hit, "failed to reach {target}: best {}", result.best_score);
    assert!(result.train_secs > 0.0);
}
