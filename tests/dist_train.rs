//! End-to-end multi-process training through the CLI: `train --ranks N`
//! spawns N real OS processes over loopback TCP, and the acceptance
//! contract is that the printed trace — including the golden final
//! energy `-10.555253` pinned by `crates/core/tests/golden_trace.rs` —
//! and the saved checkpoint are **identical at every rank count**.
//!
//! This is the one test that exercises the whole chain as shipped:
//! argv forwarding, port reservation, process spawning, the socket
//! handshake, sharded training, and rank-0 reporting.

use std::process::Command;

const GOLDEN_ARGS: &[&str] = &[
    "train", "--problem", "tim", "--n", "10", "--iters", "60", "--batch", "128", "--seed", "3",
];

fn run_train(extra: &[String]) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_vqmc-cli"))
        .args(GOLDEN_ARGS)
        .args(extra)
        .output()
        .expect("spawn vqmc-cli");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "vqmc-cli {extra:?} failed ({}):\n{stdout}\n{stderr}",
        out.status
    );
    (stdout, stderr)
}

/// The reported per-iteration lines plus the final summary, stripped of
/// the wall-clock suffix (the only legitimately nondeterministic part).
fn trace_lines(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter_map(|l| {
            if l.starts_with("iter ") {
                Some(l.to_string())
            } else if l.starts_with("done: ") {
                Some(l.split(", ").take(2).collect::<Vec<_>>().join(", "))
            } else {
                None
            }
        })
        .collect()
}

#[test]
fn multi_process_training_is_bit_identical_to_single_process() {
    let dir = std::env::temp_dir().join(format!("vqmc-dist-train-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut traces = Vec::new();
    let mut checkpoints = Vec::new();
    for ranks in [1usize, 2, 3, 4] {
        let ckpt = dir.join(format!("r{ranks}.ckpt"));
        let extra = vec![
            "--ranks".to_string(),
            ranks.to_string(),
            "--checkpoint".to_string(),
            ckpt.to_str().unwrap().to_string(),
        ];
        let (stdout, _) = run_train(&extra);
        assert!(
            stdout.contains("final energy -10.555253"),
            "--ranks {ranks}: golden energy missing from:\n{stdout}"
        );
        let lines = trace_lines(&stdout);
        assert!(
            lines.len() > 5,
            "--ranks {ranks}: expected a full trace, got:\n{stdout}"
        );
        traces.push((ranks, lines));
        checkpoints.push((ranks, std::fs::read(&ckpt).expect("checkpoint written")));
    }

    let (_, ref_trace) = &traces[0];
    let (_, ref_ckpt) = &checkpoints[0];
    for ((ranks, trace), (_, ckpt)) in traces.iter().zip(&checkpoints).skip(1) {
        assert_eq!(
            ref_trace, trace,
            "--ranks {ranks}: printed trace differs from single-process"
        );
        assert_eq!(
            ref_ckpt, ckpt,
            "--ranks {ranks}: checkpoint bytes differ from single-process"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// The worker arm is reachable directly (`--rank/--world/--peers`), so
/// a mesh can span machines; a worker whose peers never appear exits
/// with a clean handshake error instead of hanging.
#[test]
fn lone_worker_with_absent_peers_fails_cleanly() {
    // Two genuinely free ports; rank 0's is never bound by anyone.
    let free: Vec<String> = (0..2)
        .map(|_| {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            format!("127.0.0.1:{}", l.local_addr().unwrap().port())
        })
        .collect();
    let out = Command::new(env!("CARGO_BIN_EXE_vqmc-cli"))
        .args(GOLDEN_ARGS)
        .args([
            "--rank",
            "1",
            "--world",
            "2",
            "--peers",
            &free.join(","),
            "--connect-timeout-ms",
            "400",
        ])
        .output()
        .expect("spawn vqmc-cli");
    assert!(
        !out.status.success(),
        "worker must fail when its peers never bind"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("rank 1"),
        "error should name the failing rank:\n{stderr}"
    );
}
