//! Quickstart: solve a small disordered transverse-field Ising model
//! with VQMC + exact autoregressive sampling, and check the result
//! against exact diagonalisation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vqmc::prelude::*;

fn main() {
    let n = 8;
    let instance_seed = 2021;

    println!("== vqmc quickstart: {n}-spin disordered TIM ==\n");

    // 1. The problem: H = −Σ αᵢXᵢ − Σ βᵢZᵢ − Σ βᵢⱼZᵢZⱼ with random
    //    disorder fixed by the instance seed.
    let h = TransverseFieldIsing::random(n, instance_seed);

    // 2. The trial wavefunction: a MADE autoregressive neural quantum
    //    state with the paper's hidden-size policy h = 5(ln n)².
    let hidden = made_hidden_size(n);
    let wf = Made::new(n, hidden, 1);
    println!("model: MADE(n={n}, hidden={hidden}), {} parameters", {
        use vqmc::nn::WaveFunction;
        wf.num_params()
    });

    // 3. Train with exact (AUTO) sampling and Adam.
    let config = TrainerConfig {
        iterations: 300,
        batch_size: 512,
        optimizer: OptimizerChoice::paper_default(),
        ..TrainerConfig::paper_default(7)
    };
    let mut trainer = Trainer::new(wf, AutoSampler::new(), config);
    let trace = trainer.run(&h);

    for (it, rec) in trace.records.iter().enumerate() {
        if it % 50 == 0 || it + 1 == trace.records.len() {
            println!(
                "iter {it:>4}: energy {:>10.4}  std {:>8.4}",
                rec.energy, rec.std_dev
            );
        }
    }

    // 4. Compare against the exact ground state (matrix-free Lanczos).
    let exact = ground_state(&h, 300, 1e-12);
    let final_energy = trace.final_energy();
    let rel_err = (final_energy - exact.energy).abs() / exact.energy.abs();
    println!("\nVQMC energy : {final_energy:.6}");
    println!("exact λ_min : {:.6}", exact.energy);
    println!("relative gap: {:.2e}", rel_err);
    println!("total time  : {:.2}s", trace.total_secs);

    assert!(
        final_energy >= exact.energy - 1e-6,
        "variational bound violated — this would be a bug"
    );
}
