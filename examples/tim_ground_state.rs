//! TIM ground-state study: MADE&AUTO versus RBM&MCMC on the same
//! disordered transverse-field Ising instance — the head-to-head of the
//! paper's Figure 2 — with the exact answer from Lanczos as referee.
//!
//! ```sh
//! cargo run --release --example tim_ground_state -- [n] [iterations]
//! ```

use vqmc::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let iterations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let instance_seed = 42;

    println!("== disordered TIM, n = {n}: AUTO vs MCMC ==\n");
    let h = TransverseFieldIsing::random(n, instance_seed);

    let exact = if n <= 16 {
        let gs = ground_state(&h, 400, 1e-12);
        println!("exact ground energy (Lanczos): {:.6}\n", gs.energy);
        Some(gs.energy)
    } else {
        println!("(n > 16: skipping exact diagonalisation)\n");
        None
    };

    let config = |seed| TrainerConfig {
        iterations,
        batch_size: 512,
        optimizer: OptimizerChoice::paper_default(),
        ..TrainerConfig::paper_default(seed)
    };

    // --- MADE with exact autoregressive sampling ---------------------------
    let made = Made::new(n, made_hidden_size(n), 1);
    let mut auto_trainer = Trainer::new(made, AutoSampler::new(), config(7));
    let auto_trace = auto_trainer.run(&h);

    // --- RBM with Metropolis-Hastings MCMC (paper settings) ----------------
    let rbm = Rbm::new(n, rbm_hidden_size(n), 1);
    let mcmc = RbmFastMcmc(McmcSampler::default()); // 2 chains, k = 3n+100
    let mut mcmc_trainer = Trainer::new(rbm, mcmc, config(7));
    let mcmc_trace = mcmc_trainer.run(&h);

    println!("iter   MADE&AUTO (energy/std)     RBM&MCMC (energy/std)");
    let stride = (iterations / 10).max(1);
    for it in (0..iterations).step_by(stride) {
        let a = &auto_trace.records[it];
        let m = &mcmc_trace.records[it];
        println!(
            "{it:>5}  {:>10.4} / {:>8.4}    {:>10.4} / {:>8.4}",
            a.energy, a.std_dev, m.energy, m.std_dev
        );
    }

    println!("\nfinal MADE&AUTO: {:.6}  ({:.2}s)", auto_trace.final_energy(), auto_trace.total_secs);
    println!("final RBM&MCMC : {:.6}  ({:.2}s)", mcmc_trace.final_energy(), mcmc_trace.total_secs);
    if let Some(e) = exact {
        println!("exact          : {e:.6}");
    }
}
