//! Spin-glass study: VQMC on the quantum Sherrington–Kirkpatrick model,
//! with physical observables (magnetisation, correlations, fidelity)
//! and a model checkpoint — the workflow a physics user would run.
//!
//! ```sh
//! cargo run --release --example spin_glass -- [n] [iterations]
//! ```

use vqmc::core::observables::{
    correlation_matrix, fidelity, magnetization, mean_magnetization, sample_entropy,
};
use vqmc::nn::checkpoint::Checkpoint;
use vqmc::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let iterations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let gamma = 0.7; // transverse field strength

    println!("== quantum Sherrington-Kirkpatrick, n = {n}, Γ = {gamma} ==\n");
    let h = TransverseFieldIsing::sherrington_kirkpatrick(n, gamma, 2021);

    let config = TrainerConfig {
        iterations,
        batch_size: 512,
        optimizer: OptimizerChoice::paper_sr(), // SR shines on glassy landscapes
        ..TrainerConfig::paper_default(5)
    };
    let mut trainer = Trainer::new(Made::new(n, made_hidden_size(n), 1), AutoSampler::new(), config);
    let trace = trainer.run(&h);
    println!(
        "trained {} iterations: E = {:.4} (σ = {:.4}), {:.2}s",
        iterations,
        trace.final_energy(),
        trace.records.last().unwrap().std_dev,
        trace.total_secs
    );

    // ---- observables on a fresh evaluation batch ----------------------------
    let eval = trainer.evaluate(&h, 2048);
    let mag = magnetization(&eval.batch);
    println!("\nper-spin magnetisation ⟨σᵢ⟩ (first 8): {:?}",
        &mag.as_slice()[..mag.len().min(8)]
            .iter()
            .map(|m| (m * 100.0).round() / 100.0)
            .collect::<Vec<_>>());
    println!("mean magnetisation: {:.4}", mean_magnetization(&eval.batch));

    let corr = correlation_matrix(&eval.batch);
    let mut strongest = (0usize, 1usize, 0.0f64);
    for i in 0..n {
        for j in (i + 1)..n {
            if corr.get(i, j).abs() > strongest.2.abs() {
                strongest = (i, j, corr.get(i, j));
            }
        }
    }
    println!(
        "strongest spin-spin correlation: ⟨σ{}σ{}⟩ = {:.3} (coupling J = {:.3})",
        strongest.0,
        strongest.1,
        strongest.2,
        h.couplings().get(strongest.0, strongest.1)
    );
    println!(
        "sample entropy of the trained distribution: {:.3} nats \
         (uniform would be {:.3})",
        sample_entropy(trainer.wavefunction(), &eval.batch),
        n as f64 * std::f64::consts::LN_2
    );

    // ---- exact cross-check (oracle sizes) -----------------------------------
    if n <= 14 {
        let gs = ground_state(&h, 400, 1e-12);
        let f = fidelity(trainer.wavefunction(), &gs.vector);
        println!(
            "\nexact λ_min = {:.4}; VQMC gap = {:.2e}; ground-state fidelity = {:.4}",
            gs.energy,
            (trace.final_energy() - gs.energy).abs() / gs.energy.abs(),
            f
        );
    }

    // ---- checkpoint round-trip ----------------------------------------------
    let path = std::env::temp_dir().join("spin_glass_made.ckpt");
    trainer.wavefunction().save(&path).expect("save checkpoint");
    let restored = Made::load(&path).expect("load checkpoint");
    let probe = eval.batch;
    let a = trainer.wavefunction().log_psi(&probe);
    let b = restored.log_psi(&probe);
    assert_eq!(a.as_slice(), b.as_slice(), "checkpoint must be lossless");
    println!("\ncheckpoint round-trip OK: {}", path.display());
    std::fs::remove_file(&path).ok();
}
