//! Sampler & architecture showdown on one fixed problem: every sampling
//! engine (exact AUTO — naive, incremental, NADE-native — Metropolis
//! MCMC, heat-bath Gibbs) and every wavefunction (MADE, NADE, RBM),
//! with sample-quality diagnostics (integrated autocorrelation time,
//! effective sample size) that quantify the paper's §2.2 argument.
//!
//! ```sh
//! cargo run --release --example samplers_showdown -- [n]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use vqmc::sampler::diagnostics::{effective_sample_size, integrated_autocorrelation_time};
use vqmc::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    let batch = 2048;
    println!("== sampler showdown, n = {n}, batch = {batch} ==\n");

    let made = Made::new(n, made_hidden_size(n), 1);
    let nade = Nade::new(n, made_hidden_size(n), 1);
    let rbm = Rbm::new(n, rbm_hidden_size(n), 1);

    println!(
        "{:<26} {:>8} {:>10} {:>8} {:>9} {:>8}",
        "engine", "passes", "proposals", "accept", "tau_int", "ESS"
    );

    let report = |label: &str, out: &vqmc::sampler::SampleOutput| {
        let tau = integrated_autocorrelation_time(out.log_psi.as_slice());
        let ess = effective_sample_size(out.log_psi.as_slice());
        let accept = if out.stats.proposals > 0 {
            format!("{:.2}", out.stats.acceptance_rate())
        } else {
            "-".into()
        };
        println!(
            "{label:<26} {:>8} {:>10} {accept:>8} {tau:>9.2} {ess:>8.0}",
            out.stats.forward_passes, out.stats.proposals
        );
    };

    let mut rng = StdRng::seed_from_u64(7);
    report("MADE + AUTO (naive)", &AutoSampler::new().sample(&made, batch, &mut rng));
    report(
        "MADE + AUTO (incremental)",
        &IncrementalAutoSampler::new().sample(&made, batch, &mut rng),
    );
    report(
        "NADE + AUTO (native)",
        &NadeNativeSampler::new().sample(&nade, batch, &mut rng),
    );
    report(
        "RBM + Metropolis MCMC",
        &McmcSampler::default().sample_rbm(&rbm, batch, &mut rng),
    );
    report(
        "RBM + Gibbs (heat bath)",
        &GibbsSampler::default().sample(&rbm, batch, &mut rng),
    );
    report(
        "MADE + Metropolis MCMC",
        &McmcSampler::default().sample(&made, batch, &mut rng),
    );

    println!(
        "\nReading: exact engines (AUTO) deliver tau ≈ 1 — every sample is \
         independent.  Markov-chain engines deliver correlated samples \
         (tau > 1, ESS < batch), and no kernel choice removes the \
         sequential burn-in — the paper's core argument, measured."
    );
}
