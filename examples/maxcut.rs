//! Max-Cut shoot-out: VQMC (MADE + exact sampling, with and without
//! stochastic reconfiguration) against the classical baselines of the
//! paper's Table 2 — random cut, Goemans–Williamson, Burer–Monteiro —
//! on one random Bernoulli graph.
//!
//! ```sh
//! cargo run --release --example maxcut -- [n] [iterations]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use vqmc::baselines::local_search_1opt;
use vqmc::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);
    let iterations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let instance_seed = 5;

    println!("== Max-Cut on a random Bernoulli graph, n = {n} ==\n");
    let mc = MaxCut::random(n, instance_seed);
    let graph = mc.graph().clone();
    println!("|V| = {n}, |E| = {}", graph.num_edges());

    let mut rng = StdRng::seed_from_u64(11);

    // --- classical baselines -------------------------------------------------
    let (_, rand_cut) = random_cut(&graph, 1, &mut rng);
    println!("random cut           : {rand_cut}");

    let gw = goemans_williamson(&graph, 100, &mut rng);
    println!(
        "Goemans-Williamson   : {} (SDP bound {:.2})",
        gw.cut, gw.sdp_value
    );

    let bm = BurerMonteiro::default().solve(&graph, &mut rng);
    let (mut bm_x, _) =
        vqmc::baselines::hyperplane_round(&graph, &bm.v, 100, &mut rng);
    let bm_cut = local_search_1opt(&graph, &mut bm_x);
    println!("Burer-Monteiro + 1opt: {bm_cut}");

    if n <= 24 {
        let (_, opt) = brute_force(&graph);
        println!("exact optimum        : {opt}");
    }

    // --- VQMC ----------------------------------------------------------------
    for (label, optimizer) in [
        ("MADE&AUTO + ADAM  ", OptimizerChoice::paper_default()),
        ("MADE&AUTO + SGD+SR", OptimizerChoice::paper_sr()),
    ] {
        let config = TrainerConfig {
            iterations,
            batch_size: 512,
            optimizer,
            ..TrainerConfig::paper_default(3)
        };
        let wf = Made::new(n, made_hidden_size(n), 9);
        let mut trainer = Trainer::new(wf, AutoSampler::new(), config);
        let trace = trainer.run(&mc);
        // Evaluation protocol: fresh batch, report mean and best cut.
        let eval = trainer.evaluate(&mc, 512);
        let cuts = mc.cut_values(&eval.batch);
        let mean_cut = cuts.mean();
        let best_cut = cuts.max();
        println!(
            "{label}: mean cut {mean_cut:.1}, best sampled {best_cut:.0} \
             ({iterations} iters, {:.2}s)",
            trace.total_secs
        );
    }
}
