//! Weak-scaling demo on the virtual cluster: the paper's Figures 3–4 in
//! miniature.
//!
//! Part 1 (Figure 3): each simulated GPU draws a fixed minibatch; the
//! modelled per-round *sampling* time stays flat as GPUs are added —
//! exact sampling has no cross-device coupling at all.
//!
//! Part 2 (Figure 4): full training at fixed `mbs` — more devices mean
//! a larger effective batch, which improves the converged energy until
//! it saturates (small problems saturate early, the paper's
//! observation).
//!
//! ```sh
//! cargo run --release --example weak_scaling -- [n] [mbs] [iterations]
//! ```

use vqmc::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let mbs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let iterations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);
    let instance_seed = 3;

    let hidden = made_hidden_size(n);
    let _ = instance_seed; // the Part-2 instance is derived below

    let make_trainer = |topo: Topology, iters: usize, n: usize, mbs: usize| {
        let cluster = Cluster::new(topo, DeviceSpec::v100());
        let wf = Made::new(n, hidden, 1);
        let config = DistributedConfig {
            iterations: iters,
            minibatch_per_device: mbs,
            optimizer: OptimizerChoice::paper_default(),
            local_energy: Default::default(),
            seed: 9,
            cost_hidden: hidden,
            cost_offdiag: n,
        };
        DistributedTrainer::new(cluster, wf, IncrementalAutoSampler::new(), config)
    };

    // ---- Part 1: sampling-only weak scaling (Figure 3) --------------------
    println!("== Figure-3 shape: modelled sampling time per round, TIM n = {n}, mbs = {mbs} ==\n");
    println!("config    L   modelled s/round   normalised");
    let mut baseline = None;
    for topo in Topology::paper_configurations() {
        let label = topo.label();
        let l = topo.num_devices();
        let mut t = make_trainer(topo, 0, n, mbs);
        let mut total = 0.0;
        for _ in 0..3 {
            total += t.sampling_round();
        }
        let per_round = total / 3.0;
        let norm = *baseline.get_or_insert(per_round);
        println!(
            "{label:>6} {l:>4}   {per_round:>14.6}   {:>10.4}",
            per_round / norm
        );
    }
    println!(
        "\nAll rows ≈ 1.0: per-device sampling work is independent of L \
         (near-optimal weak scaling).\n"
    );

    // ---- Part 2: converged energy vs device count (Figure 4) --------------
    let small_n = 32.min(n);
    let small_h = TransverseFieldIsing::random(small_n, instance_seed);
    println!("== Figure-4 shape: converged energy vs L, TIM n = {small_n}, mbs = 4 ==\n");
    println!("config    L   eff.batch   final energy");
    for topo in Topology::paper_configurations() {
        let label = topo.label();
        let l = topo.num_devices();
        let cluster = Cluster::new(topo, DeviceSpec::v100());
        let wf = Made::new(small_n, made_hidden_size(small_n), 1);
        let config = DistributedConfig {
            iterations,
            minibatch_per_device: 4,
            optimizer: OptimizerChoice::paper_default(),
            local_energy: Default::default(),
            seed: 9,
            cost_hidden: made_hidden_size(small_n),
            cost_offdiag: small_n,
        };
        let mut trainer = DistributedTrainer::new(cluster, wf, IncrementalAutoSampler::new(), config);
        let trace = trainer.run(&small_h);
        println!(
            "{label:>6} {l:>4}   {:>9}   {:>12.4}",
            trainer.effective_batch_size(),
            trace.final_energy(),
        );
    }
    println!(
        "\nEnergy improves as the effective batch (4·L) grows — the paper's \
         batch-size/exploration effect — and saturates for small problems."
    );
}
